//! Round-robin placement: the similarity-oblivious strawman.

use sigma_core::{DataRouter, RoutingContext, RoutingDecision};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Routes super-chunks to nodes in strict rotation.
///
/// Capacity balance is perfect by construction, but no redundancy concentration of
/// any kind happens, so cross-node duplicates are maximised.  Useful as a lower
/// bound for the cluster deduplication ratio in ablation experiments.
///
/// # Example
///
/// ```
/// use sigma_baselines::RoundRobinRouter;
/// use sigma_core::DataRouter;
///
/// assert_eq!(RoundRobinRouter::new().name(), "round-robin");
/// ```
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    next: AtomicUsize,
}

impl RoundRobinRouter {
    /// Creates the router.
    pub fn new() -> Self {
        RoundRobinRouter::default()
    }
}

impl DataRouter for RoundRobinRouter {
    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");
        let target = self.next.fetch_add(1, Ordering::Relaxed) % node_count;
        RoutingDecision::stateless(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ChunkDescriptor, DedupNode, SigmaConfig, SuperChunk};
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    #[test]
    fn rotates_through_all_nodes() {
        let config = SigmaConfig::default();
        let nodes: Vec<Arc<DedupNode>> = (0..4)
            .map(|i| Arc::new(DedupNode::new(i, &config)))
            .collect();
        let sc = SuperChunk::from_descriptors(
            0,
            vec![ChunkDescriptor::new(Sha1::fingerprint(b"x"), 4096)],
        );
        let hp = sc.handprint(8);
        let router = RoundRobinRouter::new();
        let targets: Vec<usize> = (0..8)
            .map(|_| {
                router
                    .route(&RoutingContext {
                        super_chunk: &sc,
                        handprint: &hp,
                        file_id: None,
                        nodes: &nodes,
                    })
                    .target
            })
            .collect();
        assert_eq!(targets, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
