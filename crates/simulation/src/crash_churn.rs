//! The crash-churn scenario: backup → crash → recover → restore-verify, with
//! deterministic fault injection at journal-record boundaries.
//!
//! [`run_churn`](crate::churn::run_churn) shows the cluster surviving *planned*
//! membership changes; this module shows it surviving *unplanned* ones.  A
//! [`FaultPlan`] — seeded from the workload's own [`DeterministicRng`] — arms a
//! crash on one node's write-ahead journal at a chosen append sequence number.
//! Because a node's state only becomes durable through journal appends, and the
//! workload is deterministic up to the kill point, this reproduces "the process
//! died between exactly these two records" for any boundary: inside a backup
//! round, inside a flush, or inside a [`Rebalancer`](sigma_core::Rebalancer)
//! step between the destination's adopt and the source's tombstone.
//!
//! The driver then behaves like an operator supervising a real cluster:
//!
//! 1. the failing operation surfaces [`StorageError::Crashed`];
//! 2. [`DedupCluster::restart_node`] rebuilds the victim from its journal and
//!    reconciles half-completed migrations (publishing the missing tombstone of
//!    a container its peer already adopted durably, or vice versa);
//! 3. the interrupted operation is retried — safe because backups deduplicate
//!    against everything durably recovered and container adoption is idempotent
//!    per origin;
//! 4. at the end, every file from every phase is restored and compared
//!    byte-for-byte, the recovered nodes pass a structural consistency check,
//!    and no container may have been lost or duplicated by the crash.

use sigma_core::{BackupClient, DedupCluster, RecoveryReport, SigmaConfig, SigmaError};
use sigma_storage::{BackendKind, CrashMode, StorageError};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
use sigma_workloads::DeterministicRng;
use std::collections::HashMap;
use std::sync::Arc;

/// One armed crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPoint {
    /// Stable ID of the node whose journal crashes.
    pub node: usize,
    /// Journal append sequence number at which the crash fires.
    pub at_seq: u64,
    /// Whether the interrupted append leaves a torn frame behind.
    pub mode: CrashMode,
}

/// A deterministic set of crash points for one scenario run.
///
/// Sampled from the per-node journal activity of a fault-free dry run, so every
/// sampled point is guaranteed to fire (the workload is deterministic up to the
/// kill) and the whole space of record boundaries is reachable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The crash points, at most one per node.
    pub points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// Samples one kill point from `appends_per_node` — the `(node, append
    /// count)` activity profile measured by a fault-free dry run.
    ///
    /// Nodes are weighted by their append counts so busy nodes crash as often as
    /// their activity warrants; the torn/clean mode is a coin flip.  Nodes with
    /// no journal activity are never sampled.
    pub fn sample_one(rng: &mut DeterministicRng, appends_per_node: &[(usize, u64)]) -> FaultPlan {
        let total: u64 = appends_per_node.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return FaultPlan::default();
        }
        let mut pick = rng.below(total);
        for &(node, appends) in appends_per_node {
            if pick < appends {
                return FaultPlan {
                    points: vec![FaultPoint {
                        node,
                        at_seq: pick,
                        mode: if rng.chance(0.5) {
                            CrashMode::Torn
                        } else {
                            CrashMode::Clean
                        },
                    }],
                };
            }
            pick -= appends;
        }
        unreachable!("pick is bounded by the total append count");
    }

    /// Arms every crash point whose target node currently exists.
    ///
    /// Points aimed at nodes that join later (the scenario's scale-out adds one)
    /// are skipped for now; call `arm` again after the membership change.
    ///
    /// # Panics
    ///
    /// Panics if a targeted node exists but has no journal (the scenario
    /// requires [`SigmaConfig::durability`]).
    pub fn arm(&self, cluster: &DedupCluster) {
        for point in &self.points {
            if let Some(node) = cluster.node_by_id(point.node) {
                node.journal()
                    .expect("fault injection requires durability")
                    .arm_crash_at_seq(point.at_seq, point.mode);
            }
        }
    }
}

/// Parameters of one crash-churn scenario run.
#[derive(Debug, Clone)]
pub struct CrashChurnConfig {
    /// Nodes the cluster starts with.
    pub initial_nodes: usize,
    /// Client streams (each backs up one file per phase).
    pub streams: usize,
    /// Bytes per stream per backup generation.
    pub stream_bytes: usize,
    /// Fraction of 4 KB regions rewritten between the two backup generations.
    pub mutation_rate: f64,
    /// Deterministic seed for payloads and the fault plan.
    pub seed: u64,
    /// Crash points to sample and run (one scenario execution per point).
    pub kill_points: usize,
    /// Σ-Dedupe configuration; [`SigmaConfig::durability`] must be on.
    pub sigma: SigmaConfig,
}

impl Default for CrashChurnConfig {
    fn default() -> Self {
        CrashChurnConfig {
            initial_nodes: 3,
            streams: 3,
            stream_bytes: 256 * 1024,
            mutation_rate: 0.05,
            seed: 0xFA17,
            kill_points: 4,
            sigma: SigmaConfig::builder()
                .super_chunk_size(64 * 1024)
                .container_capacity(128 * 1024)
                .durability(true)
                // Post-recovery restore-verify runs the planned pipeline in
                // parallel, covering batched reads against recovered and
                // reconciled containers.
                .restore_parallelism(2)
                .build()
                .expect("default crash-churn config is valid"),
        }
    }
}

impl CrashChurnConfig {
    /// The default scenario re-parameterized onto a different storage backend.
    ///
    /// For [`BackendKind::File`] a `storage_root` must be set on the returned
    /// config's `sigma` (see [`with_file_storage`](Self::with_file_storage));
    /// the driver then recovers crashed nodes through
    /// [`DedupCluster::restart_node_from_disk`] — re-opening the journal from
    /// the node's directory instead of the surviving in-memory handle — so the
    /// sweep exercises the actual process-restart path.
    pub fn with_backend(kind: BackendKind) -> Self {
        let mut config = CrashChurnConfig::default();
        config.sigma.storage_backend = kind;
        config
    }

    /// The default scenario on the real-file backend rooted at `root`.
    pub fn with_file_storage(root: impl Into<std::path::PathBuf>) -> Self {
        let mut config = CrashChurnConfig::with_backend(BackendKind::File);
        config.sigma.storage_root = Some(root.into());
        config
    }
}

/// Outcome of one scenario execution (one kill point, or the dry run).
#[derive(Debug, Clone)]
pub struct KillOutcome {
    /// The fault plan this execution ran under (empty for the dry run).
    pub plan: FaultPlan,
    /// Crashes that actually fired and were recovered.
    pub recoveries: Vec<RecoveryReport>,
    /// Files written across both backup waves.
    pub files: usize,
    /// Files that restored byte-identically at the end.
    pub restored_intact: usize,
    /// Cluster physical bytes at the end of the run.
    pub physical_bytes: u64,
    /// First consistency-check failure across all directory nodes, if any.
    pub consistency_error: Option<String>,
}

impl KillOutcome {
    /// True when every file restored byte-identically and every node is
    /// structurally consistent.
    pub fn is_clean(&self) -> bool {
        self.restored_intact == self.files && self.consistency_error.is_none()
    }
}

/// Outcome of a full crash-churn sweep.
#[derive(Debug, Clone)]
pub struct CrashChurnOutcome {
    /// The fault-free reference execution.
    pub baseline: KillOutcome,
    /// One outcome per sampled kill point.
    pub kills: Vec<KillOutcome>,
}

impl CrashChurnOutcome {
    /// True when the baseline and every faulted execution restored everything
    /// and stayed consistent.
    pub fn all_clean(&self) -> bool {
        self.baseline.is_clean() && self.kills.iter().all(KillOutcome::is_clean)
    }

    /// Total crashes injected and recovered across the sweep.
    pub fn total_recoveries(&self) -> usize {
        self.kills.iter().map(|k| k.recoveries.len()).sum()
    }
}

/// Runs the crash-churn sweep: a fault-free dry run to profile journal activity,
/// then one full backup → churn → restore execution per sampled kill point.
///
/// # Panics
///
/// Panics if the configuration disables durability, on zero node/stream counts,
/// or if an injected crash cannot be recovered (which is exactly the regression
/// this scenario exists to catch).
pub fn run_crash_churn(config: &CrashChurnConfig) -> CrashChurnOutcome {
    assert!(config.sigma.durability, "crash-churn requires durability");
    assert!(config.initial_nodes > 0, "need at least one node");
    assert!(config.streams > 0, "need at least one stream");

    let baseline = execute(config, &FaultPlan::default());
    assert!(
        baseline.is_clean(),
        "fault-free baseline must be clean: {:?}",
        baseline.consistency_error
    );

    // Profile: how many journal appends each node performed fault-free.  The
    // faulted runs behave identically up to their kill point, so any sequence
    // number below these counts is guaranteed to fire.
    let appends = profile_appends(config);
    let mut rng = DeterministicRng::new(config.seed ^ 0xC4A5_11ED);
    let kills = (0..config.kill_points)
        .map(|_| {
            let plan = FaultPlan::sample_one(&mut rng, &appends);
            execute(config, &plan)
        })
        .collect();

    CrashChurnOutcome { baseline, kills }
}

/// Measures per-node journal append counts with a fault-free execution.  The
/// cluster ends with `initial_nodes + 1` directory entries (the join added one).
fn profile_appends(config: &CrashChurnConfig) -> Vec<(usize, u64)> {
    let (cluster, _, _) = drive_workload(config, &FaultPlan::default());
    (0..=config.initial_nodes)
        .filter_map(|id| {
            let node = cluster.node_by_id(id)?;
            let appends = node.journal().map(|j| j.next_seq())?;
            (appends > 0).then_some((id, appends))
        })
        .collect()
}

/// One full scenario execution under `plan`; crashes are recovered and the
/// interrupted operation retried.
fn execute(config: &CrashChurnConfig, plan: &FaultPlan) -> KillOutcome {
    let (cluster, expected, recoveries) = drive_workload(config, plan);

    let restored_intact = expected
        .iter()
        .filter(|(file_id, data)| {
            cluster
                .restore_file(**file_id)
                .map(|bytes| bytes == **data)
                .unwrap_or(false)
        })
        .count();

    // Structural consistency of every node the cluster ever had, retired and
    // recovered ones included.
    let mut consistency_error = None;
    for id in 0..=config.initial_nodes {
        if let Some(node) = cluster.node_by_id(id) {
            if let Err(e) = node.verify_consistency() {
                consistency_error = Some(e);
                break;
            }
        }
    }

    KillOutcome {
        plan: plan.clone(),
        recoveries,
        files: expected.len(),
        restored_intact,
        physical_bytes: cluster.stats().physical_bytes,
        consistency_error,
    }
}

/// Backs up two generations across a join and a leave, recovering and retrying
/// around injected crashes.  Returns the cluster, the ground-truth files and the
/// recovery reports.
#[allow(clippy::type_complexity)]
fn drive_workload(
    config: &CrashChurnConfig,
    plan: &FaultPlan,
) -> (
    Arc<DedupCluster>,
    HashMap<u64, Vec<u8>>,
    Vec<RecoveryReport>,
) {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        config.initial_nodes,
        config.sigma.clone(),
    ));
    plan.arm(&cluster);

    let generations: Vec<Vec<(String, Vec<u8>)>> = (0..config.streams as u64)
        .map(|s| {
            versioned_payloads(VersionedPayloadParams {
                seed: config.seed.wrapping_add(s),
                versions: 2,
                version_size: config.stream_bytes,
                mutation_rate: config.mutation_rate,
            })
        })
        .collect();
    let clients: Vec<BackupClient> = (0..config.streams as u64)
        .map(|s| BackupClient::new(cluster.clone(), s))
        .collect();

    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut recoveries = Vec::new();

    // One backup wave, acknowledged as a unit by its closing flush.  A crash
    // anywhere inside the wave restarts the *whole* wave: files whose backup
    // calls had already returned may still hold chunks in the crashed node's
    // open (never-journaled) containers, so nothing in the wave counts as
    // acknowledged until the flush comes back clean.  Discarded attempts leave
    // orphaned recipes behind — exactly like an aborted backup job — and the
    // retry deduplicates against everything that did survive, so re-running a
    // wave is cheap.
    let backup_wave = |generation: usize,
                       expected: &mut HashMap<u64, Vec<u8>>,
                       recoveries: &mut Vec<RecoveryReport>| {
        loop {
            let mut wave: Vec<(u64, Vec<u8>)> = Vec::new();
            let attempt = (|| {
                for (client, gens) in clients.iter().zip(&generations) {
                    let (name, data) = &gens[generation];
                    let report = client.backup_bytes(name, data)?;
                    wave.push((report.file_id, data.clone()));
                }
                cluster.try_flush()
            })();
            match attempt {
                Ok(()) => {
                    expected.extend(wave);
                    return;
                }
                Err(e) if is_crash(&e) => recover_all(&cluster, recoveries),
                Err(e) => panic!("backup wave failed for a non-crash reason: {}", e),
            }
        }
    };

    // Phase 1: bootstrap backups, acknowledged by the flush.
    backup_wave(0, &mut expected, &mut recoveries);

    // Phase 2: scale out.  A crash mid-rebalance is recovered and the join
    // rebalance re-planned from live state (adoption idempotence makes the
    // retry exactly-once).  The plan is re-armed so kill points aimed at the
    // joined node take effect now that it exists.
    let joined = cluster.add_node();
    plan.arm(&cluster);
    retry_crashed(&cluster, &mut recoveries, || cluster.rebalance_onto(joined));

    // Phase 3: second wave, deduplicating against (partly migrated) state.
    backup_wave(1, &mut expected, &mut recoveries);

    // Phase 4: scale in — drain one of the original nodes.  After a crash the
    // drain resumes via `resume_drain` (the victim already left the active map).
    let victim = cluster.node_ids()[0];
    let mut removing = true;
    loop {
        let attempt = if removing {
            cluster.remove_node(victim)
        } else {
            cluster.resume_drain(victim).and_then(|r| r.run())
        };
        match attempt {
            Ok(_) => break,
            Err(e) if is_crash(&e) => {
                recover_all(&cluster, &mut recoveries);
                removing = false;
            }
            Err(e) => panic!("node removal failed for a non-crash reason: {}", e),
        }
    }

    (cluster, expected, recoveries)
}

/// Runs `op`, recovering crashed nodes and retrying until it succeeds.
fn retry_crashed<T>(
    cluster: &DedupCluster,
    recoveries: &mut Vec<RecoveryReport>,
    mut op: impl FnMut() -> Result<T, SigmaError>,
) -> T {
    loop {
        match op() {
            Ok(value) => return value,
            Err(e) if is_crash(&e) => recover_all(cluster, recoveries),
            Err(e) => panic!("operation failed for a non-crash reason: {}", e),
        }
    }
}

/// Restarts every crashed node, recording the recovery reports.  On the file
/// backend the restart goes through the on-disk directory — the surviving
/// in-memory journal handle is deliberately not reused, so every recovery in
/// the sweep proves the process-restart path.
fn recover_all(cluster: &DedupCluster, recoveries: &mut Vec<RecoveryReport>) {
    let crashed = cluster.crashed_nodes();
    assert!(
        !crashed.is_empty(),
        "a crash error surfaced but no node reports a crashed journal"
    );
    let from_disk = cluster.config().storage_backend == BackendKind::File;
    for id in crashed {
        let report = if from_disk {
            cluster.restart_node_from_disk(id)
        } else {
            cluster.restart_node(id)
        }
        .expect("a journaled node must be recoverable");
        recoveries.push(report);
    }
}

fn is_crash(e: &SigmaError) -> bool {
    matches!(e, SigmaError::Storage(StorageError::Crashed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mixes `SIGMA_FAULT_SEED` (the CI matrix axis) into the scenario seed so
    /// each matrix cell sweeps different workloads and kill points.
    fn matrix_config(kill_points: usize) -> CrashChurnConfig {
        let env_seed: u64 = std::env::var("SIGMA_FAULT_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        CrashChurnConfig {
            seed: 0xFA17 ^ env_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            kill_points,
            ..CrashChurnConfig::default()
        }
    }

    #[test]
    fn crash_churn_sweep_restores_everything() {
        let outcome = run_crash_churn(&matrix_config(4));
        assert_eq!(outcome.baseline.files, 6, "3 streams x 2 generations");
        for (i, kill) in outcome.kills.iter().enumerate() {
            assert!(
                kill.is_clean(),
                "kill point {} ({:?}) lost data: {}/{} restored, consistency: {:?}",
                i,
                kill.plan,
                kill.restored_intact,
                kill.files,
                kill.consistency_error
            );
        }
        assert!(outcome.all_clean());
        assert!(
            outcome.total_recoveries() >= outcome.kills.len(),
            "every sampled kill point must actually fire"
        );
    }

    #[test]
    fn crash_churn_is_deterministic() {
        let a = run_crash_churn(&matrix_config(2));
        let b = run_crash_churn(&matrix_config(2));
        let points_a: Vec<FaultPlan> = a.kills.iter().map(|k| k.plan.clone()).collect();
        let points_b: Vec<FaultPlan> = b.kills.iter().map(|k| k.plan.clone()).collect();
        assert_eq!(points_a, points_b, "fault plans are seed-deterministic");
        assert_eq!(
            a.baseline.physical_bytes, b.baseline.physical_bytes,
            "baseline runs are bit-stable"
        );
    }

    #[test]
    fn crash_churn_outcomes_match_across_backends() {
        let root = std::env::temp_dir().join(format!(
            "sigma-crash-churn-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let mut file_config = CrashChurnConfig::with_file_storage(&root);
        file_config.kill_points = 2;
        let mut memory_config = CrashChurnConfig::with_backend(BackendKind::Memory);
        memory_config.kill_points = 2;
        let sim_config = CrashChurnConfig {
            kill_points: 2,
            ..CrashChurnConfig::default()
        };

        let file = run_crash_churn(&file_config);
        let memory = run_crash_churn(&memory_config);
        let sim = run_crash_churn(&sim_config);

        for outcome in [&file, &memory, &sim] {
            assert!(outcome.all_clean());
            assert!(outcome.total_recoveries() >= outcome.kills.len());
        }
        // The workload is deterministic and the backend invisible to it: the
        // sampled kill plans and every outcome figure must be bit-identical.
        for other in [&memory, &sim] {
            assert_eq!(file.baseline.files, other.baseline.files);
            assert_eq!(file.baseline.physical_bytes, other.baseline.physical_bytes);
            for (a, b) in file.kills.iter().zip(&other.kills) {
                assert_eq!(a.plan, b.plan, "kill plans must match across backends");
                assert_eq!(a.restored_intact, b.restored_intact);
                assert_eq!(a.physical_bytes, b.physical_bytes);
            }
        }
        // The file-backend sweep really went through the on-disk directories.
        assert!(root.join("node-0").join("journal.wal").exists());
        std::fs::remove_dir_all(&root).expect("clean up scenario directory");
    }

    #[test]
    fn fault_plan_sampling_is_weighted_and_bounded() {
        let mut rng = DeterministicRng::new(7);
        let profile = vec![(0usize, 100u64), (1, 0), (2, 50)];
        for _ in 0..200 {
            let plan = FaultPlan::sample_one(&mut rng, &profile);
            let point = plan.points[0];
            assert_ne!(point.node, 1, "idle nodes are never sampled");
            let cap = profile
                .iter()
                .find(|&&(n, _)| n == point.node)
                .map(|&(_, c)| c)
                .unwrap();
            assert!(point.at_seq < cap, "kill point must be within activity");
        }
        assert!(FaultPlan::sample_one(&mut rng, &[]).points.is_empty());
    }
}
