//! Token authentication: static per-tenant bearer secrets.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::RequestEnvelope;
use sigma_core::SigmaError;
use std::collections::HashMap;

/// Rejects any request whose [`token`](RequestEnvelope::token) does not match
/// the secret registered for its tenant.
///
/// Unknown tenants, missing tokens and wrong tokens are all rejected with the
/// same [`SigmaError::Unauthorized`] (code
/// [`Unauthorized`](sigma_core::ServiceCode::Unauthorized)), so a probe
/// cannot distinguish "tenant exists" from "wrong secret".
///
/// # Example
///
/// ```
/// use sigma_service::middleware::TokenAuth;
///
/// let auth = TokenAuth::new().tenant("acme", "s3cret");
/// assert!(auth.check("acme", Some("s3cret")).is_ok());
/// assert!(auth.check("acme", Some("wrong")).is_err());
/// assert!(auth.check("ghost", Some("s3cret")).is_err());
/// ```
#[derive(Debug, Default)]
pub struct TokenAuth {
    tokens: HashMap<String, String>,
}

impl TokenAuth {
    /// Creates an authenticator that knows no tenants (rejects everything).
    pub fn new() -> Self {
        TokenAuth::default()
    }

    /// Registers (or replaces) a tenant's secret.
    pub fn tenant(mut self, tenant: impl Into<String>, token: impl Into<String>) -> Self {
        self.tokens.insert(tenant.into(), token.into());
        self
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tokens.len()
    }

    /// Validates a `(tenant, token)` pair the way [`handle`](Middleware::handle)
    /// does.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::Unauthorized`] when the tenant is unknown, the
    /// token is missing, or it does not match.
    pub fn check(&self, tenant: &str, token: Option<&str>) -> Result<(), SigmaError> {
        let authorized = match (self.tokens.get(tenant), token) {
            (Some(expected), Some(presented)) => {
                constant_time_eq(expected.as_bytes(), presented.as_bytes())
            }
            _ => false,
        };
        if authorized {
            Ok(())
        } else {
            Err(SigmaError::Unauthorized {
                tenant: tenant.to_string(),
            })
        }
    }
}

/// Byte comparison whose running time depends only on the lengths, so token
/// checks do not leak how many prefix bytes matched.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

impl Middleware for TokenAuth {
    fn name(&self) -> &'static str {
        "auth"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        self.check(&req.tenant, req.token())?;
        next.run(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;
    use std::sync::Arc;

    fn pipeline(auth: TokenAuth) -> PipelineExecutor {
        PipelineExecutor::new(
            vec![Arc::new(auth)],
            Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        )
    }

    #[test]
    fn valid_token_passes_through() {
        let p = pipeline(TokenAuth::new().tenant("acme", "secret"));
        let resp =
            p.execute(RequestEnvelope::new(1, "acme", Operation::Stats).with_token("secret"));
        assert!(resp.is_ok());
    }

    #[test]
    fn missing_wrong_and_unknown_are_all_unauthorized() {
        let p = pipeline(TokenAuth::new().tenant("acme", "secret"));
        for req in [
            RequestEnvelope::new(2, "acme", Operation::Stats),
            RequestEnvelope::new(3, "acme", Operation::Stats).with_token("nope"),
            RequestEnvelope::new(4, "ghost", Operation::Stats).with_token("secret"),
        ] {
            let id = req.request_id;
            let resp = p.execute(req);
            assert_eq!(resp.code, ServiceCode::Unauthorized, "request {}", id);
            assert_eq!(resp.request_id, id);
        }
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn later_registration_replaces_the_secret() {
        let auth = TokenAuth::new().tenant("a", "one").tenant("a", "two");
        assert_eq!(auth.tenant_count(), 1);
        assert!(auth.check("a", Some("two")).is_ok());
        assert!(auth.check("a", Some("one")).is_err());
    }
}
