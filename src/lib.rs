//! Σ-Dedupe: a scalable inline cluster deduplication framework for Big Data
//! protection.
//!
//! This is the façade crate of the workspace: it re-exports the public API of every
//! component crate so applications can depend on `sigma-dedupe` alone.
//!
//! * [`core`] — super-chunks, handprinting, similarity-based stateful routing,
//!   deduplication nodes, backup clients, the director and cluster orchestration
//!   (the paper's primary contribution), plus elastic membership: add/remove
//!   nodes on a live cluster with recipe-preserving rebalancing.
//! * [`hashkit`] — SHA-1, MD5, Rabin and gear hashes, and the [`Fingerprint`] type.
//! * [`chunking`] — static, CDC and TTTD chunkers.
//! * [`storage`] — containers, chunk index, fingerprint cache, similarity index.
//! * [`baselines`] — the comparison routing schemes (EMC stateless/stateful,
//!   Extreme Binning, chunk-level DHT, round-robin).
//! * [`workloads`] — synthetic stand-ins for the paper's four evaluation datasets.
//! * [`metrics`] — deduplication ratio/efficiency, NEDR, skew, reporting helpers.
//! * [`simulation`] — the trace-driven cluster simulation and the per-figure
//!   experiment drivers.
//! * [`service`] — the backup service layer: request/response envelopes, the
//!   middleware pipeline (auth, admission control, quota, rate limiting, fair
//!   scheduling, logging) and the in-process + framed-TCP transports in front
//!   of the cluster, with per-tenant accounting surfaced through `Stats`.
//!
//! Most programs only need [`prelude`]:
//!
//! ```
//! use sigma_dedupe::prelude::*;
//! ```
//!
//! # Quick start
//!
//! ```
//! use sigma_dedupe::{BackupClient, DedupCluster, SigmaConfig};
//! use std::sync::Arc;
//!
//! let cluster = Arc::new(DedupCluster::with_similarity_router(4, SigmaConfig::default()));
//! let client = BackupClient::new(cluster.clone(), 0);
//! let report = client.backup_bytes("hello.txt", b"hello sigma-dedupe").unwrap();
//! assert_eq!(cluster.restore_file(report.file_id).unwrap(), b"hello sigma-dedupe");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sigma_baselines as baselines;
pub use sigma_chunking as chunking;
pub use sigma_core as core;
pub use sigma_hashkit as hashkit;
pub use sigma_metrics as metrics;
pub use sigma_service as service;
pub use sigma_simulation as simulation;
pub use sigma_storage as storage;
pub use sigma_workloads as workloads;

pub use sigma_baselines::{
    ChunkDhtRouter, ExtremeBinningRouter, RoundRobinRouter, StatefulRouter, StatelessRouter,
};
pub use sigma_core::ServiceCode;
pub use sigma_core::{
    BackupClient, ChunkDescriptor, DataRouter, DedupCluster, DedupNode, Director, FileBackupReport,
    FileRecipe, GcReport, Handprint, IngestPipeline, NodeGcReport, NodeMap, RebalanceReport,
    Rebalancer, RecipeEntry, RecoveryReport, RestoreReport, SigmaConfig, SigmaError,
    SimilarityRouter, StreamBatch, StreamPayload, SuperChunk, SuperChunkBuilder,
};
pub use sigma_hashkit::{Digest, Fingerprint, FingerprintAlgorithm, Md5, Sha1};
pub use sigma_service::{
    BackupService, Operation, RequestEnvelope, ResponseEnvelope, ServiceBuilder, ServiceConfig,
    ServiceStack, TcpClient, TcpService,
};
pub use sigma_storage::{
    BackendKind, CrashMode, DiskParams, FileBackend, Journal, JournalRecord, MemoryBackend,
    SimDiskBackend, StorageBackend, StorageError,
};

/// One-line import for programs and tests: every commonly-used type from the
/// façade plus the helper modules (`payload`, `presets`, `runner`,
/// `experiments`, `retention_churn`, `tenant_storm`, `report`) under their
/// short names.
///
/// ```
/// use sigma_dedupe::prelude::*;
/// use std::sync::Arc;
///
/// let cluster = Arc::new(DedupCluster::with_similarity_router(2, SigmaConfig::default()));
/// let client = BackupClient::new(cluster.clone(), 0);
/// let report = client.backup_bytes("p.txt", b"prelude").unwrap();
/// assert_eq!(cluster.restore_file(report.file_id).unwrap(), b"prelude");
/// ```
pub mod prelude {
    // Cluster, client and configuration.
    pub use sigma_core::{
        BackupClient, ChunkDescriptor, DataRouter, DedupCluster, DedupNode, Director,
        FileBackupReport, FileRecipe, GcReport, Handprint, IngestPipeline, NodeGcReport, NodeMap,
        RebalanceReport, Rebalancer, RecipeEntry, RecoveryReport, RestoreReport, ServiceCode,
        SigmaConfig, SigmaError, SimilarityRouter, StreamBatch, StreamPayload, SuperChunk,
        SuperChunkBuilder,
    };

    // Hashes and chunking.
    pub use sigma_chunking::ChunkerParams;
    pub use sigma_hashkit::{Digest, Fingerprint, FingerprintAlgorithm, Md5, Sha1};

    // Routing baselines.
    pub use sigma_baselines::{
        ChunkDhtRouter, ExtremeBinningRouter, RoundRobinRouter, StatefulRouter, StatelessRouter,
    };

    // Durable storage.
    pub use sigma_storage::{
        BackendKind, ContainerId, CrashMode, DiskParams, FileBackend, Journal, JournalRecord,
        MemoryBackend, SimDiskBackend, StorageBackend, StorageError,
    };

    // Reporting and workload generation.
    pub use sigma_metrics::report::{self, human_bytes, TextTable};
    pub use sigma_workloads::payload::{
        self, generational_payloads, random_bytes, versioned_payloads, GenerationalPayloadParams,
        VersionedPayloadParams,
    };
    pub use sigma_workloads::{presets, Scale};

    // Simulation drivers.
    pub use sigma_simulation::experiments;
    pub use sigma_simulation::retention_churn::{self, run_retention, RetentionConfig};
    pub use sigma_simulation::runner::{self, run_cluster, SimulationConfig};
    pub use sigma_simulation::tenant_storm::{
        self, run_tenant_storm, TenantStormConfig, TenantStormReport,
    };

    // Service layer.
    pub use sigma_metrics::{jain_fairness_index, TenantStatsReport};
    pub use sigma_service::middleware::{
        AdmissionControl, FairScheduler, RateLimit, RequestLog, TenantQuota, TokenAuth,
    };
    pub use sigma_service::{
        BackupService, Operation, RequestEnvelope, ResponseEnvelope, ServiceBuilder, ServiceConfig,
        ServiceStack, TcpClient, TcpService, AUTH_TOKEN_KEY,
    };
}

#[cfg(test)]
mod tests {
    use crate::Digest;

    #[test]
    fn facade_reexports_are_usable() {
        let config = crate::SigmaConfig::default();
        assert_eq!(config.handprint_size, 8);
        let fp = crate::Sha1::fingerprint(b"reexport");
        assert_eq!(fp.as_bytes().len(), crate::Fingerprint::LEN);
    }
}
