//! Self-describing containers: the on-disk unit of chunk storage.
//!
//! A container (Section 3.3 of the paper, following the Data Domain design) holds a
//! *data section* with the unique chunks written to it and a *metadata section*
//! listing each chunk's fingerprint, offset and length.  All disk accesses happen at
//! container granularity, which preserves the locality of a backup stream: chunks
//! that were written together are read (and their fingerprints prefetched) together.

use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;

/// Magic prefix of a serialized container object ("SCNT").
pub(crate) const CONTAINER_BLOB_MAGIC: u32 = 0x5343_4E54;

/// Current container-object format version.
pub(crate) const CONTAINER_BLOB_VERSION: u8 = 1;

/// Byte offset of the data section inside a serialized container object:
/// magic (4) + version (1) + id (8) + logical size (8) + data length (4).
///
/// A persistent backend serves chunk reads straight from the object file at
/// `CONTAINER_BLOB_DATA_OFFSET + chunk offset`, so this constant is part of the
/// on-disk format, not an implementation detail.
pub const CONTAINER_BLOB_DATA_OFFSET: usize = 4 + 1 + 8 + 8 + 4;

/// Identifier of a container within one deduplication node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ContainerId(u64);

impl ContainerId {
    /// Wraps a raw container number.
    pub fn new(id: u64) -> Self {
        ContainerId(id)
    }

    /// The raw container number.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "container-{}", self.0)
    }
}

/// Metadata record for one chunk inside a container's metadata section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Fingerprint of the chunk.
    pub fingerprint: Fingerprint,
    /// Byte offset of the chunk within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

/// The metadata section of a container.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ContainerMeta {
    /// Chunk records in write order.
    pub records: Vec<ChunkRecord>,
}

impl ContainerMeta {
    /// Fingerprints of every chunk in the container, in write order.
    pub fn fingerprints(&self) -> impl Iterator<Item = Fingerprint> + '_ {
        self.records.iter().map(|r| r.fingerprint)
    }

    /// Number of chunks described.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no chunks are described.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size in bytes of the serialized metadata section (fixed-width estimate used
    /// by the disk model: fingerprint + offset + length per record).
    pub fn serialized_size(&self) -> usize {
        self.records.len() * (Fingerprint::LEN + 8)
    }
}

/// A sealed, immutable container.
///
/// A container may hold *synthetic* chunks (metadata records without payload bytes)
/// when the node is driven by a fingerprint trace rather than real data; the data
/// section then stays shorter than the logical size and those chunks cannot be read
/// back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Container {
    id: ContainerId,
    meta: ContainerMeta,
    data: Vec<u8>,
    logical_size: usize,
}

impl Container {
    /// Rebuilds a sealed container from its serialized parts (journal replay).
    pub(crate) fn from_parts(
        id: ContainerId,
        meta: ContainerMeta,
        data: Vec<u8>,
        logical_size: usize,
    ) -> Self {
        Container {
            id,
            meta,
            data,
            logical_size,
        }
    }

    /// The container's identifier.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Returns the same container under a different identifier.
    ///
    /// Container IDs are allocated per node, so a container migrated to another
    /// node by the rebalancer must be re-identified in its new store's ID space;
    /// chunk offsets and lengths are unaffected.
    pub fn with_id(mut self, id: ContainerId) -> Container {
        self.id = id;
        self
    }

    /// The metadata section.
    pub fn meta(&self) -> &ContainerMeta {
        &self.meta
    }

    /// The raw data section (may be shorter than [`data_size`](Container::data_size)
    /// when synthetic chunks were appended).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Logical size of the data section in bytes (including synthetic chunks).
    pub fn data_size(&self) -> usize {
        self.logical_size
    }

    /// Bytes of real payload held in memory.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// Number of chunks stored.
    pub fn chunk_count(&self) -> usize {
        self.meta.len()
    }

    /// Looks up a chunk's payload by fingerprint.
    ///
    /// Returns `None` when the fingerprint is not present in this container, or when
    /// it was appended as a synthetic (metadata-only) chunk.
    pub fn chunk_data(&self, fingerprint: &Fingerprint) -> Option<&[u8]> {
        self.meta
            .records
            .iter()
            .find(|r| &r.fingerprint == fingerprint)
            .filter(|r| (r.offset + r.len) as usize <= self.data.len())
            .map(|r| &self.data[r.offset as usize..(r.offset + r.len) as usize])
    }

    /// True if the container stores a chunk with this fingerprint.
    pub fn contains(&self, fingerprint: &Fingerprint) -> bool {
        self.meta
            .records
            .iter()
            .any(|r| &r.fingerprint == fingerprint)
    }

    /// Serializes the container into the self-describing object format a
    /// persistent backend stores one file of:
    ///
    /// ```text
    /// magic u32 | version u8 | id u64 | logical_size u64 | data_len u32
    /// data section (data_len bytes)            <- starts at CONTAINER_BLOB_DATA_OFFSET
    /// record_count u32 | (fingerprint, offset u32, len u32) x record_count
    /// ```
    pub fn encode_blob(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            CONTAINER_BLOB_DATA_OFFSET + self.data.len() + 4 + self.meta.serialized_size(),
        );
        out.extend_from_slice(&CONTAINER_BLOB_MAGIC.to_le_bytes());
        out.push(CONTAINER_BLOB_VERSION);
        out.extend_from_slice(&self.id.as_u64().to_le_bytes());
        out.extend_from_slice(&(self.logical_size as u64).to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u32).to_le_bytes());
        debug_assert_eq!(out.len(), CONTAINER_BLOB_DATA_OFFSET);
        out.extend_from_slice(&self.data);
        out.extend_from_slice(&(self.meta.records.len() as u32).to_le_bytes());
        for record in &self.meta.records {
            out.extend_from_slice(record.fingerprint.as_bytes());
            out.extend_from_slice(&record.offset.to_le_bytes());
            out.extend_from_slice(&record.len.to_le_bytes());
        }
        out
    }

    /// Decodes a container object produced by [`encode_blob`](Self::encode_blob).
    ///
    /// Returns `None` on any framing violation: bad magic or version, truncated
    /// sections, or trailing garbage.
    pub fn decode_blob(bytes: &[u8]) -> Option<Container> {
        fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if bytes.len() < n {
                return None;
            }
            let (head, tail) = bytes.split_at(n);
            *bytes = tail;
            Some(head)
        }
        let mut r = bytes;
        let magic = u32::from_le_bytes(take(&mut r, 4)?.try_into().ok()?);
        if magic != CONTAINER_BLOB_MAGIC {
            return None;
        }
        if *take(&mut r, 1)?.first()? != CONTAINER_BLOB_VERSION {
            return None;
        }
        let id = u64::from_le_bytes(take(&mut r, 8)?.try_into().ok()?);
        let logical_size = u64::from_le_bytes(take(&mut r, 8)?.try_into().ok()?) as usize;
        let data_len = u32::from_le_bytes(take(&mut r, 4)?.try_into().ok()?) as usize;
        let data = take(&mut r, data_len)?.to_vec();
        let record_count = u32::from_le_bytes(take(&mut r, 4)?.try_into().ok()?) as usize;
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let fingerprint = Fingerprint::new(take(&mut r, Fingerprint::LEN)?.try_into().ok()?);
            let offset = u32::from_le_bytes(take(&mut r, 4)?.try_into().ok()?);
            let len = u32::from_le_bytes(take(&mut r, 4)?.try_into().ok()?);
            records.push(ChunkRecord {
                fingerprint,
                offset,
                len,
            });
        }
        if !r.is_empty() {
            return None;
        }
        Some(Container {
            id: ContainerId::new(id),
            meta: ContainerMeta { records },
            data,
            logical_size,
        })
    }
}

/// An open (mutable) container being filled by one backup stream.
///
/// # Example
///
/// ```
/// use sigma_storage::{ContainerBuilder, ContainerId};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let mut builder = ContainerBuilder::new(ContainerId::new(1), 1024 * 1024);
/// let payload = b"some unique chunk".to_vec();
/// let fp = Sha1::fingerprint(&payload);
/// assert!(builder.try_append(fp, &payload));
/// let container = builder.seal();
/// assert_eq!(container.chunk_count(), 1);
/// assert_eq!(container.chunk_data(&fp).unwrap(), payload.as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct ContainerBuilder {
    id: ContainerId,
    capacity: usize,
    meta: ContainerMeta,
    data: Vec<u8>,
    used: usize,
}

impl ContainerBuilder {
    /// Creates an open container with the given identifier and data-section capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(id: ContainerId, capacity: usize) -> Self {
        assert!(capacity > 0, "container capacity must be non-zero");
        ContainerBuilder {
            id,
            capacity,
            meta: ContainerMeta::default(),
            data: Vec::new(),
            used: 0,
        }
    }

    /// The container's identifier.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Logical bytes currently used in the data section.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still available in the data section.
    pub fn remaining(&self) -> usize {
        self.capacity.saturating_sub(self.used)
    }

    /// Number of chunks appended so far.
    pub fn chunk_count(&self) -> usize {
        self.meta.len()
    }

    /// True if a chunk of `len` bytes fits in the remaining capacity.
    pub fn fits(&self, len: usize) -> bool {
        len <= self.remaining()
    }

    /// Appends a chunk if it fits; returns `false` (without modifying the container)
    /// when the chunk does not fit.
    pub fn try_append(&mut self, fingerprint: Fingerprint, data: &[u8]) -> bool {
        if !self.fits(data.len()) {
            return false;
        }
        self.data.extend_from_slice(data);
        self.push_record(fingerprint, data.len() as u32);
        true
    }

    /// Appends a *synthetic* chunk: only its metadata record and logical length are
    /// recorded, no payload bytes are kept.  Used when a node is driven by a
    /// fingerprint trace.  Returns `false` when the chunk does not fit.
    pub fn try_append_synthetic(&mut self, fingerprint: Fingerprint, len: u32) -> bool {
        if !self.fits(len as usize) {
            return false;
        }
        self.push_record(fingerprint, len);
        true
    }

    fn push_record(&mut self, fingerprint: Fingerprint, len: u32) {
        let offset = self.used as u32;
        self.used += len as usize;
        self.meta.records.push(ChunkRecord {
            fingerprint,
            offset,
            len,
        });
    }

    /// Seals the container, making it immutable.
    pub fn seal(self) -> Container {
        Container {
            id: self.id,
            meta: self.meta,
            data: self.data,
            logical_size: self.used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sigma_hashkit::{Digest, Sha1};

    #[test]
    fn container_id_display() {
        assert_eq!(ContainerId::new(7).to_string(), "container-7");
        assert_eq!(ContainerId::new(7).as_u64(), 7);
    }

    #[test]
    fn append_and_lookup() {
        let mut b = ContainerBuilder::new(ContainerId::new(1), 4096);
        let chunks: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 100]).collect();
        let fps: Vec<Fingerprint> = chunks.iter().map(|c| Sha1::fingerprint(c)).collect();
        for (fp, c) in fps.iter().zip(&chunks) {
            assert!(b.try_append(*fp, c));
        }
        assert_eq!(b.used(), 1000);
        assert_eq!(b.chunk_count(), 10);
        let sealed = b.seal();
        for (fp, c) in fps.iter().zip(&chunks) {
            assert!(sealed.contains(fp));
            assert_eq!(sealed.chunk_data(fp).unwrap(), c.as_slice());
        }
        assert!(!sealed.contains(&Fingerprint::ZERO));
        assert!(sealed.chunk_data(&Fingerprint::ZERO).is_none());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut b = ContainerBuilder::new(ContainerId::new(2), 150);
        assert!(b.try_append(Sha1::fingerprint(b"a"), &[1u8; 100]));
        assert!(!b.try_append(Sha1::fingerprint(b"b"), &[2u8; 100]));
        assert_eq!(b.chunk_count(), 1, "failed append must not modify state");
        assert_eq!(b.remaining(), 50);
        assert!(b.fits(50));
        assert!(!b.fits(51));
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        ContainerBuilder::new(ContainerId::new(0), 0);
    }

    #[test]
    fn meta_serialized_size_scales_with_records() {
        let mut b = ContainerBuilder::new(ContainerId::new(3), 4096);
        assert_eq!(b.clone().seal().meta().serialized_size(), 0);
        b.try_append(Sha1::fingerprint(b"x"), b"x");
        b.try_append(Sha1::fingerprint(b"y"), b"y");
        assert_eq!(
            b.seal().meta().serialized_size(),
            2 * (Fingerprint::LEN + 8)
        );
    }

    #[test]
    fn blob_roundtrip_including_synthetic_chunks() {
        let mut b = ContainerBuilder::new(ContainerId::new(11), 4096);
        assert!(b.try_append(Sha1::fingerprint(b"real"), b"real payload"));
        assert!(b.try_append_synthetic(Sha1::fingerprint(b"ghost"), 64));
        assert!(b.try_append(Sha1::fingerprint(b"more"), b"more bytes"));
        let sealed = b.seal();
        let blob = sealed.encode_blob();
        assert_eq!(
            &blob[CONTAINER_BLOB_DATA_OFFSET..CONTAINER_BLOB_DATA_OFFSET + sealed.data().len()],
            sealed.data(),
            "data section sits at the documented offset"
        );
        let decoded = Container::decode_blob(&blob).expect("roundtrip");
        assert_eq!(decoded, sealed);
    }

    #[test]
    fn blob_decode_rejects_corruption() {
        let sealed = {
            let mut b = ContainerBuilder::new(ContainerId::new(5), 128);
            b.try_append(Sha1::fingerprint(b"x"), b"xyz");
            b.seal()
        };
        let blob = sealed.encode_blob();
        assert!(
            Container::decode_blob(&blob[..blob.len() - 1]).is_none(),
            "truncated"
        );
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(
            Container::decode_blob(&trailing).is_none(),
            "trailing garbage"
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Container::decode_blob(&bad_magic).is_none(), "bad magic");
        let mut bad_version = blob;
        bad_version[4] = 99;
        assert!(
            Container::decode_blob(&bad_version).is_none(),
            "bad version"
        );
    }

    proptest! {
        #[test]
        fn prop_sealed_container_roundtrips_all_chunks(
            payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..32)
        ) {
            let total: usize = payloads.iter().map(|p| p.len()).sum();
            let mut b = ContainerBuilder::new(ContainerId::new(9), total);
            let mut appended = Vec::new();
            for p in &payloads {
                let fp = Sha1::fingerprint(p);
                prop_assert!(b.try_append(fp, p));
                appended.push((fp, p.clone()));
            }
            let sealed = b.seal();
            prop_assert_eq!(sealed.data_size(), total);
            for (fp, p) in appended {
                // Duplicate payloads share a fingerprint; lookup returns the first
                // record's bytes, which are identical by construction.
                prop_assert_eq!(sealed.chunk_data(&fp).unwrap(), p.as_slice());
            }
        }
    }
}
