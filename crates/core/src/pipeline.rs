//! The parallel ingest pipeline: multi-threaded chunking, fingerprinting and
//! cluster submission.
//!
//! [`BackupClient`](crate::BackupClient) drives one stream through chunking,
//! fingerprinting and routing on the calling thread.  That is faithful to the
//! protocol but leaves a multi-core client (and a cluster full of striped locks)
//! idle.  [`IngestPipeline`] runs the same four stages on a worker pool:
//!
//! 1. **Chunk** — each stream's buffer is split by the configured chunker; streams
//!    are chunked in parallel with each other.
//! 2. **Fingerprint** — the chunk lists are cut into fixed-size tasks that the
//!    pool hashes concurrently, *including within a single stream*; descriptors
//!    are written back in chunk order, so the result is byte-for-byte the sequence
//!    the serial client would have produced.
//! 3. **Assemble** — per stream, descriptors and payloads are folded through a
//!    [`SuperChunkBuilder`] in order, yielding the exact super-chunk boundaries of
//!    the serial path.
//! 4. **Submit** — streams are routed concurrently (one worker walks each
//!    stream's super-chunks front to back), so per-stream order — and therefore
//!    every file recipe and restore — is preserved while the cluster sees
//!    multi-stream traffic.
//!
//! Duplicate detection stays exact under this concurrency because
//! [`DedupNode`](crate::DedupNode) claims each new fingerprint atomically in its
//! striped chunk index before storing it: racing streams cannot double-store a
//! chunk, so `dedup_ratio` and `physical_bytes` match the serial client (the
//! equivalence property suite pins this down over hundreds of generated
//! workloads).
//!
//! The pool width comes from [`crate::SigmaConfig::parallelism`] (`0` = one
//! worker per CPU core) or [`IngestPipeline::with_parallelism`].
//!
//! # Example
//!
//! ```
//! use sigma_core::{DedupCluster, IngestPipeline, SigmaConfig, StreamPayload};
//! use std::sync::Arc;
//!
//! let config = SigmaConfig::builder().parallelism(4).build().unwrap();
//! let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
//! let pipeline = IngestPipeline::new(cluster.clone());
//!
//! let streams: Vec<StreamPayload> = (0..4u64)
//!     .map(|s| StreamPayload::new(s, format!("stream-{s}.bin"), vec![s as u8; 64 * 1024]))
//!     .collect();
//! let reports = pipeline.backup_streams(streams).unwrap();
//! assert_eq!(reports.len(), 4);
//! for report in &reports {
//!     assert_eq!(report.logical_bytes, 64 * 1024);
//!     let restored = cluster.restore_file(report.file_id).unwrap();
//!     assert_eq!(restored.len(), 64 * 1024);
//! }
//! ```

use crate::{
    ChunkDescriptor, DedupCluster, FileBackupReport, RecipeEntry, Result, SuperChunk,
    SuperChunkBuilder,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How many chunks one fingerprint task hashes.  Small enough that a single
/// large stream fans out across the whole pool, large enough that task handoff
/// is noise next to the hashing itself (128 × 4 KB ≈ 0.5 MB per task).
const FINGERPRINT_TASK_CHUNKS: usize = 128;

/// One backup stream handed to the pipeline: an identifier, a file name for the
/// director, and the stream's bytes.
#[derive(Debug, Clone)]
pub struct StreamPayload {
    /// The data-stream identifier (distinct streams get distinct open containers).
    pub stream_id: u64,
    /// The name the file is registered under for restore.
    pub name: String,
    /// The stream's contents.
    pub data: Vec<u8>,
}

impl StreamPayload {
    /// Creates a stream payload.
    pub fn new(stream_id: u64, name: impl Into<String>, data: Vec<u8>) -> Self {
        StreamPayload {
            stream_id,
            name: name.into(),
            data,
        }
    }
}

/// A multi-threaded ingest front end bound to one cluster.
///
/// See the [module documentation](self) for the stage-by-stage design.
///
/// # Example
///
/// ```
/// use sigma_core::{DedupCluster, IngestPipeline, SigmaConfig};
/// use std::sync::Arc;
///
/// let cluster = Arc::new(DedupCluster::with_similarity_router(2, SigmaConfig::default()));
/// let pipeline = IngestPipeline::with_parallelism(cluster.clone(), 2);
/// let report = pipeline.backup_stream(9, "notes.txt", b"tiny file".to_vec()).unwrap();
/// assert_eq!(cluster.restore_file(report.file_id).unwrap(), b"tiny file");
/// ```
pub struct IngestPipeline {
    cluster: Arc<DedupCluster>,
    parallelism: usize,
    session_id: u64,
}

impl std::fmt::Debug for IngestPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("parallelism", &self.parallelism)
            .field("session_id", &self.session_id)
            .finish()
    }
}

impl IngestPipeline {
    /// Creates a pipeline whose pool width is the cluster configuration's
    /// [`effective_parallelism`](crate::SigmaConfig::effective_parallelism).
    pub fn new(cluster: Arc<DedupCluster>) -> Self {
        let parallelism = cluster.config().effective_parallelism();
        IngestPipeline::with_parallelism(cluster, parallelism)
    }

    /// Creates a pipeline with an explicit worker count (`0` = one per CPU core).
    pub fn with_parallelism(cluster: Arc<DedupCluster>, parallelism: usize) -> Self {
        let parallelism = match parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let session_id = cluster.director().open_session("pipeline");
        IngestPipeline {
            cluster,
            parallelism,
            session_id,
        }
    }

    /// The worker-pool width.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The backup session this pipeline registers files under.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Backs up one stream (convenience wrapper over
    /// [`backup_streams`](IngestPipeline::backup_streams); chunking and
    /// fingerprinting still fan out across the pool).
    ///
    /// # Errors
    ///
    /// Propagates routing/storage errors from the cluster.
    pub fn backup_stream(
        &self,
        stream_id: u64,
        name: impl Into<String>,
        data: Vec<u8>,
    ) -> Result<FileBackupReport> {
        let mut reports = self.backup_streams(vec![StreamPayload::new(stream_id, name, data)])?;
        Ok(reports.pop().expect("one stream in, one report out"))
    }

    /// Backs up a batch of streams through the parallel pipeline.
    ///
    /// Reports come back in input order.  Each stream becomes one file, restorable
    /// via [`DedupCluster::restore_file`]; per-stream chunk order is preserved end
    /// to end, so restores are byte-identical to the serial
    /// [`BackupClient`](crate::BackupClient) path.
    ///
    /// # Errors
    ///
    /// Returns the first routing/storage error any stream hit; the other streams
    /// still run to completion (their unique chunks are stored, but no file is
    /// registered for any stream when an error is returned).
    pub fn backup_streams(&self, streams: Vec<StreamPayload>) -> Result<Vec<FileBackupReport>> {
        let chunker = self.cluster.config().chunker.build();
        self.backup_streams_with_chunker(streams, chunker.as_ref())
    }

    /// Runs the pipeline with an explicit chunker instead of the configured one.
    ///
    /// The `sigma-bench` runner uses this to drive the scalar *reference*
    /// chunkers through the identical pipeline in the same process, so the
    /// persisted before/after ingest numbers differ only in the chunker
    /// implementation.
    ///
    /// # Errors
    ///
    /// Same contract as [`backup_streams`](IngestPipeline::backup_streams).
    pub fn backup_streams_with_chunker(
        &self,
        streams: Vec<StreamPayload>,
        chunker: &dyn sigma_chunking::Chunker,
    ) -> Result<Vec<FileBackupReport>> {
        let algorithm = self.cluster.config().fingerprint_algorithm;
        self.backup_streams_with(streams, chunker, &|data| algorithm.fingerprint(data))
    }

    /// Runs the pipeline with an explicit chunker *and* fingerprint function.
    ///
    /// The most general entry point: benchmarks swap in the reference hot-loop
    /// implementations (scalar chunker scan, un-unrolled SHA-1) while keeping
    /// every other stage identical.  The fingerprint function must be a drop-in
    /// for the configured algorithm — same digests in, same dedup decisions
    /// out — or restored data will not match what deduplication stored.
    ///
    /// # Errors
    ///
    /// Same contract as [`backup_streams`](IngestPipeline::backup_streams).
    pub fn backup_streams_with(
        &self,
        streams: Vec<StreamPayload>,
        chunker: &dyn sigma_chunking::Chunker,
        fingerprint: &(dyn Fn(&[u8]) -> sigma_hashkit::Fingerprint + Sync),
    ) -> Result<Vec<FileBackupReport>> {
        let config = self.cluster.config().clone();

        let names: Vec<String> = streams.iter().map(|s| s.name.clone()).collect();
        let stream_ids: Vec<u64> = streams.iter().map(|s| s.stream_id).collect();

        // The stream buffers are the scratch the whole pipeline works out of:
        // stages 1 and 2 only ever *borrow* them (boundaries + fingerprints over
        // slices), and the single per-chunk payload copy happens in stage 3,
        // straight into the exactly-sized Vec the super-chunk will own.  The old
        // shape materialised every chunk as an intermediate Vec in stage 1 — one
        // extra allocation and copy per chunk.
        let datas: Vec<Vec<u8>> = streams.into_iter().map(|s| s.data).collect();

        // Stage 1: chunk-boundary scan per stream (streams in parallel).
        let boundaries: Vec<Vec<usize>> =
            run_pool(self.parallelism, (0..datas.len()).collect(), |_, stream| {
                chunker.chunk_boundaries(&datas[stream])
            });
        // Chunk `j` of stream `s` spans `chunk_span(&boundaries[s], j)`.
        let chunk_span =
            |b: &[usize], j: usize| -> (usize, usize) { (if j == 0 { 0 } else { b[j - 1] }, b[j]) };

        // Stage 2: fingerprint fixed-size chunk ranges (parallel across and within
        // streams) directly from the stream buffers, then write the descriptors
        // back in chunk order.
        let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
        for (stream, bounds) in boundaries.iter().enumerate() {
            let mut start = 0;
            while start < bounds.len() {
                let end = (start + FINGERPRINT_TASK_CHUNKS).min(bounds.len());
                tasks.push((stream, start, end));
                start = end;
            }
        }
        let fingerprinted: Vec<Vec<ChunkDescriptor>> = run_pool(
            self.parallelism,
            tasks.clone(),
            |_, (stream, start, end)| {
                let data = &datas[stream];
                let bounds = &boundaries[stream];
                (start..end)
                    .map(|j| {
                        let (lo, hi) = chunk_span(bounds, j);
                        ChunkDescriptor::new(fingerprint(&data[lo..hi]), (hi - lo) as u32)
                    })
                    .collect()
            },
        );
        let mut descriptors: Vec<Vec<ChunkDescriptor>> = boundaries
            .iter()
            .map(|b| Vec::with_capacity(b.len()))
            .collect();
        for ((stream, _, _), descs) in tasks.into_iter().zip(fingerprinted) {
            descriptors[stream].extend(descs);
        }

        // Stage 3: assemble super-chunks in order (streams in parallel), copying
        // each chunk payload out of the stream buffer exactly once.
        let super_chunk_size = config.super_chunk_size;
        let assembled: Vec<(u64, Vec<SuperChunk>)> = run_pool(
            self.parallelism,
            descriptors.into_iter().enumerate().collect(),
            |_, (stream, descs)| {
                let data = &datas[stream];
                let bounds = &boundaries[stream];
                let logical = data.len() as u64;
                let mut builder = SuperChunkBuilder::new(super_chunk_size);
                let mut supers = Vec::new();
                for (j, descriptor) in descs.into_iter().enumerate() {
                    let (lo, hi) = chunk_span(bounds, j);
                    if let Some(sc) = builder.push_chunk(descriptor, data[lo..hi].to_vec()) {
                        supers.push(sc);
                    }
                }
                supers.extend(builder.finish());
                debug_assert!(builder.is_empty(), "finish drains the builder");
                (logical, supers)
            },
        )
        .into_iter()
        .collect();

        // Stage 4: submit each stream's super-chunks in order via the cluster's
        // batched entry point, streams in parallel.  File-boundary hints are
        // unique per stream within this call.
        let marker_base = self.cluster.director().file_count() as u64;
        let cluster = &self.cluster;
        let outcomes: Vec<Result<(FileBackupReport, Vec<RecipeEntry>)>> = run_pool(
            self.parallelism,
            assembled.into_iter().zip(stream_ids).collect::<Vec<_>>(),
            |i, ((logical_bytes, supers), stream_id)| {
                let receipts = cluster.backup_super_chunk_batch(
                    stream_id,
                    &supers,
                    Some(marker_base + i as u64),
                )?;
                let mut report = FileBackupReport {
                    file_id: 0,
                    logical_bytes,
                    transferred_bytes: 0,
                    chunks: 0,
                    super_chunks: 0,
                    duplicate_chunks: 0,
                };
                let mut recipe: Vec<RecipeEntry> = Vec::new();
                for (sc, (receipt, node)) in supers.iter().zip(&receipts) {
                    report.chunks += sc.chunk_count() as u64;
                    report.super_chunks += 1;
                    report.transferred_bytes += receipt.unique_bytes;
                    report.duplicate_chunks += receipt.duplicate_chunks;
                    for d in sc.descriptors() {
                        recipe.push(RecipeEntry {
                            fingerprint: d.fingerprint,
                            len: d.len,
                            node: *node,
                        });
                    }
                }
                Ok((report, recipe))
            },
        );

        // Registration happens after every stream succeeded, in input order, so the
        // batch either yields a full set of restorable files or none.
        let mut finished = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            finished.push(outcome?);
        }
        Ok(finished
            .into_iter()
            .zip(names)
            .map(|((mut report, recipe), name)| {
                report.file_id = self.cluster.director().register_file(
                    self.session_id,
                    &name,
                    report.logical_bytes,
                    recipe,
                );
                report
            })
            .collect())
    }
}

/// Runs `f` over `items` on up to `workers` threads, returning results in item
/// order.  Falls back to the calling thread when one worker (or one item) makes
/// threading pointless.  Worker panics propagate to the caller via scope join.
///
/// Shared with [`DedupCluster::backup_batches_concurrent`], which is the same
/// fan-out over stream batches instead of pipeline stages.
pub(crate) fn run_pool<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let item = jobs[i].lock().take().expect("each job is claimed once");
                *slots[i].lock() = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackupClient, SigmaConfig};

    fn test_config() -> SigmaConfig {
        SigmaConfig::builder()
            .super_chunk_size(16 * 1024)
            .chunker(sigma_chunking::ChunkerParams::fixed(1024))
            .container_capacity(64 * 1024)
            .cache_containers(8)
            .parallelism(4)
            .build()
            .unwrap()
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn run_pool_preserves_item_order() {
        let out = run_pool(4, (0..100usize).collect(), |i, item| {
            assert_eq!(i, item);
            item * 2
        });
        assert_eq!(out, (0..100usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_pool_on_empty_input_is_empty() {
        let out: Vec<usize> = run_pool(4, Vec::<usize>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pipeline_round_trips_multiple_streams() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(4, test_config()));
        let pipeline = IngestPipeline::new(cluster.clone());
        assert_eq!(pipeline.parallelism(), 4);
        let streams: Vec<StreamPayload> = (0..6u64)
            .map(|s| StreamPayload::new(s, format!("s{s}"), pseudo_random(100_000, s)))
            .collect();
        let datas: Vec<Vec<u8>> = streams.iter().map(|s| s.data.clone()).collect();
        let reports = pipeline.backup_streams(streams).unwrap();
        cluster.flush();
        for (report, data) in reports.iter().zip(&datas) {
            assert_eq!(report.logical_bytes, data.len() as u64);
            assert_eq!(&cluster.restore_file(report.file_id).unwrap(), data);
        }
    }

    #[test]
    fn pipeline_matches_serial_client_on_one_stream() {
        let data = pseudo_random(200_000, 7);

        let serial_cluster = Arc::new(DedupCluster::with_similarity_router(3, test_config()));
        let client = BackupClient::new(serial_cluster.clone(), 0);
        let serial_report = client.backup_bytes("f", &data).unwrap();
        serial_cluster.flush();

        let parallel_cluster = Arc::new(DedupCluster::with_similarity_router(3, test_config()));
        let pipeline = IngestPipeline::new(parallel_cluster.clone());
        let parallel_report = pipeline.backup_stream(0, "f", data.clone()).unwrap();
        parallel_cluster.flush();

        // One stream means identical submission order, so everything matches.
        assert_eq!(parallel_report.chunks, serial_report.chunks);
        assert_eq!(parallel_report.super_chunks, serial_report.super_chunks);
        assert_eq!(
            parallel_report.transferred_bytes,
            serial_report.transferred_bytes
        );
        let serial_stats = serial_cluster.stats();
        let parallel_stats = parallel_cluster.stats();
        assert_eq!(parallel_stats.logical_bytes, serial_stats.logical_bytes);
        assert_eq!(parallel_stats.physical_bytes, serial_stats.physical_bytes);
        assert_eq!(parallel_stats.node_usage, serial_stats.node_usage);
        assert_eq!(
            parallel_cluster
                .restore_file(parallel_report.file_id)
                .unwrap(),
            serial_cluster.restore_file(serial_report.file_id).unwrap()
        );
    }

    #[test]
    fn duplicate_streams_transfer_once() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(1, test_config()));
        let pipeline = IngestPipeline::new(cluster.clone());
        let data = pseudo_random(64 * 1024, 3);
        let first = pipeline.backup_stream(0, "gen-1", data.clone()).unwrap();
        let second = pipeline.backup_stream(0, "gen-2", data.clone()).unwrap();
        assert_eq!(first.transferred_bytes, data.len() as u64);
        assert_eq!(second.transferred_bytes, 0);
        assert_eq!(second.duplicate_chunks, second.chunks);
        cluster.flush();
        assert_eq!(cluster.restore_file(second.file_id).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_streams_flow_through() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, test_config()));
        let pipeline = IngestPipeline::new(cluster.clone());
        let reports = pipeline
            .backup_streams(vec![
                StreamPayload::new(0, "empty", Vec::new()),
                StreamPayload::new(1, "one-chunk", vec![9u8; 100]),
            ])
            .unwrap();
        assert_eq!(reports[0].logical_bytes, 0);
        assert_eq!(reports[0].chunks, 0);
        assert_eq!(reports[1].chunks, 1);
        cluster.flush();
        assert_eq!(cluster.restore_file(reports[0].file_id).unwrap(), b"");
        assert_eq!(
            cluster.restore_file(reports[1].file_id).unwrap(),
            vec![9u8; 100]
        );
    }
}
