//! Figure 6: cluster deduplication ratio vs. handprint size.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::Handprint;
use sigma_hashkit::{Digest, Fingerprint, Sha1};
use sigma_simulation::experiments::fig6;
use sigma_workloads::Scale;

fn report() {
    sigma_bench::banner(
        "Figure 6",
        "cluster deduplication ratio (normalized to single-node exact dedup) vs. handprint size",
    );
    let rows = fig6::run(&fig6::Fig6Params {
        scale: Scale::Small,
        cluster_sizes: vec![4, 16, 64, 128],
        handprint_sizes: vec![1, 2, 4, 8, 16, 32, 64],
    });
    sigma_bench::print_table(
        "Linux-like workload, 1 MB super-chunks",
        &fig6::render(&rows),
    );
}

fn bench_candidate_selection(c: &mut Criterion) {
    report();
    let fingerprints: Vec<Fingerprint> = (0..256u64)
        .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
        .collect();
    for k in [1usize, 8, 64] {
        let handprint = Handprint::from_fingerprints(fingerprints.iter().copied(), k);
        c.bench_function(&format!("fig6/candidate_nodes_128_k{}", k), |b| {
            b.iter(|| handprint.candidate_nodes(128))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_candidate_selection
}
criterion_main!(benches);
