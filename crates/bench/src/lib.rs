//! Shared helpers for the Σ-Dedupe benchmark harness.
//!
//! Each bench target in `benches/` reproduces one table or figure of the paper: it
//! first runs the corresponding experiment from `sigma_simulation::experiments` at a
//! reporting scale and prints the resulting rows (the "figure"), then registers a
//! small Criterion micro-benchmark of the core operation that the figure exercises,
//! so `cargo bench` also yields stable timing numbers for regression tracking.
//!
//! The crate also ships the `sigma-bench` binary: a one-shot runner ([`runner`])
//! that measures the headline workloads and persists them as a schema-versioned
//! trajectory file ([`trajectory`]) that CI compares against on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod runner;
pub mod trajectory;

/// Prints a banner identifying which table/figure of the paper a bench reproduces.
pub fn banner(experiment: &str, description: &str) {
    println!();
    println!("================================================================================");
    println!("{experiment} — {description}");
    println!("  (reproduction of \"A Scalable Inline Cluster Deduplication Framework for");
    println!("   Big Data Protection\", Fu et al., MIDDLEWARE 2012)");
    println!("================================================================================");
}

/// Prints a rendered experiment table under a short caption.
pub fn print_table(caption: &str, table: &str) {
    println!();
    println!("--- {caption} ---");
    println!("{table}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("Figure 0", "smoke test");
        super::print_table("caption", "a  b\n1  2\n");
    }
}
