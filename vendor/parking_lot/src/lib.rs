//! Offline shim for the parts of [`parking_lot`] this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the real
//! `parking_lot` cannot be fetched. This shim wraps `std::sync` primitives behind
//! parking_lot's panic-free API: `lock()` / `read()` / `write()` return guards
//! directly instead of `Result`s, recovering from poisoning (a poisoned lock only
//! means another thread panicked while holding it; the data is still coherent for
//! the workspace's usage). Swapping in the real crate later is a one-line change
//! in `[workspace.dependencies]` and requires no source edits.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
