//! Config-driven middleware stacking: describe the stack as data, build it
//! with [`ServiceConfig::build`].
//!
//! The format is a strict subset of TOML (sections, `key = value` with
//! quoted strings, integers, floats and booleans, `#` comments) parsed by
//! hand because the build environment vendors no TOML crate.  Unknown
//! sections and keys are hard errors — a typo must not silently disable an
//! auth layer.
//!
//! ```toml
//! [auth.tokens]
//! acme = "s3cret"
//!
//! [quota.logical_bytes]
//! acme = 1073741824
//!
//! [rate_limit]
//! capacity = 100
//! refill_per_sec = 50.0
//!
//! [logging]
//! enabled = true
//! ```

use crate::builder::{ServiceBuilder, ServiceStack};
use crate::middleware::{RateLimit, TenantQuota, TokenAuth};
use sigma_core::{DedupCluster, SigmaError};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Token-bucket parameters of the rate-limit layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Burst capacity (tokens per tenant bucket).
    pub capacity: u64,
    /// Refill rate in tokens per second (`0.0` = hard cap).
    pub refill_per_sec: f64,
}

/// A declarative description of the middleware stack.
///
/// Layers whose section is absent are omitted from the stack; present layers
/// are assembled in the canonical order auth → quota → rate-limit → logging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceConfig {
    /// Per-tenant bearer secrets; non-empty ⇒ auth layer.
    pub auth_tokens: BTreeMap<String, String>,
    /// Per-tenant logical-bytes budgets; non-empty ⇒ quota layer.
    pub quotas: BTreeMap<String, u64>,
    /// Rate-limit parameters; `Some` ⇒ rate-limit layer.
    pub rate_limit: Option<RateLimitConfig>,
    /// Whether to stack the request-logging/metrics layer.
    pub logging: bool,
}

impl ServiceConfig {
    /// Parses the TOML-subset text.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] naming the offending line for
    /// syntax errors, unknown sections/keys, and ill-typed values.
    pub fn parse(text: &str) -> Result<ServiceConfig, SigmaError> {
        let mut config = ServiceConfig::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "auth.tokens" | "quota.logical_bytes" | "rate_limit" | "logging" => {}
                    other => {
                        return Err(invalid(lineno, &format!("unknown section [{}]", other)));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| invalid(lineno, "expected `key = value`"))?;
            let key = unquote(key.trim());
            let value = value.trim();
            match section.as_str() {
                "auth.tokens" => {
                    let token = parse_string(value)
                        .ok_or_else(|| invalid(lineno, "auth token must be a quoted string"))?;
                    config.auth_tokens.insert(key, token);
                }
                "quota.logical_bytes" => {
                    let bytes: u64 = value
                        .parse()
                        .map_err(|_| invalid(lineno, "quota must be an integer byte count"))?;
                    config.quotas.insert(key, bytes);
                }
                "rate_limit" => {
                    let limit = config.rate_limit.get_or_insert(RateLimitConfig {
                        capacity: 0,
                        refill_per_sec: 0.0,
                    });
                    match key.as_str() {
                        "capacity" => {
                            limit.capacity = value
                                .parse()
                                .map_err(|_| invalid(lineno, "capacity must be an integer"))?;
                        }
                        "refill_per_sec" => {
                            let rate: f64 = value
                                .parse()
                                .map_err(|_| invalid(lineno, "refill_per_sec must be a number"))?;
                            if !rate.is_finite() || rate < 0.0 {
                                return Err(invalid(
                                    lineno,
                                    "refill_per_sec must be finite and non-negative",
                                ));
                            }
                            limit.refill_per_sec = rate;
                        }
                        other => {
                            return Err(invalid(
                                lineno,
                                &format!("unknown rate_limit key `{}`", other),
                            ));
                        }
                    }
                }
                "logging" => match key.as_str() {
                    "enabled" => {
                        config.logging = match value {
                            "true" => true,
                            "false" => false,
                            _ => return Err(invalid(lineno, "enabled must be true or false")),
                        };
                    }
                    other => {
                        return Err(invalid(lineno, &format!("unknown logging key `{}`", other)));
                    }
                },
                "" => return Err(invalid(lineno, "key outside any section")),
                _ => unreachable!("sections are validated on entry"),
            }
        }
        Ok(config)
    }

    /// Converts the description into a [`ServiceBuilder`] with the layers in
    /// canonical order.
    pub fn into_builder(self) -> ServiceBuilder {
        let mut builder = ServiceBuilder::new();
        if !self.auth_tokens.is_empty() {
            let mut auth = TokenAuth::new();
            for (tenant, token) in self.auth_tokens {
                auth = auth.tenant(tenant, token);
            }
            builder = builder.auth(auth);
        }
        if !self.quotas.is_empty() {
            let mut quota = TenantQuota::new();
            for (tenant, bytes) in self.quotas {
                quota = quota.budget(tenant, bytes);
            }
            builder = builder.quota(quota);
        }
        if let Some(limit) = self.rate_limit {
            builder = builder.rate_limit(RateLimit::new(limit.capacity, limit.refill_per_sec));
        }
        if self.logging {
            builder = builder.logging();
        }
        builder
    }

    /// Parses and assembles in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceConfig::parse`] errors.
    pub fn build(text: &str, cluster: Arc<DedupCluster>) -> Result<ServiceStack, SigmaError> {
        Ok(ServiceConfig::parse(text)?.into_builder().build(cluster))
    }
}

fn invalid(lineno: usize, msg: &str) -> SigmaError {
    SigmaError::InvalidConfig(format!("service config line {}: {}", lineno + 1, msg))
}

/// Drops a trailing `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Accepts both bare and quoted keys.
fn unquote(key: &str) -> String {
    parse_string(key).unwrap_or_else(|| key.to_string())
}

/// `Some(contents)` for a `"quoted string"`, `None` otherwise.
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    // The subset deliberately has no escape sequences; a stray quote inside
    // would have unbalanced the strip above.
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, RequestEnvelope};
    use sigma_core::{ServiceCode, SigmaConfig};

    const EXAMPLE: &str = r#"
# The reference stack.
[auth.tokens]
acme = "s3cret"      # inline comment
"dash-tenant" = "t2"

[quota.logical_bytes]
acme = 1048576

[rate_limit]
capacity = 10
refill_per_sec = 5.0

[logging]
enabled = true
"#;

    #[test]
    fn parses_the_reference_config() {
        let c = ServiceConfig::parse(EXAMPLE).unwrap();
        assert_eq!(c.auth_tokens["acme"], "s3cret");
        assert_eq!(c.auth_tokens["dash-tenant"], "t2");
        assert_eq!(c.quotas["acme"], 1048576);
        assert_eq!(
            c.rate_limit,
            Some(RateLimitConfig {
                capacity: 10,
                refill_per_sec: 5.0
            })
        );
        assert!(c.logging);
    }

    #[test]
    fn builds_the_canonical_stack_order() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ));
        let stack = ServiceConfig::build(EXAMPLE, cluster).unwrap();
        assert_eq!(
            stack.middleware_names(),
            vec!["auth", "quota", "rate-limit", "logging"]
        );
        // And it actually enforces: no token ⇒ unauthorized.
        let resp = stack.call(RequestEnvelope::new(1, "acme", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::Unauthorized);
    }

    #[test]
    fn absent_sections_omit_layers() {
        let stack_desc = ServiceConfig::parse("[logging]\nenabled = true\n").unwrap();
        assert!(stack_desc.auth_tokens.is_empty());
        assert!(stack_desc.rate_limit.is_none());
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ));
        let stack = stack_desc.into_builder().build(cluster);
        assert_eq!(stack.middleware_names(), vec!["logging"]);
        let empty = ServiceConfig::parse("").unwrap();
        assert_eq!(empty, ServiceConfig::default());
    }

    #[test]
    fn errors_name_the_line() {
        for (text, needle) in [
            ("[surprise]\n", "unknown section"),
            ("[auth.tokens]\nacme = 42\n", "quoted string"),
            ("[quota.logical_bytes]\nacme = \"many\"\n", "integer"),
            ("[rate_limit]\nburst = 5\n", "unknown rate_limit key"),
            ("[rate_limit]\nrefill_per_sec = -1.0\n", "non-negative"),
            ("[rate_limit]\nrefill_per_sec = inf\n", "non-negative"),
            ("[logging]\nenabled = yes\n", "true or false"),
            ("stray = 1\n", "outside any section"),
            ("[logging]\nnonsense\n", "key = value"),
        ] {
            let err = ServiceConfig::parse(text).unwrap_err();
            match &err {
                SigmaError::InvalidConfig(msg) => {
                    assert!(msg.contains("line"), "{}", msg);
                    assert!(msg.contains(needle), "`{}` missing from `{}`", needle, msg);
                }
                other => panic!("expected InvalidConfig, got {:?}", other),
            }
            assert_eq!(err.code(), ServiceCode::InvalidRequest);
        }
    }

    #[test]
    fn comments_inside_strings_survive() {
        let c = ServiceConfig::parse("[auth.tokens]\nacme = \"se#ret\"\n").unwrap();
        assert_eq!(c.auth_tokens["acme"], "se#ret");
    }
}
