//! Restore throughput: the planned restore pipeline against the serial
//! per-chunk reference path.
//!
//! The trajectory runner records the *cold-cache* single-worker numbers (fresh
//! cluster per rep); this criterion target explores the parameter space
//! instead: worker fan-out 1/2/4 on the in-memory and real-file backends, with
//! criterion's repeated iterations measuring the *warm* steady state where the
//! container read cache serves repeat visits from RAM.
//!
//! The banner prints a one-shot comparison table with the pipeline's own
//! report counters — chunks, coalesced runs, cache hit rate and read
//! amplification — so a perf change shows up next to the mechanism that
//! caused it.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_core::{BackupClient, DedupCluster, RestoreReport, SigmaConfig};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const STREAMS: u64 = 4;
const VERSION_BYTES: usize = 1 << 20;
const WORKERS: [usize; 3] = [1, 2, 4];

fn bench_config(file_root: Option<&Path>) -> SigmaConfig {
    let mut builder = SigmaConfig::builder()
        .parallelism(1)
        .chunker(sigma_chunking::ChunkerParams::cdc(
            1 << 10,
            4 << 10,
            16 << 10,
        ))
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024);
    if let Some(root) = file_root {
        builder = builder.file_storage(root);
    }
    builder.build().expect("valid bench config")
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-restore-bench-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after the epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

/// A 2-node cluster pre-loaded with two overlapping versions per stream, so
/// restored files share containers and the read cache has repeats to serve.
fn populated_cluster(file_root: Option<&Path>) -> (Arc<DedupCluster>, Vec<(u64, usize)>) {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        2,
        bench_config(file_root),
    ));
    let mut files = Vec::new();
    for stream in 0..STREAMS {
        let client = BackupClient::new(cluster.clone(), stream);
        for (name, data) in versioned_payloads(VersionedPayloadParams {
            seed: 0x4E57 + stream,
            versions: 2,
            version_size: VERSION_BYTES,
            mutation_rate: 0.05,
        }) {
            let report = client
                .backup_bytes(&format!("u{stream}/{name}"), &data)
                .expect("payload backup cannot fail");
            files.push((report.file_id, data.len()));
        }
    }
    cluster.flush();
    (cluster, files)
}

/// Restores every file once through the pipeline, returning elapsed MB/s and
/// the summed pipeline report.
fn pipelined_pass(
    cluster: &DedupCluster,
    files: &[(u64, usize)],
    workers: usize,
) -> (f64, RestoreReport) {
    let total: u64 = files.iter().map(|&(_, len)| len as u64).sum();
    let mut summed = RestoreReport::default();
    let sw = sigma_metrics::Stopwatch::start();
    for &(file_id, _) in files {
        let (bytes, report) = cluster
            .restore_file_pipelined(file_id, workers)
            .expect("restore cannot fail in bench");
        std::hint::black_box(bytes.len());
        summed.logical_bytes += report.logical_bytes;
        summed.chunks_read += report.chunks_read;
        summed.containers_read += report.containers_read;
        summed.cache_hits += report.cache_hits;
        summed.cache_misses += report.cache_misses;
        summed.backend_bytes_read += report.backend_bytes_read;
        summed.coalesced_runs += report.coalesced_runs;
    }
    (sw.stop(total).mb_per_sec(), summed)
}

fn reference_pass(cluster: &DedupCluster, files: &[(u64, usize)]) -> f64 {
    let total: u64 = files.iter().map(|&(_, len)| len as u64).sum();
    let sw = sigma_metrics::Stopwatch::start();
    for &(file_id, _) in files {
        let bytes = cluster
            .restore_file_reference(file_id)
            .expect("restore cannot fail in bench");
        std::hint::black_box(bytes.len());
    }
    sw.stop(total).mb_per_sec()
}

fn report() {
    sigma_bench::banner(
        "restore throughput",
        "planned pipeline (batched reads + cache + fan-out) vs serial per-chunk reference",
    );
    let mut table = sigma_metrics::report::TextTable::new(vec![
        "backend",
        "path",
        "MB/s",
        "chunks",
        "runs",
        "cache hit rate",
        "read amp",
    ]);
    for (label, file_backed) in [("memory", false), ("file", true)] {
        let root = file_backed.then(scratch_dir);
        let (cluster, files) = populated_cluster(root.as_deref());
        let ref_mbps = reference_pass(&cluster, &files);
        table.add_row(vec![
            label.to_string(),
            "reference".to_string(),
            format!("{ref_mbps:.1}"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        for workers in WORKERS {
            let (mbps, r) = pipelined_pass(&cluster, &files, workers);
            let hits = r.cache_hits + r.cache_misses;
            let hit_rate = if hits > 0 {
                format!("{:.2}", r.cache_hits as f64 / hits as f64)
            } else {
                "-".to_string()
            };
            table.add_row(vec![
                label.to_string(),
                format!("pipelined x{workers}"),
                format!("{mbps:.1}"),
                r.chunks_read.to_string(),
                r.coalesced_runs.to_string(),
                hit_rate,
                format!("{:.2}", r.read_amplification()),
            ]);
        }
        if let Some(root) = root {
            drop(cluster);
            let _ = std::fs::remove_dir_all(root);
        }
    }
    sigma_bench::print_table(
        "restore of 8 files (2 nodes, 256 KiB containers; pipelined rows run warm)",
        &table.render(),
    );
}

fn bench_restore(c: &mut Criterion) {
    report();
    for (label, file_backed) in [("mem", false), ("file", true)] {
        let root = file_backed.then(scratch_dir);
        let (cluster, files) = populated_cluster(root.as_deref());
        let total: u64 = files.iter().map(|&(_, len)| len as u64).sum();
        let mut group = c.benchmark_group("restore");
        group.throughput(Throughput::Bytes(total));
        group.bench_function(&format!("{label}/reference"), |b| {
            b.iter(|| {
                for &(file_id, _) in &files {
                    std::hint::black_box(
                        cluster
                            .restore_file_reference(file_id)
                            .expect("restore cannot fail in bench"),
                    );
                }
            })
        });
        for workers in WORKERS {
            group.bench_function(&format!("{label}/pipelined_w{workers}"), |b| {
                b.iter(|| {
                    for &(file_id, _) in &files {
                        std::hint::black_box(
                            cluster
                                .restore_file_pipelined(file_id, workers)
                                .expect("restore cannot fail in bench"),
                        );
                    }
                })
            });
        }
        group.finish();
        if let Some(root) = root {
            drop(cluster);
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_restore
}
criterion_main!(benches);
