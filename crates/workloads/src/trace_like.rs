//! FIU-style block traces: chunk streams without file boundaries.
//!
//! The paper's Mail (526 GB, DR ≈ 10.5) and Web (43 GB, DR ≈ 1.9) workloads are I/O
//! traces from departmental servers.  Two properties matter here: they carry **no
//! file-level information** (so the file-similarity baseline cannot run on them),
//! and they differ sharply in how much of the stream re-references a hot working
//! set.  This generator produces a chunk stream whose duplicate references follow a
//! Zipf-skewed working set, tuned by a single `rereference_rate` knob.

use crate::{ChunkSpec, DatasetKind, DatasetTrace, DeterministicRng, FileTrace, GenerationTrace};
use serde::{Deserialize, Serialize};

/// Parameters of the trace-style generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceLikeParams {
    /// Deterministic seed (also namespaces the fingerprints).
    pub seed: u64,
    /// Display name (e.g. `"Mail"`).
    pub kind: DatasetKind,
    /// Total number of chunk references in the stream.
    pub total_chunks: u64,
    /// Chunk size in bytes.
    pub chunk_size: u32,
    /// Probability that a reference re-uses an already-written chunk instead of
    /// introducing a new one.  Directly controls the deduplication ratio:
    /// `DR ≈ 1 / (1 - rereference_rate)`.
    pub rereference_rate: f64,
    /// Zipf exponent of the re-reference distribution over the working set (larger =
    /// hotter head).
    pub zipf_exponent: f64,
    /// How many chunk references form one "segment" (stand-in for a backup stream
    /// section; segments become pseudo-files so the simulation can stream them, but
    /// `has_file_boundaries` is false).
    pub segment_chunks: u64,
    /// Locality run length: when a re-reference happens, this many consecutive
    /// already-written chunks are replayed in their original order (backup streams
    /// re-see whole regions, not isolated blocks).
    pub rereference_run: u64,
}

impl TraceLikeParams {
    /// Parameters modelling the Mail trace (high redundancy).
    pub fn mail(total_chunks: u64) -> Self {
        TraceLikeParams {
            seed: 0x7a11,
            kind: DatasetKind::Mail,
            total_chunks,
            chunk_size: 4096,
            rereference_rate: 0.905,
            zipf_exponent: 0.9,
            segment_chunks: 4096,
            rereference_run: 64,
        }
    }

    /// Parameters modelling the Web trace (low redundancy).
    pub fn web(total_chunks: u64) -> Self {
        TraceLikeParams {
            seed: 0x3eb,
            kind: DatasetKind::Web,
            total_chunks,
            chunk_size: 4096,
            rereference_rate: 0.474,
            zipf_exponent: 0.8,
            segment_chunks: 4096,
            rereference_run: 32,
        }
    }
}

/// Generates the trace described by `params`.
///
/// # Example
///
/// ```
/// use sigma_workloads::trace_like::{generate, TraceLikeParams};
///
/// let trace = generate(TraceLikeParams::web(20_000));
/// assert!(!trace.has_file_boundaries);
/// let dr = trace.exact_dedup_ratio();
/// assert!(dr > 1.4 && dr < 2.6, "dr = {}", dr);
/// ```
pub fn generate(params: TraceLikeParams) -> DatasetTrace {
    let mut rng = DeterministicRng::new(params.seed);
    let mut written: Vec<u64> = Vec::new();
    let mut next_chunk_id = 0u64;
    let mut stream: Vec<ChunkSpec> = Vec::with_capacity(params.total_chunks as usize);

    // The stream is produced in *runs* of `rereference_run` chunks: a run is either a
    // replay of a previously written region (probability `rereference_rate`) or a run
    // of brand-new chunks.  Because both kinds of run have the same length, the
    // fraction of duplicate chunk references converges to `rereference_rate`, giving
    // an exact deduplication ratio of ≈ 1 / (1 - rereference_rate).
    let run_len = params.rereference_run.max(1);
    let mut i = 0u64;
    while i < params.total_chunks {
        let run = run_len.min(params.total_chunks - i);
        let rereference = !written.is_empty() && rng.chance(params.rereference_rate);
        if rereference {
            // Replay a run of consecutive, previously written chunks.  The run's
            // starting region is Zipf-selected with a recency bias (rank 0 = the most
            // recently written full run), modelling a hot working set.
            let run = run.min(written.len() as u64);
            let positions = written.len() as u64 - run + 1;
            let rank = rng.zipf(positions, params.zipf_exponent);
            let start = positions - 1 - rank;
            for offset in 0..run {
                let id = written[(start + offset) as usize];
                stream.push(ChunkSpec::from_identity(params.seed, id, params.chunk_size));
            }
            i += run;
        } else {
            for _ in 0..run {
                let id = next_chunk_id;
                next_chunk_id += 1;
                written.push(id);
                stream.push(ChunkSpec::from_identity(params.seed, id, params.chunk_size));
            }
            i += run;
        }
    }

    // Cut the stream into segments; these are *not* semantic files (the trace has no
    // file boundaries) but give the simulation units to stream through clients.
    let mut files = Vec::new();
    for (segment, chunk_block) in stream.chunks(params.segment_chunks as usize).enumerate() {
        files.push(FileTrace {
            file_id: segment as u64,
            name: format!("segment-{:05}", segment),
            chunks: chunk_block.to_vec(),
        });
    }

    DatasetTrace {
        name: params.kind.to_string(),
        kind: params.kind,
        has_file_boundaries: false,
        generations: vec![GenerationTrace {
            generation: 0,
            files,
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mail_like_redundancy() {
        let t = generate(TraceLikeParams::mail(40_000));
        let dr = t.exact_dedup_ratio();
        assert!(dr > 6.0 && dr < 16.0, "dr = {}", dr);
        assert!(!t.has_file_boundaries);
        assert_eq!(t.kind, DatasetKind::Mail);
    }

    #[test]
    fn web_like_redundancy() {
        let t = generate(TraceLikeParams::web(40_000));
        let dr = t.exact_dedup_ratio();
        assert!(dr > 1.4 && dr < 2.8, "dr = {}", dr);
    }

    #[test]
    fn chunk_count_matches_request() {
        let t = generate(TraceLikeParams::web(10_000));
        assert_eq!(t.chunk_count(), 10_000);
        assert_eq!(t.logical_bytes(), 10_000 * 4096);
    }

    #[test]
    fn segments_partition_the_stream() {
        let params = TraceLikeParams {
            segment_chunks: 1000,
            ..TraceLikeParams::mail(5500)
        };
        let t = generate(params);
        let sizes: Vec<usize> = t.generations[0]
            .files
            .iter()
            .map(|f| f.chunks.len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5500);
        assert_eq!(sizes.len(), 6);
        assert!(sizes[..5].iter().all(|&s| s == 1000));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(TraceLikeParams::mail(5000)),
            generate(TraceLikeParams::mail(5000))
        );
    }

    #[test]
    fn rereferences_preserve_locality_runs() {
        // Re-reference runs replay previously written regions in order, so most
        // adjacent stream positions reference chunks whose *first occurrences* were
        // also adjacent — that is the locality container prefetching relies on.
        let t = generate(TraceLikeParams::mail(20_000));
        let chunks: Vec<_> = t.generations[0]
            .files
            .iter()
            .flat_map(|f| f.chunks.iter())
            .collect();
        let mut first_seen = std::collections::HashMap::new();
        for (pos, c) in chunks.iter().enumerate() {
            first_seen.entry(c.fingerprint).or_insert(pos);
        }
        let sequential = chunks
            .windows(2)
            .filter(|w| {
                let a = first_seen[&w[0].fingerprint];
                let b = first_seen[&w[1].fingerprint];
                b == a + 1
            })
            .count();
        assert!(
            sequential * 10 > chunks.len() * 6,
            "only {} of {} adjacent pairs preserve original order",
            sequential,
            chunks.len() - 1
        );
    }
}
