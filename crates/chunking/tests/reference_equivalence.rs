//! Boundary bit-identity between the optimized chunkers and their scalar
//! references.
//!
//! The hot-path rewrite (skip-ahead below `min_size`, mask tests instead of
//! modulo, unrolled scanners, no per-call hasher-template clone) must not move
//! a single chunk boundary: dedup ratios, recipe stability and the
//! parallel/serial byte-identity guarantees all depend on boundary decisions
//! being a pure function of the content.  These proptests pit every
//! [`ChunkerParams`] preset against the preserved scalar implementation in
//! [`sigma_chunking::reference`].

use proptest::prelude::*;
use sigma_chunking::{reference, ChunkerParams, TttdParams};

/// Every chunker configuration the workspace exercises, including presets whose
/// `min_size` is below the rolling-hash window (partial-window boundary tests)
/// and degenerate `min == avg == max` sizings.
fn all_presets() -> Vec<ChunkerParams> {
    vec![
        ChunkerParams::paper_default(),
        ChunkerParams::fixed(512),
        ChunkerParams::cdc(1024, 4096, 16 * 1024),
        ChunkerParams::cdc(256, 1024, 4096),
        ChunkerParams::cdc(5, 10, 20),
        ChunkerParams::cdc_with_average(8192),
        ChunkerParams::gear_cdc(1024, 4096, 16 * 1024),
        ChunkerParams::gear_cdc(16, 64, 256),
        ChunkerParams::gear_with_average(2048),
        ChunkerParams::tttd_default(),
        ChunkerParams::Tttd(TttdParams {
            min_size: 256,
            minor_mean: 512,
            major_mean: 1024,
            max_size: 8192,
        }),
    ]
}

fn xorshift_data(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_unrolled_boundaries_match_scalar_reference(
        seed in any::<u64>(),
        len in 0usize..120_000,
    ) {
        let data = xorshift_data(len, seed);
        for params in all_presets() {
            let optimized = params.build();
            let scalar = reference::build(&params);
            prop_assert_eq!(
                optimized.chunk_boundaries(&data),
                scalar.chunk_boundaries(&data),
                "preset {:?} diverged on len {} seed {}",
                params,
                len,
                seed
            );
        }
    }

    #[test]
    fn prop_first_boundary_matches_scalar_reference(
        seed in any::<u64>(),
        len in 0usize..60_000,
    ) {
        let data = xorshift_data(len, seed);
        for params in all_presets() {
            let optimized = params.build();
            let scalar = reference::build(&params);
            prop_assert_eq!(
                optimized.first_boundary(&data),
                scalar.chunk_boundaries(&data).first().copied(),
                "preset {:?} first boundary diverged",
                params
            );
        }
    }
}

#[test]
fn zero_entropy_and_structured_data_match() {
    // Pathological inputs: constant bytes (hash never fires), short repeats
    // (hash fires periodically), and data shorter than min/window sizes.
    let mut cases: Vec<Vec<u8>> = vec![
        vec![0u8; 100_000],
        vec![0xFF; 50_000],
        (0..60_000usize).map(|i| (i % 7) as u8).collect(),
        Vec::new(),
        vec![1, 2, 3],
        vec![42u8; 47],
    ];
    let repeating: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(80_000).collect();
    cases.push(repeating);

    for data in &cases {
        for params in all_presets() {
            assert_eq!(
                params.build().chunk_boundaries(data),
                reference::build(&params).chunk_boundaries(data),
                "preset {:?} diverged on structured input of len {}",
                params,
                data.len()
            );
        }
    }
}
