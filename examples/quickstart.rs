//! Quickstart: back up two generations of a dataset to a small Σ-Dedupe cluster,
//! watch the second generation deduplicate, and restore a file.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sigma_dedupe::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-node cluster with the paper's default parameters: 4 KB static chunking,
    // SHA-1 fingerprints, 1 MB super-chunks, handprints of 8.
    let config = SigmaConfig::default();
    let cluster = Arc::new(DedupCluster::with_similarity_router(4, config));
    let client = BackupClient::new(cluster.clone(), 0);

    // Two backup generations of the same 16 MB "volume": the second differs in ~5%
    // of its 4 KB regions, as a nightly backup would.
    let generations = versioned_payloads(VersionedPayloadParams {
        seed: 7,
        versions: 2,
        version_size: 16 << 20,
        mutation_rate: 0.05,
    });

    println!(
        "backing up {} generations of {}",
        generations.len(),
        human_bytes(16 << 20)
    );
    let mut file_ids = Vec::new();
    for (name, data) in &generations {
        let report = client.backup_bytes(name, data)?;
        println!(
            "  {:<10}  logical {:>10}  transferred {:>10}  bandwidth saved {:>5.1}%",
            name,
            human_bytes(report.logical_bytes),
            human_bytes(report.transferred_bytes),
            report.bandwidth_saving() * 100.0
        );
        file_ids.push(report.file_id);
    }
    cluster.flush();

    let stats = cluster.stats();
    println!("\ncluster after backup:");
    println!("  nodes                : {}", stats.node_count);
    println!(
        "  logical bytes        : {}",
        human_bytes(stats.logical_bytes)
    );
    println!(
        "  physical bytes       : {}",
        human_bytes(stats.physical_bytes)
    );
    println!("  deduplication ratio  : {:.2}", stats.dedup_ratio);
    println!("  storage usage skew   : {:.3}", stats.usage_skew);
    println!(
        "  fingerprint lookups  : {} pre-routing + {} post-routing",
        stats.messages.prerouting_lookups, stats.messages.postrouting_lookups
    );

    // Restore the second generation and verify it byte-for-byte.
    let restored = cluster.restore_file(file_ids[1])?;
    assert_eq!(restored, generations[1].1, "restore must be bit-exact");
    println!(
        "\nrestored generation 2: {} (verified)",
        human_bytes(restored.len() as u64)
    );
    Ok(())
}
