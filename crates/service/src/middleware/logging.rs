//! Request logging and per-operation metrics.

use crate::backend::{
    BACKEND_BYTES_READ_KEY, CACHE_HITS_KEY, CACHE_MISSES_KEY, CHUNKS_READ_KEY,
    CONTAINERS_OPENED_KEY,
};
use crate::middleware::{Middleware, Next, ServiceResult};
use crate::{RequestEnvelope, ResponseEnvelope};
use parking_lot::Mutex;
use sigma_core::ServiceCode;
use sigma_metrics::{MetricsRegistry, OpSnapshot, RestoreCounters, RestoreSnapshot, Stopwatch};
use std::collections::BTreeMap;

/// One observed request, success or failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// The request's correlator.
    pub request_id: u64,
    /// Tenant that issued it.
    pub tenant: String,
    /// Stable operation name ([`Operation::name`](crate::Operation::name)).
    pub operation: &'static str,
    /// How the request ended — rejections from *lower* layers and backend
    /// errors included.
    pub code: ServiceCode,
    /// Wall-clock seconds spent below this middleware.
    pub latency_secs: f64,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Response payload bytes (0 for errors).
    pub response_bytes: u64,
}

/// Records exactly one [`LogEntry`] per request — including error paths — and
/// feeds per-operation latency and byte counters
/// ([`sigma_metrics::MetricsRegistry`]).
///
/// Placement matters and is a choice, not a constraint: as the innermost
/// layer (the default stack) it logs only requests that passed admission
/// control, with `code` reflecting backend outcomes; as the outermost layer
/// it observes every arrival, with `code` also covering auth/quota/rate-limit
/// rejections.  Either way an `Err` travelling through is logged and then
/// propagated untouched.
#[derive(Debug, Default)]
pub struct RequestLog {
    entries: Mutex<Vec<LogEntry>>,
    metrics: MetricsRegistry,
    restores: RestoreCounters,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RequestLog::default()
    }

    /// A copy of every entry observed so far, in completion order.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.entries.lock().clone()
    }

    /// Number of requests observed.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Per-operation counter snapshots, keyed by operation name.
    pub fn metrics(&self) -> BTreeMap<String, OpSnapshot> {
        self.metrics.snapshot()
    }

    /// Aggregate restore-pipeline counters, parsed off successful restore
    /// responses flowing through this middleware (zero until one passes).
    pub fn restore_metrics(&self) -> RestoreSnapshot {
        self.restores.snapshot()
    }

    /// Folds a successful restore response's pipeline metadata into the
    /// aggregate.  Metadata is the only channel a middleware sees, so a
    /// backend that doesn't emit restore counters simply contributes the
    /// operation and byte counts.
    fn record_restore(&self, resp: &ResponseEnvelope) {
        let count = |key| resp.metadata_u64(key).unwrap_or(0);
        self.restores.record(&RestoreSnapshot {
            restores: 1,
            chunks_read: count(CHUNKS_READ_KEY),
            containers_opened: count(CONTAINERS_OPENED_KEY),
            cache_hits: count(CACHE_HITS_KEY),
            cache_misses: count(CACHE_MISSES_KEY),
            backend_bytes_read: count(BACKEND_BYTES_READ_KEY),
            logical_bytes_restored: resp.payload.len() as u64,
        });
    }

    fn record(&self, entry: LogEntry) {
        self.metrics.op(entry.operation).record(
            std::time::Duration::from_secs_f64(entry.latency_secs.max(0.0)),
            entry.request_bytes,
            entry.response_bytes,
            !entry.code.is_ok(),
        );
        self.entries.lock().push(entry);
    }
}

impl Middleware for RequestLog {
    fn name(&self) -> &'static str {
        "logging"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        let request_id = req.request_id;
        let tenant = req.tenant.clone();
        let operation = req.operation.name();
        let request_bytes = req.payload.len() as u64;
        let sw = Stopwatch::start();
        let result = next.run(req);
        let latency = sw.elapsed().as_secs_f64();
        let (code, response_bytes) = match &result {
            Ok(resp) => (resp.code, resp.payload.len() as u64),
            Err(err) => (err.code(), 0),
        };
        if operation == "restore" {
            if let Ok(resp) = &result {
                if resp.code.is_ok() {
                    self.record_restore(resp);
                }
            }
        }
        self.record(LogEntry {
            request_id,
            tenant,
            operation,
            code,
            latency_secs: latency,
            request_bytes,
            response_bytes,
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::SigmaError;
    use std::sync::Arc;

    #[test]
    fn logs_success_with_latency_and_bytes() {
        let log = Arc::new(RequestLog::new());
        let p = PipelineExecutor::new(
            vec![log.clone()],
            Arc::new(|r: RequestEnvelope| {
                Ok(ResponseEnvelope::ok(r.request_id).with_payload(vec![0u8; 32]))
            }),
        );
        let req = RequestEnvelope::new(
            1,
            "acme",
            Operation::Backup {
                file_name: "f".into(),
                generation: 0,
            },
        )
        .with_payload(vec![0u8; 128]);
        assert!(p.execute(req).is_ok());
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.request_id, 1);
        assert_eq!(e.tenant, "acme");
        assert_eq!(e.operation, "backup");
        assert_eq!(e.code, ServiceCode::Ok);
        assert!(e.latency_secs >= 0.0);
        assert_eq!(e.request_bytes, 128);
        assert_eq!(e.response_bytes, 32);
        let m = log.metrics();
        assert_eq!(m["backup"].count, 1);
        assert_eq!(m["backup"].errors, 0);
        assert_eq!(m["backup"].request_bytes, 128);
    }

    #[test]
    fn logs_errors_and_propagates_them() {
        let log = Arc::new(RequestLog::new());
        let p = PipelineExecutor::new(
            vec![log.clone()],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult { Err(SigmaError::FileNotFound(5)) }),
        );
        let resp = p.execute(RequestEnvelope::new(
            9,
            "t",
            Operation::Restore { file_id: 5 },
        ));
        assert_eq!(resp.code, ServiceCode::NotFound, "error still propagated");
        let entries = log.entries();
        assert_eq!(entries.len(), 1, "exactly one entry for the failed request");
        assert_eq!(entries[0].code, ServiceCode::NotFound);
        assert_eq!(entries[0].response_bytes, 0);
        assert_eq!(log.metrics()["restore"].errors, 1);
    }

    #[test]
    fn surfaces_restore_counters_from_response_metadata() {
        let log = Arc::new(RequestLog::new());
        let p = PipelineExecutor::new(
            vec![log.clone()],
            Arc::new(|r: RequestEnvelope| match r.operation {
                Operation::Restore { .. } => Ok(ResponseEnvelope::ok(r.request_id)
                    .with_metadata(CHUNKS_READ_KEY, "6")
                    .with_metadata(CONTAINERS_OPENED_KEY, "2")
                    .with_metadata(CACHE_HITS_KEY, "1")
                    .with_metadata(CACHE_MISSES_KEY, "1")
                    .with_metadata(BACKEND_BYTES_READ_KEY, "512")
                    .with_payload(vec![0u8; 1024])),
                _ => Ok(ResponseEnvelope::ok(r.request_id)),
            }),
        );
        p.execute(RequestEnvelope::new(
            1,
            "t",
            Operation::Restore { file_id: 1 },
        ));
        p.execute(RequestEnvelope::new(2, "t", Operation::Stats));
        p.execute(RequestEnvelope::new(
            3,
            "t",
            Operation::Restore { file_id: 1 },
        ));
        let r = log.restore_metrics();
        assert_eq!(r.restores, 2, "stats ops don't count as restores");
        assert_eq!(r.chunks_read, 12);
        assert_eq!(r.containers_opened, 4);
        assert_eq!((r.cache_hits, r.cache_misses), (2, 2));
        assert_eq!(r.backend_bytes_read, 1024);
        assert_eq!(r.logical_bytes_restored, 2048);
        assert!((r.read_amplification() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_entry_per_request_across_a_mix() {
        let log = Arc::new(RequestLog::new());
        let p = PipelineExecutor::new(
            vec![log.clone()],
            Arc::new(|r: RequestEnvelope| match r.operation {
                Operation::Stats => Ok(ResponseEnvelope::ok(r.request_id)),
                _ => Err(SigmaError::FileNotFound(0)),
            }),
        );
        for i in 0..10u64 {
            let op = if i % 2 == 0 {
                Operation::Stats
            } else {
                Operation::Restore { file_id: i }
            };
            p.execute(RequestEnvelope::new(i, "t", op));
        }
        assert_eq!(log.len(), 10);
        let m = log.metrics();
        assert_eq!(m["stats"].count, 5);
        assert_eq!(m["restore"].count, 5);
        assert_eq!(m["restore"].errors, 5);
        assert!(!log.is_empty());
    }
}
