//! EMC's stateless super-chunk routing.

use sigma_core::{DataRouter, RoutingContext, RoutingDecision};

/// Stateless super-chunk routing: the super-chunk's representative (minimum) chunk
/// fingerprint selects the destination with a modulo mapping.
///
/// No node state is consulted and no pre-routing messages are sent, so overhead and
/// implementation complexity are minimal; the price is that similar super-chunks
/// written in different order or interleaved across streams can land on different
/// nodes, leaving cross-node redundancy undetected (the deduplication-ratio gap of
/// Figure 8), and that nothing counteracts capacity skew.
///
/// # Example
///
/// ```
/// use sigma_baselines::StatelessRouter;
/// use sigma_core::DataRouter;
///
/// assert_eq!(StatelessRouter::new().name(), "stateless");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StatelessRouter;

impl StatelessRouter {
    /// Creates the router.
    pub fn new() -> Self {
        StatelessRouter
    }
}

impl DataRouter for StatelessRouter {
    fn name(&self) -> String {
        "stateless".to_string()
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");
        let target = ctx
            .handprint
            .min_fingerprint()
            .or_else(|| ctx.super_chunk.fingerprints().next())
            .map(|fp| fp.bucket(node_count))
            .unwrap_or(0);
        RoutingDecision::stateless(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ChunkDescriptor, DedupNode, SigmaConfig, SuperChunk};
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    fn nodes(n: usize) -> Vec<Arc<DedupNode>> {
        let c = SigmaConfig::default();
        (0..n).map(|i| Arc::new(DedupNode::new(i, &c))).collect()
    }

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    #[test]
    fn identical_super_chunks_land_on_the_same_node() {
        let nodes = nodes(16);
        let router = StatelessRouter::new();
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let ctx = RoutingContext {
            super_chunk: &sc,
            handprint: &hp,
            file_id: None,
            nodes: &nodes,
        };
        let a = router.route(&ctx);
        let b = router.route(&ctx);
        assert_eq!(a.target, b.target);
        assert_eq!(a.prerouting_lookup_messages, 0);
        assert_eq!(a.nodes_contacted, 0);
    }

    #[test]
    fn routing_spreads_distinct_super_chunks() {
        let nodes = nodes(8);
        let router = StatelessRouter::new();
        let mut seen = std::collections::HashSet::new();
        for g in 0..64u64 {
            let sc = super_chunk(g * 1000..g * 1000 + 64);
            let hp = sc.handprint(8);
            let d = router.route(&RoutingContext {
                super_chunk: &sc,
                handprint: &hp,
                file_id: None,
                nodes: &nodes,
            });
            assert!(d.target < 8);
            seen.insert(d.target);
        }
        assert!(
            seen.len() >= 6,
            "expected most nodes to be used, got {}",
            seen.len()
        );
    }

    #[test]
    fn empty_super_chunk_routes_to_node_zero() {
        let nodes = nodes(4);
        let router = StatelessRouter::new();
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let hp = sc.handprint(8);
        let d = router.route(&RoutingContext {
            super_chunk: &sc,
            handprint: &hp,
            file_id: None,
            nodes: &nodes,
        });
        assert_eq!(d.target, 0);
    }
}
