//! Error type for the storage layer.

use crate::ContainerId;

/// Errors produced by container, index and cache operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A container with this ID does not exist.
    ContainerNotFound(ContainerId),
    /// The requested chunk is not present in the referenced container.
    ChunkNotInContainer {
        /// The container that was searched.
        container: ContainerId,
        /// Hex form of the missing fingerprint.
        fingerprint: String,
    },
    /// An open container was expected for this stream but none exists.
    NoOpenContainer(u64),
    /// A chunk exceeded the configured container capacity.
    ChunkTooLarge {
        /// Size of the offending chunk in bytes.
        chunk_size: usize,
        /// Configured container capacity in bytes.
        container_capacity: usize,
    },
    /// The container was already sealed and cannot accept more chunks.
    ContainerSealed(ContainerId),
    /// The node's write-ahead journal hit an (injected or real) crash point: the
    /// append did not become durable and the node must be considered dead until
    /// it is recovered from the journal.
    Crashed,
    /// Disk parameters were rejected at validation time (the message names the
    /// offending field and value).
    InvalidDiskParams(String),
    /// A storage backend operation failed (the message carries the operation,
    /// the object and the underlying OS error).  Only the file backend produces
    /// these at runtime; the volatile backends are infallible.
    Io(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::ContainerNotFound(id) => write!(f, "container {} not found", id),
            StorageError::ChunkNotInContainer {
                container,
                fingerprint,
            } => write!(
                f,
                "chunk {} not found in container {}",
                fingerprint, container
            ),
            StorageError::NoOpenContainer(stream) => {
                write!(f, "no open container for stream {}", stream)
            }
            StorageError::ChunkTooLarge {
                chunk_size,
                container_capacity,
            } => write!(
                f,
                "chunk of {} bytes exceeds container capacity of {} bytes",
                chunk_size, container_capacity
            ),
            StorageError::ContainerSealed(id) => write!(f, "container {} is sealed", id),
            StorageError::Crashed => {
                write!(f, "node crashed: journal append did not become durable")
            }
            StorageError::InvalidDiskParams(msg) => {
                write!(f, "invalid disk parameters: {}", msg)
            }
            StorageError::Io(msg) => write!(f, "storage backend i/o error: {}", msg),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::ContainerNotFound(ContainerId::new(42));
        assert!(e.to_string().contains("42"));
        let e = StorageError::ChunkTooLarge {
            chunk_size: 10,
            container_capacity: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageError>();
    }
}
