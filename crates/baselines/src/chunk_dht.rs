//! HYDRAstor-style chunk-level DHT placement.

use sigma_core::{DataRouter, RoutingContext, RoutingDecision};

/// Chunk-level distributed-hash-table placement.
///
/// HYDRAstor distributes individual (large, 64 KB) chunks over the nodes with a DHT
/// on the chunk fingerprint, with no routing state at all.  Within this framework the
/// router is meant to be used with a configuration whose super-chunk size equals the
/// chunk size (so each "super-chunk" holds exactly one chunk); the placement then
/// reduces to `fingerprint mod N`.  When handed a multi-chunk super-chunk it places
/// it by the fingerprint of its first chunk and reports how many chunks would have
/// been scattered, so misuse is visible in the statistics rather than silent.
///
/// # Example
///
/// ```
/// use sigma_baselines::ChunkDhtRouter;
/// use sigma_core::DataRouter;
///
/// assert_eq!(ChunkDhtRouter::new().name(), "chunk-dht");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkDhtRouter;

impl ChunkDhtRouter {
    /// Creates the router.
    pub fn new() -> Self {
        ChunkDhtRouter
    }

    /// The chunk size HYDRAstor uses (64 KB); exposed so experiments can configure a
    /// matching chunker / super-chunk size.
    pub const HYDRA_CHUNK_SIZE: usize = 64 * 1024;
}

impl DataRouter for ChunkDhtRouter {
    fn name(&self) -> String {
        "chunk-dht".to_string()
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");
        let target = ctx
            .super_chunk
            .fingerprints()
            .next()
            .map(|fp| fp.bucket(node_count))
            .unwrap_or(0);
        RoutingDecision::stateless(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ChunkDescriptor, DedupNode, SigmaConfig, SuperChunk};
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    fn nodes(n: usize) -> Vec<Arc<DedupNode>> {
        let c = SigmaConfig::default();
        (0..n).map(|i| Arc::new(DedupNode::new(i, &c))).collect()
    }

    #[test]
    fn single_chunk_super_chunks_follow_the_fingerprint() {
        let nodes = nodes(16);
        let router = ChunkDhtRouter::new();
        for i in 0..64u64 {
            let fp = Sha1::fingerprint(&i.to_le_bytes());
            let sc = SuperChunk::from_descriptors(
                0,
                vec![ChunkDescriptor::new(
                    fp,
                    ChunkDhtRouter::HYDRA_CHUNK_SIZE as u32,
                )],
            );
            let hp = sc.handprint(1);
            let d = router.route(&RoutingContext {
                super_chunk: &sc,
                handprint: &hp,
                file_id: None,
                nodes: &nodes,
            });
            assert_eq!(d.target, fp.bucket(16));
            assert_eq!(d.prerouting_lookup_messages, 0);
        }
    }

    #[test]
    fn empty_super_chunk_routes_to_node_zero() {
        let nodes = nodes(4);
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let hp = sc.handprint(1);
        let d = ChunkDhtRouter::new().route(&RoutingContext {
            super_chunk: &sc,
            handprint: &hp,
            file_id: None,
            nodes: &nodes,
        });
        assert_eq!(d.target, 0);
    }
}
