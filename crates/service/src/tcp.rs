//! Framed-TCP transport: [`TcpService`] serves a [`ServiceStack`] over a
//! `std::net` listener, [`TcpClient`] speaks the same frames from the other
//! end.
//!
//! One length-prefixed request frame in, one response frame out, pipelined
//! per connection; each accepted connection gets its own thread, so clients
//! are isolated from each other's latency.  Malformed frames answer with an
//! [`InvalidRequest`](sigma_core::ServiceCode::InvalidRequest) envelope when
//! the direction is still recoverable, and close the connection otherwise —
//! a framing error means the byte stream can no longer be trusted.

use crate::builder::ServiceStack;
use crate::codec::{
    self, decode_request, decode_response, encode_request, encode_response, CodecError,
};
use crate::{RequestEnvelope, ResponseEnvelope};
use sigma_core::ServiceCode;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A running framed-TCP server in front of a [`ServiceStack`].
///
/// Dropping the handle shuts the server down and joins every connection
/// thread.
pub struct TcpService {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// One clone per live connection, so shutdown can sever streams that are
    /// blocked waiting for a client's next frame.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpService {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port) and starts
    /// accepting connections, each served on its own thread.
    ///
    /// # Errors
    ///
    /// Returns the bind error verbatim.
    pub fn bind(addr: impl ToSocketAddrs, stack: Arc<ServiceStack>) -> io::Result<TcpService> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shutdown = shutdown.clone();
        let accept_conns = conns.clone();
        let accept_thread = std::thread::Builder::new()
            .name("sigma-service-accept".into())
            .spawn(move || {
                let mut workers = Vec::new();
                for conn in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    if let Ok(clone) = stream.try_clone() {
                        let mut registry = accept_conns.lock().unwrap_or_else(|e| e.into_inner());
                        registry.push(clone);
                    }
                    let stack = stack.clone();
                    if let Ok(handle) = std::thread::Builder::new()
                        .name("sigma-service-conn".into())
                        .spawn(move || serve_connection(stream, &stack))
                    {
                        workers.push(handle);
                    }
                    workers.retain(|w| !w.is_finished());
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(TcpService {
            local_addr,
            shutdown,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, severs live connections, joins every thread.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Connection threads block in read_frame until their client's next
        // frame; sever the streams so they observe EOF and exit.
        let registry = std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for stream in registry {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // `incoming()` blocks in accept(2); poke it awake with a throwaway
        // connection so the loop observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TcpService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpService")
            .field("local_addr", &self.local_addr)
            .field("shutdown", &self.shutdown.load(Ordering::SeqCst))
            .finish()
    }
}

fn serve_connection(stream: TcpStream, stack: &ServiceStack) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let body = match codec::read_frame(&mut reader) {
            Ok(body) => body,
            // Clean disconnect or torn stream either way: stop serving.
            Err(_) => return,
        };
        let response = match decode_request(&body) {
            Ok(req) => stack.call(req),
            // The frame boundary held, so the stream is still in sync;
            // answer the bad body and keep the connection.
            Err(err) => ResponseEnvelope {
                request_id: 0,
                code: ServiceCode::InvalidRequest,
                message: format!("undecodable request: {}", err),
                metadata: Default::default(),
                payload: Vec::new(),
            },
        };
        let Ok(frame) = encode_response(&response) else {
            return;
        };
        if codec::write_frame(&mut writer, &frame).is_err() {
            return;
        }
    }
}

/// A blocking framed-TCP client for [`TcpService`].
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    peer: SocketAddr,
}

impl TcpClient {
    /// Connects to a running service.
    ///
    /// # Errors
    ///
    /// Returns the connect error verbatim.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let write_half = stream.try_clone()?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            peer,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on socket failure or an undecodable response
    /// frame.  Service-level rejections are *not* errors — they come back as
    /// envelopes with a non-[`Ok`](ServiceCode::Ok) code, exactly like the
    /// in-process transport.
    pub fn call(&mut self, req: &RequestEnvelope) -> Result<ResponseEnvelope, CodecError> {
        let frame = encode_request(req)?;
        codec::write_frame(&mut self.writer, &frame)?;
        let body = codec::read_frame(&mut self.reader)?;
        decode_response(&body)
    }

    /// The server address this client is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("peer", &self.peer)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::is_clean_eof;
    use crate::middleware::{RateLimit, TenantQuota, TokenAuth};
    use crate::{Operation, ServiceBuilder};
    use sigma_core::{DedupCluster, SigmaConfig};

    fn serve_default_stack() -> (TcpService, Arc<ServiceStack>) {
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ));
        let stack = Arc::new(
            ServiceBuilder::default_stack(
                TokenAuth::new().tenant("acme", "s3cret"),
                TenantQuota::new().budget("acme", 64 << 20),
                RateLimit::new(1000, 1000.0),
            )
            .build(cluster),
        );
        let service = TcpService::bind("127.0.0.1:0", stack.clone()).unwrap();
        (service, stack)
    }

    #[test]
    fn loopback_backup_restore_round_trip() {
        let (mut service, _stack) = serve_default_stack();
        let mut client = TcpClient::connect(service.local_addr()).unwrap();
        let payload = vec![0x5A; 200_000];
        let backup = client
            .call(
                &RequestEnvelope::new(
                    1,
                    "acme",
                    Operation::Backup {
                        file_name: "wire.bin".into(),
                        generation: 0,
                    },
                )
                .with_payload(payload.clone())
                .with_token("s3cret"),
            )
            .unwrap();
        assert!(backup.is_ok(), "{:?}", backup.message);
        let file_id = backup.metadata_u64(crate::backend::FILE_ID_KEY).unwrap();
        let restore = client
            .call(
                &RequestEnvelope::new(2, "acme", Operation::Restore { file_id })
                    .with_token("s3cret"),
            )
            .unwrap();
        assert_eq!(restore.payload, payload, "byte-identical over the wire");
        service.shutdown();
    }

    #[test]
    fn rejections_travel_as_envelopes_not_errors() {
        let (mut service, _stack) = serve_default_stack();
        let mut client = TcpClient::connect(service.local_addr()).unwrap();
        let resp = client
            .call(&RequestEnvelope::new(3, "acme", Operation::Stats).with_token("wrong"))
            .unwrap();
        assert_eq!(resp.code, ServiceCode::Unauthorized);
        // The connection survives a rejection.
        let resp = client
            .call(&RequestEnvelope::new(4, "acme", Operation::Stats).with_token("s3cret"))
            .unwrap();
        assert!(resp.is_ok());
        service.shutdown();
    }

    #[test]
    fn concurrent_clients_are_isolated() {
        let (mut service, _stack) = serve_default_stack();
        let addr = service.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = TcpClient::connect(addr).unwrap();
                    let payload = vec![i as u8; 10_000 + i as usize];
                    let backup = client
                        .call(
                            &RequestEnvelope::new(
                                i,
                                "acme",
                                Operation::Backup {
                                    file_name: format!("f{}", i),
                                    generation: 0,
                                },
                            )
                            .with_payload(payload.clone())
                            .with_token("s3cret"),
                        )
                        .unwrap();
                    assert!(backup.is_ok(), "{:?}", backup.message);
                    assert_eq!(backup.request_id, i, "correlator echoes back");
                    let file_id = backup.metadata_u64(crate::backend::FILE_ID_KEY).unwrap();
                    let restore = client
                        .call(
                            &RequestEnvelope::new(100 + i, "acme", Operation::Restore { file_id })
                                .with_token("s3cret"),
                        )
                        .unwrap();
                    assert_eq!(restore.payload, payload);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn undecodable_request_answers_invalid_request() {
        let (mut service, _stack) = serve_default_stack();
        let stream = TcpStream::connect(service.local_addr()).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        codec::write_frame(&mut writer, &[0xDE, 0xAD, 0xBE, 0xEF]).unwrap();
        let body = codec::read_frame(&mut reader).unwrap();
        let resp = decode_response(&body).unwrap();
        assert_eq!(resp.code, ServiceCode::InvalidRequest);
        service.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let (mut service, _stack) = serve_default_stack();
        service.shutdown();
        service.shutdown();
        drop(service);
    }

    #[test]
    fn clean_client_disconnect_is_quiet() {
        let (mut service, _stack) = serve_default_stack();
        {
            let mut client = TcpClient::connect(service.local_addr()).unwrap();
            let resp = client
                .call(&RequestEnvelope::new(1, "acme", Operation::Stats).with_token("s3cret"))
                .unwrap();
            assert!(resp.is_ok());
        } // client drops: connection thread sees EOF and exits.
        service.shutdown();
    }

    #[test]
    fn clean_eof_helper_matches_disconnect() {
        let err = CodecError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(is_clean_eof(&err));
        let err = CodecError::UnknownKind(9);
        assert!(!is_clean_eof(&err));
    }
}
