//! A self-contained SHA-1 implementation (FIPS 180-1).
//!
//! SHA-1 is the chunk fingerprinting function selected by the paper (Section 4.3):
//! it halves the throughput of MD5 but its collision probability is low enough that
//! fingerprint collisions are far less likely than undetected disk errors, which is
//! the standard assumption for hash-based deduplication.

use crate::Digest;

const BLOCK_LEN: usize = 64;

/// Streaming SHA-1 hasher.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{Digest, Sha1};
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(
///     digest.iter().map(|b| format!("{:02x}", b)).collect::<String>(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const NAME: &'static str = "sha1";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = BLOCK_LEN - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().unwrap();
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }

        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator and zero padding, then the 64-bit length.
        let mut padding = Vec::with_capacity(2 * BLOCK_LEN);
        padding.push(0x80u8);
        let pad_to = {
            let rem = (self.buffer_len + 1) % BLOCK_LEN;
            if rem <= 56 {
                56 - rem
            } else {
                BLOCK_LEN + 56 - rem
            }
        };
        padding.extend(std::iter::repeat(0u8).take(pad_to));
        padding.extend_from_slice(&bit_len.to_be_bytes());

        // Do not double-count padding in total_len; bypass update's counter by
        // feeding through the same code path (the counter is no longer read).
        self.update(&padding);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = Vec::with_capacity(Self::OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex(&Sha1::digest(input)), *expected, "input {:?}", input);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 56/64-byte boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one_shot = Sha1::digest(&data);
            let mut streaming = Sha1::new();
            for b in &data {
                streaming.update(std::slice::from_ref(b));
            }
            assert_eq!(streaming.finalize(), one_shot, "length {}", len);
        }
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_one_shot(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            split in 0usize..2048,
        ) {
            let split = split.min(data.len());
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha1::digest(&data));
        }

        #[test]
        fn prop_output_len(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(Sha1::digest(&data).len(), Sha1::OUTPUT_LEN);
        }
    }
}
