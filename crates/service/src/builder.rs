//! Declarative assembly of a middleware stack: [`ServiceBuilder`] for
//! code-driven layering, [`ServiceStack`] as the runnable (in-process)
//! result.

use crate::middleware::{
    AdmissionControl, FairScheduler, Middleware, RateLimit, RequestLog, TenantQuota, TokenAuth,
};
use crate::pipeline::{Backend, PipelineExecutor};
use crate::{BackupService, RequestEnvelope, ResponseEnvelope};
use sigma_core::DedupCluster;
use std::sync::Arc;

/// A fully-assembled service: the middleware pipeline in front of a backend.
///
/// This *is* the in-process transport — [`call`](Self::call) takes a request
/// envelope and returns the response envelope, exactly what the framed-TCP
/// server does per frame.  Wrap it in an `Arc` to share it between transports
/// and threads.
pub struct ServiceStack {
    executor: PipelineExecutor,
    log: Option<Arc<RequestLog>>,
}

impl ServiceStack {
    /// Executes one request through the full middleware stack.
    pub fn call(&self, req: RequestEnvelope) -> ResponseEnvelope {
        self.executor.execute(req)
    }

    /// Names of the stacked middlewares, outermost first.
    pub fn middleware_names(&self) -> Vec<&'static str> {
        self.executor.stack()
    }

    /// The request log, when the stack includes the logging middleware.
    pub fn log(&self) -> Option<&Arc<RequestLog>> {
        self.log.as_ref()
    }
}

impl std::fmt::Debug for ServiceStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceStack")
            .field("stack", &self.middleware_names())
            .finish_non_exhaustive()
    }
}

/// Builds a middleware stack layer by layer.
///
/// Layers run in the order they are added (first added = outermost).  The
/// production-shaped default order — auth rejects before quota reserves,
/// quota before rate limiting, logging just above the backend — is what
/// [`default_stack`](Self::default_stack) produces:
///
/// ```text
/// request → auth → quota → rate-limit → logging → BackupService
/// ```
///
/// The multi-tenant heavy-traffic order adds admission control right after
/// auth (shed unauthenticated work *after* it is rejected cheaply, shed the
/// rest before it reserves quota) and fair scheduling right above logging, so
/// every queued request has already paid auth, admission, quota and rate
/// limiting ([`full_stack`](Self::full_stack)):
///
/// ```text
/// request → auth → admission → quota → rate-limit → fair-scheduler → logging → BackupService
/// ```
///
/// # Example
///
/// ```
/// use sigma_core::{DedupCluster, SigmaConfig};
/// use sigma_service::middleware::{RateLimit, TenantQuota, TokenAuth};
/// use sigma_service::ServiceBuilder;
/// use std::sync::Arc;
///
/// let cluster = Arc::new(DedupCluster::with_similarity_router(2, SigmaConfig::default()));
/// let stack = ServiceBuilder::default_stack(
///     TokenAuth::new().tenant("acme", "s3cret"),
///     TenantQuota::new().budget("acme", 1 << 30),
///     RateLimit::new(100, 50.0),
/// )
/// .build(cluster);
/// assert_eq!(
///     stack.middleware_names(),
///     vec!["auth", "quota", "rate-limit", "logging"]
/// );
/// ```
#[derive(Default)]
pub struct ServiceBuilder {
    middlewares: Vec<Arc<dyn Middleware>>,
    log: Option<Arc<RequestLog>>,
}

impl ServiceBuilder {
    /// Starts an empty stack.
    pub fn new() -> Self {
        ServiceBuilder::default()
    }

    /// Appends token authentication.
    pub fn auth(self, auth: TokenAuth) -> Self {
        self.layer(Arc::new(auth))
    }

    /// Appends per-tenant quota enforcement.
    pub fn quota(self, quota: TenantQuota) -> Self {
        self.layer(Arc::new(quota))
    }

    /// Appends global admission control (bounded in-flight work, typed 503
    /// shedding with deterministic retry-after hints).
    pub fn admission(self, admission: AdmissionControl) -> Self {
        self.layer(Arc::new(admission))
    }

    /// Appends deficit-round-robin fair scheduling over per-tenant queues.
    pub fn fair_scheduler(self, scheduler: FairScheduler) -> Self {
        self.layer(Arc::new(scheduler))
    }

    /// Appends a caller-held fair scheduler (keep the handle to read
    /// per-tenant completed bytes and compute fairness indices).
    pub fn fair_scheduler_with(self, scheduler: Arc<FairScheduler>) -> Self {
        self.layer(scheduler)
    }

    /// Appends token-bucket rate limiting.
    pub fn rate_limit(self, limiter: RateLimit) -> Self {
        self.layer(Arc::new(limiter))
    }

    /// Appends request logging/metrics; the log handle stays readable through
    /// [`ServiceStack::log`].
    pub fn logging(self) -> Self {
        self.logging_with(Arc::new(RequestLog::new()))
    }

    /// Appends request logging using a caller-held [`RequestLog`] (share one
    /// log across stacks, or keep a handle for assertions).
    pub fn logging_with(mut self, log: Arc<RequestLog>) -> Self {
        self.log = Some(log.clone());
        self.layer(log)
    }

    /// Appends any custom middleware.
    pub fn layer(mut self, middleware: Arc<dyn Middleware>) -> Self {
        self.middlewares.push(middleware);
        self
    }

    /// The canonical four-layer stack in production order.
    pub fn default_stack(auth: TokenAuth, quota: TenantQuota, limiter: RateLimit) -> Self {
        ServiceBuilder::new()
            .auth(auth)
            .quota(quota)
            .rate_limit(limiter)
            .logging()
    }

    /// The full multi-tenant heavy-traffic stack: auth → admission → quota →
    /// rate-limit → fair-scheduler → logging.
    ///
    /// Admission sits directly under auth so overload shedding happens before
    /// quota is reserved; the fair scheduler sits just above logging so a
    /// parked request has already passed every policy layer and the log
    /// records scheduler queueing as part of request latency.
    pub fn full_stack(
        auth: TokenAuth,
        admission: AdmissionControl,
        quota: TenantQuota,
        limiter: RateLimit,
        scheduler: Arc<FairScheduler>,
    ) -> Self {
        ServiceBuilder::new()
            .auth(auth)
            .admission(admission)
            .quota(quota)
            .rate_limit(limiter)
            .fair_scheduler_with(scheduler)
            .logging()
    }

    /// Finishes the stack in front of a [`BackupService`] owning `cluster`.
    pub fn build(self, cluster: Arc<DedupCluster>) -> ServiceStack {
        self.build_with_backend(Arc::new(BackupService::new(cluster)))
    }

    /// Finishes the stack in front of an arbitrary backend (tests, fakes,
    /// future non-cluster services).
    pub fn build_with_backend(self, backend: Arc<dyn Backend>) -> ServiceStack {
        ServiceStack {
            executor: PipelineExecutor::new(self.middlewares, backend),
            log: self.log,
        }
    }
}

impl std::fmt::Debug for ServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.middlewares.iter().map(|m| m.name()).collect();
        f.debug_struct("ServiceBuilder")
            .field("stack", &names)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;
    use sigma_core::{ServiceCode, SigmaConfig};

    fn cluster() -> Arc<DedupCluster> {
        Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ))
    }

    #[test]
    fn default_stack_orders_the_four_layers() {
        let stack = ServiceBuilder::default_stack(
            TokenAuth::new().tenant("t", "s"),
            TenantQuota::new(),
            RateLimit::new(100, 100.0),
        )
        .build(cluster());
        assert_eq!(
            stack.middleware_names(),
            vec!["auth", "quota", "rate-limit", "logging"]
        );
        assert!(stack.log().is_some());
    }

    #[test]
    fn full_stack_orders_the_six_layers() {
        let scheduler = Arc::new(FairScheduler::new(64 << 10, 8 << 20, 4));
        let stack = ServiceBuilder::full_stack(
            TokenAuth::new().tenant("t", "s"),
            AdmissionControl::new(64, 64 << 20),
            TenantQuota::new(),
            RateLimit::new(100, 100.0),
            scheduler.clone(),
        )
        .build(cluster());
        assert_eq!(
            stack.middleware_names(),
            vec![
                "auth",
                "admission",
                "quota",
                "rate-limit",
                "fair-scheduler",
                "logging"
            ]
        );
        // The caller-held handle observes traffic through the stack.
        let resp = stack.call(
            RequestEnvelope::new(
                1,
                "t",
                Operation::Backup {
                    file_name: "f".into(),
                    generation: 0,
                },
            )
            .with_payload(vec![1u8; 2048])
            .with_token("s"),
        );
        assert!(resp.is_ok(), "{:?}", resp);
        assert_eq!(scheduler.granted_count(), 1);
        assert_eq!(scheduler.completed_bytes().get("t"), Some(&2048));
    }

    #[test]
    fn layers_run_in_addition_order() {
        // Logging outermost: it must observe the auth rejection.
        let log = Arc::new(RequestLog::new());
        let stack = ServiceBuilder::new()
            .logging_with(log.clone())
            .auth(TokenAuth::new())
            .build(cluster());
        assert_eq!(stack.middleware_names(), vec!["logging", "auth"]);
        let resp = stack.call(RequestEnvelope::new(1, "t", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::Unauthorized);
        assert_eq!(log.entries().len(), 1);
        assert_eq!(log.entries()[0].code, ServiceCode::Unauthorized);
    }

    #[test]
    fn empty_builder_is_a_bare_backend() {
        let stack = ServiceBuilder::new().build(cluster());
        assert!(stack.middleware_names().is_empty());
        assert!(stack.log().is_none());
        let resp = stack.call(RequestEnvelope::new(1, "anyone", Operation::Stats));
        assert!(resp.is_ok(), "no auth layer, so anyone passes");
    }

    #[test]
    fn end_to_end_through_the_default_stack() {
        let stack = ServiceBuilder::default_stack(
            TokenAuth::new().tenant("acme", "s3cret"),
            TenantQuota::new().budget("acme", 10 << 20),
            RateLimit::new(100, 0.0),
        )
        .build(cluster());
        let payload = vec![7u8; 100_000];
        let resp = stack.call(
            RequestEnvelope::new(
                1,
                "acme",
                Operation::Backup {
                    file_name: "f".into(),
                    generation: 0,
                },
            )
            .with_payload(payload.clone())
            .with_token("s3cret"),
        );
        assert!(resp.is_ok(), "{:?}", resp);
        let file_id = resp.metadata_u64(crate::backend::FILE_ID_KEY).unwrap();
        let restored = stack.call(
            RequestEnvelope::new(2, "acme", Operation::Restore { file_id }).with_token("s3cret"),
        );
        assert_eq!(restored.payload, payload);
        let log = stack.log().unwrap();
        assert_eq!(log.entries().len(), 2);
    }
}
