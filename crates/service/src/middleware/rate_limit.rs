//! Per-tenant token-bucket rate limiting.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::RequestEnvelope;
use parking_lot::Mutex;
use sigma_core::SigmaError;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for the bucket refill.
///
/// Production uses [`SystemClock`]; tests inject a [`ManualClock`] so refill
/// behaviour is deterministic.
pub trait RateLimitClock: Send + Sync {
    /// Monotonic elapsed time since an arbitrary fixed epoch.
    fn now(&self) -> Duration;
}

/// [`Instant`]-backed clock (the default).
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl RateLimitClock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        *self.now.lock() += delta;
    }
}

impl RateLimitClock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

/// One tenant's bucket: fractional tokens plus the last refill instant.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refreshed: Duration,
}

/// Token-bucket rate limiter, one bucket per tenant.
///
/// Every request costs one token.  A bucket starts full at `capacity` (the
/// burst allowance) and refills continuously at `refill_per_sec`.  A request
/// arriving at an empty bucket is rejected with [`SigmaError::RateLimited`]
/// (code [`ResourceExhausted`](sigma_core::ServiceCode::ResourceExhausted))
/// carrying the milliseconds until one token is available — without reaching
/// any lower layer.
///
/// # Example
///
/// ```
/// use sigma_service::middleware::{ManualClock, RateLimit};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let clock = Arc::new(ManualClock::new());
/// let limiter = RateLimit::new(2, 1.0).with_clock(clock.clone());
/// assert!(limiter.try_acquire("t").is_ok());
/// assert!(limiter.try_acquire("t").is_ok());
/// assert!(limiter.try_acquire("t").is_err(), "burst of 2 exhausted");
/// clock.advance(Duration::from_secs(1));
/// assert!(limiter.try_acquire("t").is_ok(), "refilled one token");
/// ```
pub struct RateLimit {
    capacity: u64,
    refill_per_sec: f64,
    clock: Arc<dyn RateLimitClock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl std::fmt::Debug for RateLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimit")
            .field("capacity", &self.capacity)
            .field("refill_per_sec", &self.refill_per_sec)
            .finish_non_exhaustive()
    }
}

impl RateLimit {
    /// Creates a limiter where every tenant gets a bucket of `capacity`
    /// tokens refilling at `refill_per_sec` tokens per second
    /// (`0.0` = no refill: a hard cap of `capacity` requests, useful in
    /// tests).  Negative or non-finite refill rates are treated as `0.0`.
    pub fn new(capacity: u64, refill_per_sec: f64) -> Self {
        let refill = if refill_per_sec.is_finite() && refill_per_sec > 0.0 {
            refill_per_sec
        } else {
            0.0
        };
        RateLimit {
            capacity,
            refill_per_sec: refill,
            clock: Arc::new(SystemClock::default()),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Substitutes the time source (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn RateLimitClock>) -> Self {
        self.clock = clock;
        self
    }

    /// The burst capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Takes one token from the tenant's bucket.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::RateLimited`] when the bucket is empty.
    pub fn try_acquire(&self, tenant: &str) -> Result<(), SigmaError> {
        let now = self.clock.now();
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.capacity as f64,
            refreshed: now,
        });
        let elapsed = now.saturating_sub(bucket.refreshed).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_sec).min(self.capacity as f64);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let retry_after_ms = if self.refill_per_sec > 0.0 {
                ((1.0 - bucket.tokens) / self.refill_per_sec * 1000.0).ceil() as u64
            } else {
                0
            };
            Err(SigmaError::RateLimited {
                tenant: tenant.to_string(),
                retry_after_ms,
            })
        }
    }
}

impl Middleware for RateLimit {
    fn name(&self) -> &'static str {
        "rate-limit"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        self.try_acquire(&req.tenant)?;
        next.run(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;

    #[test]
    fn burst_then_reject_then_refill() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimit::new(3, 2.0).with_clock(clock.clone());
        for _ in 0..3 {
            assert!(limiter.try_acquire("t").is_ok());
        }
        let err = limiter.try_acquire("t").unwrap_err();
        match err {
            SigmaError::RateLimited { retry_after_ms, .. } => {
                assert_eq!(retry_after_ms, 500, "one token at 2/s is 500 ms away");
            }
            other => panic!("expected RateLimited, got {:?}", other),
        }
        clock.advance(Duration::from_millis(500));
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_err(), "only one token refilled");
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimit::new(2, 100.0).with_clock(clock.clone());
        clock.advance(Duration::from_secs(3600));
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_err(), "capped at capacity 2");
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let limiter = RateLimit::new(1, 0.0);
        assert!(limiter.try_acquire("a").is_ok());
        assert!(limiter.try_acquire("a").is_err());
        assert!(limiter.try_acquire("b").is_ok(), "b has its own bucket");
    }

    #[test]
    fn zero_refill_reports_no_retry_hint() {
        let limiter = RateLimit::new(0, 0.0);
        match limiter.try_acquire("t").unwrap_err() {
            SigmaError::RateLimited { retry_after_ms, .. } => assert_eq!(retry_after_ms, 0),
            other => panic!("expected RateLimited, got {:?}", other),
        }
    }

    #[test]
    fn pathological_refill_rates_degrade_to_zero() {
        for bad in [f64::NAN, f64::INFINITY, -5.0] {
            let limiter = RateLimit::new(1, bad);
            assert!(limiter.try_acquire("t").is_ok());
            assert!(limiter.try_acquire("t").is_err(), "rate {} acts as 0", bad);
        }
    }

    #[test]
    fn middleware_rejects_with_resource_exhausted() {
        let p = PipelineExecutor::new(
            vec![std::sync::Arc::new(RateLimit::new(1, 0.0))],
            std::sync::Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p
            .execute(RequestEnvelope::new(1, "t", Operation::Stats))
            .is_ok());
        let resp = p.execute(RequestEnvelope::new(2, "t", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::ResourceExhausted);
    }
}
