//! Figure 6: cluster deduplication ratio vs. handprint size.
//!
//! With 1 MB super-chunks on the Linux workload, the cluster-wide deduplication
//! ratio (normalised to single-node exact deduplication) improves with the handprint
//! size — larger handprints detect more super-chunk resemblance during routing — and
//! the improvement is significant up to a handprint of ~8 for every cluster size.

use crate::runner::{run_cluster, SimulationConfig};
use serde::{Deserialize, Serialize};
use sigma_core::{SigmaConfig, SimilarityRouter};
use sigma_metrics::report::TextTable;
use sigma_workloads::{presets, DatasetTrace, Scale};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Number of deduplication nodes.
    pub cluster_size: usize,
    /// Handprint size (representative fingerprints per super-chunk).
    pub handprint_size: usize,
    /// Cluster DR normalised to single-node exact deduplication.
    pub normalized_dedup_ratio: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Params {
    /// Workload scale.
    pub scale: Scale,
    /// Cluster sizes to sweep.
    pub cluster_sizes: Vec<usize>,
    /// Handprint sizes to sweep.
    pub handprint_sizes: Vec<usize>,
}

impl Default for Fig6Params {
    fn default() -> Self {
        Fig6Params {
            scale: Scale::Small,
            cluster_sizes: vec![4, 16, 64, 128],
            handprint_sizes: vec![1, 2, 4, 8, 16, 32, 64],
        }
    }
}

/// Runs the experiment on the Linux-like workload.
pub fn run(params: &Fig6Params) -> Vec<Fig6Row> {
    let dataset = presets::linux_dataset(params.scale);
    run_on(&dataset, params)
}

/// Runs the experiment on a caller-provided workload.
pub fn run_on(dataset: &DatasetTrace, params: &Fig6Params) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &cluster_size in &params.cluster_sizes {
        for &handprint_size in &params.handprint_sizes {
            let sigma = SigmaConfig::builder()
                .handprint_size(handprint_size)
                .build()
                .expect("valid configuration");
            let summary = run_cluster(
                dataset,
                Box::new(SimilarityRouter::new(true)),
                &SimulationConfig {
                    node_count: cluster_size,
                    sigma,
                    client_streams: 4,
                },
            );
            rows.push(Fig6Row {
                cluster_size,
                handprint_size,
                normalized_dedup_ratio: summary.normalized_dr(),
            });
        }
    }
    rows
}

/// Renders the figure (handprint sizes as rows, cluster sizes as columns).
pub fn render(rows: &[Fig6Row]) -> String {
    let mut handprints: Vec<usize> = rows.iter().map(|r| r.handprint_size).collect();
    handprints.sort_unstable();
    handprints.dedup();
    let mut clusters: Vec<usize> = rows.iter().map(|r| r.cluster_size).collect();
    clusters.sort_unstable();
    clusters.dedup();

    let mut headers = vec!["handprint size".to_string()];
    headers.extend(clusters.iter().map(|c| format!("{} nodes", c)));
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for k in handprints {
        let mut cells = vec![k.to_string()];
        for &c in &clusters {
            let cell = rows
                .iter()
                .find(|r| r.handprint_size == k && r.cluster_size == c)
                .map(|r| format!("{:.3}", r.normalized_dedup_ratio))
                .unwrap_or_default();
            cells.push(cell);
        }
        table.add_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig6Params {
        Fig6Params {
            scale: Scale::Tiny,
            cluster_sizes: vec![4, 16],
            handprint_sizes: vec![1, 8],
        }
    }

    #[test]
    fn larger_handprints_do_not_hurt_dedup() {
        let rows = run(&tiny_params());
        for &c in &[4usize, 16] {
            let k1 = rows
                .iter()
                .find(|r| r.cluster_size == c && r.handprint_size == 1)
                .unwrap()
                .normalized_dedup_ratio;
            let k8 = rows
                .iter()
                .find(|r| r.cluster_size == c && r.handprint_size == 8)
                .unwrap()
                .normalized_dedup_ratio;
            assert!(k8 >= k1 - 0.03, "cluster {}: k1 {} vs k8 {}", c, k1, k8);
        }
    }

    #[test]
    fn ratios_bounded_by_one() {
        let rows = run(&tiny_params());
        assert!(rows
            .iter()
            .all(|r| r.normalized_dedup_ratio > 0.2 && r.normalized_dedup_ratio <= 1.01));
    }

    #[test]
    fn render_has_node_columns() {
        let text = render(&run(&tiny_params()));
        assert!(text.contains("4 nodes"));
        assert!(text.contains("16 nodes"));
    }
}
