//! Baseline cluster-deduplication data-routing schemes.
//!
//! The paper (Section 2.1, Table 1, Section 4.4) compares Σ-Dedupe against the
//! representative state-of-the-art routing schemes.  Each is implemented here behind
//! the same [`DataRouter`] trait as Σ-Dedupe's own
//! [`SimilarityRouter`](sigma_core::SimilarityRouter), so that the trace-driven
//! simulation can swap them freely:
//!
//! * [`StatelessRouter`] — EMC's super-chunk stateless routing: hash a
//!   representative feature of the super-chunk and place it with a modulo (DHT-like)
//!   mapping.  No remote state is consulted, so the overhead is minimal, but
//!   cross-node redundancy is untouched and capacity can skew in large clusters.
//! * [`StatefulRouter`] — EMC's super-chunk stateful routing: ask *every* node how
//!   much of (a sample of) the super-chunk it already stores and send the
//!   super-chunk to the best match, weighted for load balance.  Highest
//!   deduplication, but the per-super-chunk broadcast makes the lookup message count
//!   grow linearly with the cluster size (Figure 7).
//! * [`ExtremeBinningRouter`] — file-similarity routing: the whole file goes to the
//!   node selected by the file's representative (minimum) chunk fingerprint.
//!   Needs file boundaries; suffers when file sizes are large/skewed (VM dataset).
//! * [`ChunkDhtRouter`] — HYDRAstor-style chunk/stateless DHT placement at a fixed
//!   granularity, included as the "route by the chunk itself" extreme.
//! * [`RoundRobinRouter`] — a locality- and similarity-oblivious strawman that
//!   spreads super-chunks uniformly; perfect balance, minimal deduplication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk_dht;
mod extreme_binning;
mod round_robin;
mod stateful;
mod stateless;

pub use chunk_dht::ChunkDhtRouter;
pub use extreme_binning::ExtremeBinningRouter;
pub use round_robin::RoundRobinRouter;
pub use stateful::StatefulRouter;
pub use stateless::StatelessRouter;

use sigma_core::DataRouter;

/// The routing schemes compared in the paper's evaluation, as trait objects.
///
/// Convenience for experiments that sweep over schemes: Σ-Dedupe itself, EMC
/// stateless, EMC stateful and Extreme Binning (the four lines of Figures 7 and 8).
///
/// # Example
///
/// ```
/// use sigma_baselines::paper_comparison_routers;
///
/// let routers = paper_comparison_routers();
/// let names: Vec<String> = routers.iter().map(|r| r.name()).collect();
/// assert_eq!(names, vec!["sigma", "stateless", "stateful", "extreme-binning"]);
/// ```
pub fn paper_comparison_routers() -> Vec<Box<dyn DataRouter>> {
    vec![
        Box::new(sigma_core::SimilarityRouter::new(true)),
        Box::new(StatelessRouter::new()),
        Box::new(StatefulRouter::new()),
        Box::new(ExtremeBinningRouter::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_set_matches_figure_8() {
        let routers = paper_comparison_routers();
        assert_eq!(routers.len(), 4);
        assert_eq!(routers[0].name(), "sigma");
        assert!(routers[3].requires_file_boundaries());
        assert!(!routers[1].requires_file_boundaries());
    }
}
