//! Cryptographic and rolling hash primitives for the Σ-Dedupe deduplication framework.
//!
//! The paper ("A Scalable Inline Cluster Deduplication Framework for Big Data
//! Protection", Fu et al., MIDDLEWARE 2012) fingerprints every data chunk with a
//! collision-resistant cryptographic hash (SHA-1 or MD5) and uses rolling hashes
//! (Rabin fingerprints) inside the content-defined chunking algorithms.  This crate
//! provides self-contained implementations of all of those primitives so that the
//! rest of the workspace has no dependency on external cryptography crates:
//!
//! * [`Sha1`] — the 160-bit SHA-1 hash used for chunk fingerprinting.
//! * [`Md5`] — the 128-bit MD5 hash, kept as the faster (but weaker) alternative
//!   evaluated in Figure 4(a) of the paper.
//! * [`RabinHasher`] — a polynomial rolling hash over a sliding window, used by the
//!   content-defined chunkers.
//! * [`GearHasher`] — a table-driven "gear" rolling hash, a cheaper CDC alternative.
//! * [`Fnv64`] — a tiny non-cryptographic hash used for hash-table style placement
//!   (e.g. DHT bucket selection in the baseline routers).
//! * [`Fingerprint`] — the fixed-width chunk fingerprint value type shared by the
//!   whole workspace.
//!
//! # Example
//!
//! ```
//! use sigma_hashkit::{Digest, Sha1, Fingerprint};
//!
//! let fp: Fingerprint = Sha1::fingerprint(b"hello sigma-dedupe");
//! assert_eq!(fp.as_bytes().len(), Fingerprint::LEN);
//! // Fingerprints display as lowercase hex.
//! assert_eq!(fp.to_string().len(), 2 * Fingerprint::LEN);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;
mod fnv;
mod gear;
mod md5;
mod rabin;
pub mod reference;
mod sha1;

pub use fingerprint::{Fingerprint, ParseFingerprintError};
pub use fnv::{fnv1a_32, fnv1a_64, Fnv64};
pub use gear::{GearHasher, GEAR_EFFECTIVE_WINDOW, GEAR_TABLE};
pub use md5::Md5;
pub use rabin::{RabinHasher, RabinParams, DEFAULT_IRREDUCIBLE_POLY};
pub use sha1::Sha1;

/// A cryptographic digest algorithm producing a fixed-size output.
///
/// Both [`Sha1`] and [`Md5`] implement this trait.  The incremental API
/// (`update`/`finalize`) mirrors the usual streaming digest interface so that large
/// chunks can be hashed without first concatenating them into one buffer.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{Digest, Md5};
///
/// let mut hasher = Md5::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let streamed = hasher.finalize();
/// assert_eq!(streamed, Md5::digest(b"hello world"));
/// ```
pub trait Digest: Default {
    /// Number of bytes in the digest output.
    const OUTPUT_LEN: usize;

    /// Human-readable algorithm name (e.g. `"sha1"`).
    const NAME: &'static str;

    /// Creates a fresh hasher state.
    fn new() -> Self {
        Self::default()
    }

    /// Feeds `data` into the hasher.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the raw digest bytes.
    fn finalize(self) -> Vec<u8>;

    /// Convenience one-shot digest of `data`.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest of `data`, truncated/zero-padded into a [`Fingerprint`].
    fn fingerprint(data: &[u8]) -> Fingerprint {
        Fingerprint::from_digest(&Self::digest(data))
    }
}

/// The fingerprinting algorithm used by a backup client.
///
/// The paper evaluates both SHA-1 and MD5 for chunk fingerprinting (Figure 4(a)) and
/// selects SHA-1 for its lower collision probability.  This enum lets higher layers
/// pick either at runtime.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum FingerprintAlgorithm {
    /// 160-bit SHA-1 (the paper's default).
    #[default]
    Sha1,
    /// 128-bit MD5 (roughly 2x faster, higher collision probability).
    Md5,
}

impl FingerprintAlgorithm {
    /// Computes the fingerprint of `data` with the selected algorithm.
    ///
    /// # Example
    ///
    /// ```
    /// use sigma_hashkit::FingerprintAlgorithm;
    /// let fp = FingerprintAlgorithm::Sha1.fingerprint(b"abc");
    /// assert_ne!(fp, FingerprintAlgorithm::Md5.fingerprint(b"abc"));
    /// ```
    pub fn fingerprint(self, data: &[u8]) -> Fingerprint {
        match self {
            FingerprintAlgorithm::Sha1 => Sha1::fingerprint(data),
            FingerprintAlgorithm::Md5 => Md5::fingerprint(data),
        }
    }

    /// Digest output length in bytes.
    pub fn output_len(self) -> usize {
        match self {
            FingerprintAlgorithm::Sha1 => Sha1::OUTPUT_LEN,
            FingerprintAlgorithm::Md5 => Md5::OUTPUT_LEN,
        }
    }

    /// Algorithm name, e.g. `"sha1"`.
    pub fn name(self) -> &'static str {
        match self {
            FingerprintAlgorithm::Sha1 => Sha1::NAME,
            FingerprintAlgorithm::Md5 => Md5::NAME,
        }
    }
}

impl std::fmt::Display for FingerprintAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FingerprintAlgorithm {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sha1" | "sha-1" => Ok(FingerprintAlgorithm::Sha1),
            "md5" => Ok(FingerprintAlgorithm::Md5),
            _ => Err(ParseAlgorithmError {
                input: s.to_string(),
            }),
        }
    }
}

/// Error returned when parsing a [`FingerprintAlgorithm`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError {
    input: String,
}

impl std::fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown fingerprint algorithm `{}`", self.input)
    }
}

impl std::error::Error for ParseAlgorithmError {}

/// A rolling hash over a fixed-size sliding window of bytes.
///
/// Implemented by [`RabinHasher`] and [`GearHasher`]; the content-defined chunkers in
/// `sigma-chunking` are generic over this trait.
pub trait RollingHash {
    /// Resets the hasher to its initial (empty-window) state.
    fn reset(&mut self);

    /// Pushes one byte into the window and returns the updated hash value.
    fn roll(&mut self, byte: u8) -> u64;

    /// Current hash value of the window contents.
    fn value(&self) -> u64;

    /// The sliding-window size in bytes (0 when the hash does not maintain an
    /// explicit window, as for the gear hash).
    fn window_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_roundtrip_parse() {
        for (s, a) in [
            ("sha1", FingerprintAlgorithm::Sha1),
            ("SHA-1", FingerprintAlgorithm::Sha1),
            ("md5", FingerprintAlgorithm::Md5),
            ("MD5", FingerprintAlgorithm::Md5),
        ] {
            assert_eq!(s.parse::<FingerprintAlgorithm>().unwrap(), a);
        }
        assert!("blake3".parse::<FingerprintAlgorithm>().is_err());
    }

    #[test]
    fn algorithm_display_matches_name() {
        assert_eq!(FingerprintAlgorithm::Sha1.to_string(), "sha1");
        assert_eq!(FingerprintAlgorithm::Md5.to_string(), "md5");
    }

    #[test]
    fn algorithm_output_lengths() {
        assert_eq!(FingerprintAlgorithm::Sha1.output_len(), 20);
        assert_eq!(FingerprintAlgorithm::Md5.output_len(), 16);
    }

    #[test]
    fn one_shot_matches_streaming() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut s = Sha1::new();
        for b in data.chunks(7) {
            s.update(b);
        }
        assert_eq!(s.finalize(), Sha1::digest(data));
    }

    #[test]
    fn fingerprints_differ_between_algorithms() {
        let fp_sha = FingerprintAlgorithm::Sha1.fingerprint(b"same input");
        let fp_md5 = FingerprintAlgorithm::Md5.fingerprint(b"same input");
        assert_ne!(fp_sha, fp_md5);
    }
}
