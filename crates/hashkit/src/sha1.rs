//! A self-contained SHA-1 implementation (FIPS 180-1).
//!
//! SHA-1 is the chunk fingerprinting function selected by the paper (Section 4.3):
//! it halves the throughput of MD5 but its collision probability is low enough that
//! fingerprint collisions are far less likely than undetected disk errors, which is
//! the standard assumption for hash-based deduplication.

use crate::Digest;

const BLOCK_LEN: usize = 64;

/// Streaming SHA-1 hasher.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{Digest, Sha1};
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(
///     digest.iter().map(|b| format!("{:02x}", b)).collect::<String>(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xEFCD_AB89,
                0x98BA_DCFE,
                0x1032_5476,
                0xC3D2_E1F0,
            ],
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }
}

impl Sha1 {
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        // 16-word circular message schedule instead of the expanded 80-word
        // array: the working set stays in registers/L1 and each round's
        // schedule word is computed exactly when needed.  The four stages are
        // separate fixed-trip loops so no round pays a `match` on its index,
        // and the boolean functions use their cheapest 3-op forms.
        let mut w = [0u32; 16];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().unwrap());
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        // Schedule word for round $i (16..80): w[i-3] ^ w[i-8] ^ w[i-14] ^
        // w[i-16] rotated left 1, indices mod 16.
        macro_rules! s {
            ($i:expr) => {{
                let x = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[$i & 15])
                    .rotate_left(1);
                w[$i & 15] = x;
                x
            }};
        }
        // One round with explicit register roles: the caller rotates the
        // argument order instead of the body shuffling five variables, so the
        // only per-round data movement is the two rotates the spec demands.
        macro_rules! rnd {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:expr, $k:expr, $wi:expr) => {
                $e = $e
                    .wrapping_add($a.rotate_left(5))
                    .wrapping_add($f)
                    .wrapping_add($k)
                    .wrapping_add($wi);
                $b = $b.rotate_left(30);
            };
        }
        macro_rules! r_ch {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
                rnd!(
                    $a,
                    $b,
                    $c,
                    $d,
                    $e,
                    $d ^ ($b & ($c ^ $d)),
                    0x5A82_7999u32,
                    $wi
                )
            };
        }
        macro_rules! r_p1 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
                rnd!($a, $b, $c, $d, $e, $b ^ $c ^ $d, 0x6ED9_EBA1u32, $wi)
            };
        }
        macro_rules! r_maj {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
                rnd!(
                    $a,
                    $b,
                    $c,
                    $d,
                    $e,
                    ($b & $c) | ($d & ($b | $c)),
                    0x8F1B_BCDCu32,
                    $wi
                )
            };
        }
        macro_rules! r_p2 {
            ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $wi:expr) => {
                rnd!($a, $b, $c, $d, $e, $b ^ $c ^ $d, 0xCA62_C1D6u32, $wi)
            };
        }

        r_ch!(a, b, c, d, e, w[0]);
        r_ch!(e, a, b, c, d, w[1]);
        r_ch!(d, e, a, b, c, w[2]);
        r_ch!(c, d, e, a, b, w[3]);
        r_ch!(b, c, d, e, a, w[4]);
        r_ch!(a, b, c, d, e, w[5]);
        r_ch!(e, a, b, c, d, w[6]);
        r_ch!(d, e, a, b, c, w[7]);
        r_ch!(c, d, e, a, b, w[8]);
        r_ch!(b, c, d, e, a, w[9]);
        r_ch!(a, b, c, d, e, w[10]);
        r_ch!(e, a, b, c, d, w[11]);
        r_ch!(d, e, a, b, c, w[12]);
        r_ch!(c, d, e, a, b, w[13]);
        r_ch!(b, c, d, e, a, w[14]);
        r_ch!(a, b, c, d, e, w[15]);
        r_ch!(e, a, b, c, d, s!(16));
        r_ch!(d, e, a, b, c, s!(17));
        r_ch!(c, d, e, a, b, s!(18));
        r_ch!(b, c, d, e, a, s!(19));
        r_p1!(a, b, c, d, e, s!(20));
        r_p1!(e, a, b, c, d, s!(21));
        r_p1!(d, e, a, b, c, s!(22));
        r_p1!(c, d, e, a, b, s!(23));
        r_p1!(b, c, d, e, a, s!(24));
        r_p1!(a, b, c, d, e, s!(25));
        r_p1!(e, a, b, c, d, s!(26));
        r_p1!(d, e, a, b, c, s!(27));
        r_p1!(c, d, e, a, b, s!(28));
        r_p1!(b, c, d, e, a, s!(29));
        r_p1!(a, b, c, d, e, s!(30));
        r_p1!(e, a, b, c, d, s!(31));
        r_p1!(d, e, a, b, c, s!(32));
        r_p1!(c, d, e, a, b, s!(33));
        r_p1!(b, c, d, e, a, s!(34));
        r_p1!(a, b, c, d, e, s!(35));
        r_p1!(e, a, b, c, d, s!(36));
        r_p1!(d, e, a, b, c, s!(37));
        r_p1!(c, d, e, a, b, s!(38));
        r_p1!(b, c, d, e, a, s!(39));
        r_maj!(a, b, c, d, e, s!(40));
        r_maj!(e, a, b, c, d, s!(41));
        r_maj!(d, e, a, b, c, s!(42));
        r_maj!(c, d, e, a, b, s!(43));
        r_maj!(b, c, d, e, a, s!(44));
        r_maj!(a, b, c, d, e, s!(45));
        r_maj!(e, a, b, c, d, s!(46));
        r_maj!(d, e, a, b, c, s!(47));
        r_maj!(c, d, e, a, b, s!(48));
        r_maj!(b, c, d, e, a, s!(49));
        r_maj!(a, b, c, d, e, s!(50));
        r_maj!(e, a, b, c, d, s!(51));
        r_maj!(d, e, a, b, c, s!(52));
        r_maj!(c, d, e, a, b, s!(53));
        r_maj!(b, c, d, e, a, s!(54));
        r_maj!(a, b, c, d, e, s!(55));
        r_maj!(e, a, b, c, d, s!(56));
        r_maj!(d, e, a, b, c, s!(57));
        r_maj!(c, d, e, a, b, s!(58));
        r_maj!(b, c, d, e, a, s!(59));
        r_p2!(a, b, c, d, e, s!(60));
        r_p2!(e, a, b, c, d, s!(61));
        r_p2!(d, e, a, b, c, s!(62));
        r_p2!(c, d, e, a, b, s!(63));
        r_p2!(b, c, d, e, a, s!(64));
        r_p2!(a, b, c, d, e, s!(65));
        r_p2!(e, a, b, c, d, s!(66));
        r_p2!(d, e, a, b, c, s!(67));
        r_p2!(c, d, e, a, b, s!(68));
        r_p2!(b, c, d, e, a, s!(69));
        r_p2!(a, b, c, d, e, s!(70));
        r_p2!(e, a, b, c, d, s!(71));
        r_p2!(d, e, a, b, c, s!(72));
        r_p2!(c, d, e, a, b, s!(73));
        r_p2!(b, c, d, e, a, s!(74));
        r_p2!(a, b, c, d, e, s!(75));
        r_p2!(e, a, b, c, d, s!(76));
        r_p2!(d, e, a, b, c, s!(77));
        r_p2!(c, d, e, a, b, s!(78));
        r_p2!(b, c, d, e, a, s!(79));
        // The final rounds' schedule writes are dead by construction.
        let _ = w;

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const NAME: &'static str = "sha1";

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = BLOCK_LEN - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().unwrap();
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }

        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    fn finalize(mut self) -> Vec<u8> {
        let bit_len = self.total_len.wrapping_mul(8);

        // Append the 0x80 terminator and zero padding, then the 64-bit length.
        let mut padding = Vec::with_capacity(2 * BLOCK_LEN);
        padding.push(0x80u8);
        let pad_to = {
            let rem = (self.buffer_len + 1) % BLOCK_LEN;
            if rem <= 56 {
                56 - rem
            } else {
                BLOCK_LEN + 56 - rem
            }
        };
        padding.extend(std::iter::repeat(0u8).take(pad_to));
        padding.extend_from_slice(&bit_len.to_be_bytes());

        // Do not double-count padding in total_len; bypass update's counter by
        // feeding through the same code path (the counter is no longer read).
        self.update(&padding);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = Vec::with_capacity(Self::OUTPUT_LEN);
        for word in self.state {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex(&Sha1::digest(input)), *expected, "input {:?}", input);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 56/64-byte boundaries.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let one_shot = Sha1::digest(&data);
            let mut streaming = Sha1::new();
            for b in &data {
                streaming.update(std::slice::from_ref(b));
            }
            assert_eq!(streaming.finalize(), one_shot, "length {}", len);
        }
    }

    proptest! {
        #[test]
        fn prop_streaming_equals_one_shot(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            split in 0usize..2048,
        ) {
            let split = split.min(data.len());
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Sha1::digest(&data));
        }

        #[test]
        fn prop_output_len(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(Sha1::digest(&data).len(), Sha1::OUTPUT_LEN);
        }
    }
}
