//! The traditional on-disk chunk fingerprint index.
//!
//! Every unique chunk stored by a node gets an entry mapping its fingerprint to the
//! container (and offset) holding it.  For a large dataset this index does not fit in
//! RAM — that is exactly the disk-bottleneck problem Σ-Dedupe's similarity index and
//! fingerprint cache are designed to avoid — so lookups against it are charged to the
//! [`DiskModel`](crate::DiskModel) as random reads.  The paper keeps this index only
//! as a fallback for fingerprints that miss in the cache and treats such misses as a
//! "relatively rare occurrence" (Section 3.3); experiments can also disable it to
//! obtain the similarity-index-only approximate deduplication mode of Figure 5(b).
//!
//! Like the [`SimilarityIndex`](crate::SimilarityIndex), the hash table is
//! partitioned into lock *stripes* so that concurrent backup streams contend on
//! 1/`stripe_count` of the index instead of one global lock.  On top of the plain
//! insert/lookup API the index offers an atomic [`claim`](ChunkIndex::claim) /
//! [`finalize`](ChunkIndex::finalize) protocol: a stream that wants to store a new
//! chunk first claims its fingerprint, and exactly one of several racing streams
//! wins the claim.  This is what keeps the unique-chunk set — and therefore the
//! physical bytes a node stores — deterministic under the parallel ingest pipeline.

use crate::{ContainerId, DiskModel};
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a unique chunk is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Container holding the chunk.
    pub container: ContainerId,
    /// Offset of the chunk within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

/// Outcome of [`ChunkIndex::claim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The fingerprint was absent; the caller now owns it and must either
    /// [`finalize`](ChunkIndex::finalize) the entry with the chunk's storage
    /// location or [`abandon`](ChunkIndex::abandon) it on failure.
    Claimed,
    /// The fingerprint is already stored (or claimed by a concurrent stream that
    /// is about to store it): the chunk is a duplicate.
    Duplicate,
}

/// One index entry: either finalized with a location, or claimed by a stream that
/// is still appending the chunk to its open container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Pending,
    Stored(ChunkLocation),
}

/// Statistics of a [`ChunkIndex`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkIndexStats {
    /// Lookup operations (each charged as one simulated random disk read).
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Insert operations.
    pub inserts: u64,
    /// Current number of entries.
    pub entries: u64,
}

/// A striped hash-table chunk index with simulated-disk accounting.
///
/// # Example
///
/// ```
/// use sigma_storage::{ChunkIndex, ChunkLocation, ContainerId};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let index = ChunkIndex::new();
/// let fp = Sha1::fingerprint(b"unique chunk");
/// let loc = ChunkLocation { container: ContainerId::new(1), offset: 0, len: 17 };
/// assert!(index.insert(fp, loc).is_none());
/// assert_eq!(index.lookup(&fp), Some(loc));
/// ```
#[derive(Debug)]
pub struct ChunkIndex {
    stripes: Vec<parking_lot::RwLock<HashMap<Fingerprint, Slot>>>,
    disk: Option<Arc<DiskModel>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
}

/// Default number of lock stripes; enough that eight concurrent streams rarely
/// collide, cheap enough to allocate per node.
const DEFAULT_STRIPES: usize = 256;

impl Default for ChunkIndex {
    fn default() -> Self {
        ChunkIndex::with_stripes(DEFAULT_STRIPES)
    }
}

impl ChunkIndex {
    /// Creates an index without disk accounting and the default stripe count.
    pub fn new() -> Self {
        ChunkIndex::default()
    }

    /// Creates an index with `stripe_count` lock stripes (rounded up to a power of
    /// two), without disk accounting.
    ///
    /// # Panics
    ///
    /// Panics if `stripe_count` is zero.
    pub fn with_stripes(stripe_count: usize) -> Self {
        assert!(stripe_count > 0, "stripe count must be non-zero");
        let stripes = stripe_count.next_power_of_two();
        ChunkIndex {
            stripes: (0..stripes)
                .map(|_| parking_lot::RwLock::new(HashMap::new()))
                .collect(),
            disk: None,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Creates an index whose lookups are charged to `disk` as random reads and whose
    /// inserts are charged as random writes.
    pub fn with_disk(disk: Arc<DiskModel>) -> Self {
        ChunkIndex {
            disk: Some(disk),
            ..ChunkIndex::default()
        }
    }

    /// Number of lock stripes (always a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe_of(&self, fp: &Fingerprint) -> usize {
        (fp.prefix_u64() as usize) & (self.stripes.len() - 1)
    }

    /// Inserts an entry, returning the previous location if the fingerprint was
    /// already present (and finalized).
    pub fn insert(&self, fp: Fingerprint, location: ChunkLocation) -> Option<ChunkLocation> {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_write();
        }
        let stripe = self.stripe_of(&fp);
        match self.stripes[stripe]
            .write()
            .insert(fp, Slot::Stored(location))
        {
            Some(Slot::Stored(prev)) => Some(prev),
            _ => None,
        }
    }

    /// Atomically claims a fingerprint that is about to be stored.
    ///
    /// Exactly one of several streams racing on the same new fingerprint receives
    /// [`ClaimOutcome::Claimed`]; every other one receives
    /// [`ClaimOutcome::Duplicate`].  A successful claim must be completed with
    /// [`finalize`](ChunkIndex::finalize) once the chunk has a storage location, or
    /// rolled back with [`abandon`](ChunkIndex::abandon) if storing fails.
    ///
    /// Charged like a lookup (one random read) plus, when the claim is won, like an
    /// insert (one random write).
    pub fn claim(&self, fp: Fingerprint) -> ClaimOutcome {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_read();
        }
        let stripe = self.stripe_of(&fp);
        let mut map = self.stripes[stripe].write();
        if map.contains_key(&fp) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ClaimOutcome::Duplicate;
        }
        map.insert(fp, Slot::Pending);
        drop(map);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_write();
        }
        ClaimOutcome::Claimed
    }

    /// Records the storage location of a previously claimed fingerprint.
    ///
    /// Not charged to the disk model: the claim already paid for the insert, this
    /// merely fills in the location.
    pub fn finalize(&self, fp: Fingerprint, location: ChunkLocation) {
        let stripe = self.stripe_of(&fp);
        self.stripes[stripe]
            .write()
            .insert(fp, Slot::Stored(location));
    }

    /// Rolls back a claim whose chunk could not be stored, so the fingerprint can
    /// be claimed again later.  Finalized entries are left untouched.
    pub fn abandon(&self, fp: &Fingerprint) {
        let stripe = self.stripe_of(fp);
        let mut map = self.stripes[stripe].write();
        if map.get(fp) == Some(&Slot::Pending) {
            map.remove(fp);
        }
    }

    /// Looks up the location of a chunk fingerprint.
    ///
    /// A fingerprint that is claimed but not yet finalized reads as absent: its
    /// location is not known yet.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ChunkLocation> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_read();
        }
        let stripe = self.stripe_of(fp);
        let found = match self.stripes[stripe].read().get(fp) {
            Some(Slot::Stored(loc)) => Some(*loc),
            _ => None,
        };
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// True if the fingerprint is indexed — claimed or finalized — without charging
    /// a disk access or incrementing the lookup statistics (used by invariant checks
    /// in tests and by the stateful baseline router's in-RAM probe).
    pub fn contains_silent(&self, fp: &Fingerprint) -> bool {
        let stripe = self.stripe_of(fp);
        self.stripes[stripe].read().contains_key(fp)
    }

    /// The finalized location of a fingerprint, without charging a disk access or
    /// touching the lookup statistics.
    ///
    /// The garbage collector's mark phase walks every chunk of every live recipe;
    /// charging each walk as a random disk read (and counting it as a cache-path
    /// lookup) would drown the ingest statistics the experiments report, so the
    /// mark phase reads the index silently — on a real node it would scan the
    /// index sequentially anyway.
    pub fn lookup_silent(&self, fp: &Fingerprint) -> Option<ChunkLocation> {
        let stripe = self.stripe_of(fp);
        match self.stripes[stripe].read().get(fp) {
            Some(Slot::Stored(loc)) => Some(*loc),
            _ => None,
        }
    }

    /// Removes the entry for `fp` **iff** it still points at `container`.
    ///
    /// This is the sweep phase's striped removal primitive: a chunk declared dead
    /// in one container may meanwhile have been re-ingested into a *different*
    /// container (its entry overwritten), in which case the newer entry must
    /// survive the old container's collection.  Returns `true` when an entry was
    /// removed.
    pub fn remove_if_at(&self, fp: &Fingerprint, container: ContainerId) -> bool {
        let stripe = self.stripe_of(fp);
        let mut map = self.stripes[stripe].write();
        match map.get(fp) {
            Some(Slot::Stored(loc)) if loc.container == container => {
                map.remove(fp);
                true
            }
            _ => false,
        }
    }

    /// Re-points the entry for `fp` at `location` **iff** it currently points at
    /// `container` — the compaction primitive: live chunks rewritten into a fresh
    /// container keep exactly one index entry, atomically per stripe.  Returns
    /// `true` when the entry was retargeted.
    pub fn retarget(
        &self,
        fp: &Fingerprint,
        container: ContainerId,
        location: ChunkLocation,
    ) -> bool {
        let stripe = self.stripe_of(fp);
        let mut map = self.stripes[stripe].write();
        match map.get(fp) {
            Some(Slot::Stored(loc)) if loc.container == container => {
                map.insert(*fp, Slot::Stored(location));
                true
            }
            _ => false,
        }
    }

    /// Every finalized entry as `(fingerprint, location)` pairs, sorted by
    /// fingerprint — the chunk-index half of a compaction snapshot.  Pending
    /// claims are skipped: their chunks have no durable location yet.
    pub fn finalized_entries(&self) -> Vec<(Fingerprint, ChunkLocation)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            for (fp, slot) in stripe.read().iter() {
                if let Slot::Stored(loc) = slot {
                    out.push((*fp, *loc));
                }
            }
        }
        out.sort_unstable_by_key(|(fp, _)| *fp);
        out
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated size in bytes (entries × 40 B, the paper's index-entry estimate).
    pub fn estimated_bytes(&self) -> usize {
        self.len() * 40
    }

    /// Snapshot of the index statistics.
    pub fn stats(&self) -> ChunkIndexStats {
        ChunkIndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskParams;
    use sigma_hashkit::{Digest, Sha1};

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    fn loc(c: u64, offset: u32) -> ChunkLocation {
        ChunkLocation {
            container: ContainerId::new(c),
            offset,
            len: 4096,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let idx = ChunkIndex::new();
        assert!(idx.insert(fp(1), loc(1, 0)).is_none());
        assert_eq!(idx.insert(fp(1), loc(2, 0)), Some(loc(1, 0)));
        assert_eq!(idx.lookup(&fp(1)), Some(loc(2, 0)));
        assert_eq!(idx.lookup(&fp(2)), None);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn stats_and_size_estimate() {
        let idx = ChunkIndex::new();
        for i in 0..50u64 {
            idx.insert(fp(i), loc(i, 0));
        }
        for i in 0..100u64 {
            idx.lookup(&fp(i));
        }
        let s = idx.stats();
        assert_eq!(s.inserts, 50);
        assert_eq!(s.lookups, 100);
        assert_eq!(s.hits, 50);
        assert_eq!(s.entries, 50);
        assert_eq!(idx.estimated_bytes(), 50 * 40);
    }

    #[test]
    fn disk_accounting_charges_lookups_and_inserts() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let idx = ChunkIndex::with_disk(disk.clone());
        idx.insert(fp(1), loc(1, 0));
        idx.lookup(&fp(1));
        idx.lookup(&fp(2));
        let d = disk.stats();
        assert_eq!(d.random_writes, 1);
        assert_eq!(d.random_reads, 2);
    }

    #[test]
    fn contains_silent_does_not_touch_stats() {
        let idx = ChunkIndex::new();
        idx.insert(fp(1), loc(1, 0));
        assert!(idx.contains_silent(&fp(1)));
        assert!(!idx.contains_silent(&fp(2)));
        assert_eq!(idx.stats().lookups, 0);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(ChunkIndex::with_stripes(1).stripe_count(), 1);
        assert_eq!(ChunkIndex::with_stripes(3).stripe_count(), 4);
        assert_eq!(ChunkIndex::new().stripe_count(), 256);
    }

    #[test]
    fn entries_spread_across_stripes() {
        let idx = ChunkIndex::with_stripes(8);
        for i in 0..256u64 {
            idx.insert(fp(i), loc(i, 0));
        }
        assert_eq!(idx.len(), 256);
        let populated = idx.stripes.iter().filter(|s| !s.read().is_empty()).count();
        assert!(populated > 1, "striping must spread the keys");
    }

    #[test]
    fn claim_is_won_exactly_once() {
        let idx = ChunkIndex::new();
        assert_eq!(idx.claim(fp(1)), ClaimOutcome::Claimed);
        assert_eq!(idx.claim(fp(1)), ClaimOutcome::Duplicate);
        // A pending claim has no location yet.
        assert_eq!(idx.lookup(&fp(1)), None);
        assert!(idx.contains_silent(&fp(1)));
        idx.finalize(fp(1), loc(3, 0));
        assert_eq!(idx.lookup(&fp(1)), Some(loc(3, 0)));
        assert_eq!(idx.claim(fp(1)), ClaimOutcome::Duplicate);
    }

    #[test]
    fn abandon_rolls_back_only_pending_claims() {
        let idx = ChunkIndex::new();
        idx.claim(fp(1));
        idx.abandon(&fp(1));
        assert!(!idx.contains_silent(&fp(1)));
        // Re-claimable after abandon.
        assert_eq!(idx.claim(fp(1)), ClaimOutcome::Claimed);
        idx.finalize(fp(1), loc(1, 0));
        // Abandon after finalize is a no-op.
        idx.abandon(&fp(1));
        assert_eq!(idx.lookup(&fp(1)), Some(loc(1, 0)));
    }

    #[test]
    fn lookup_silent_reads_without_stats_or_disk() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let idx = ChunkIndex::with_disk(disk.clone());
        idx.insert(fp(1), loc(1, 0));
        assert_eq!(idx.lookup_silent(&fp(1)), Some(loc(1, 0)));
        assert_eq!(idx.lookup_silent(&fp(2)), None);
        // A pending claim has no location.
        idx.claim(fp(3));
        assert_eq!(idx.lookup_silent(&fp(3)), None);
        let s = idx.stats();
        assert_eq!(s.lookups, 1, "only the claim counted");
        assert_eq!(disk.stats().random_reads, 1, "silent lookups are free");
    }

    #[test]
    fn remove_if_at_only_removes_matching_entries() {
        let idx = ChunkIndex::new();
        idx.insert(fp(1), loc(1, 0));
        assert!(
            !idx.remove_if_at(&fp(1), ContainerId::new(2)),
            "wrong container"
        );
        assert!(idx.contains_silent(&fp(1)));
        assert!(idx.remove_if_at(&fp(1), ContainerId::new(1)));
        assert!(!idx.contains_silent(&fp(1)));
        // Absent entries and pending claims are untouched.
        assert!(!idx.remove_if_at(&fp(1), ContainerId::new(1)));
        idx.claim(fp(2));
        assert!(!idx.remove_if_at(&fp(2), ContainerId::new(1)));
        assert!(idx.contains_silent(&fp(2)));
    }

    #[test]
    fn retarget_moves_only_matching_entries() {
        let idx = ChunkIndex::new();
        idx.insert(fp(1), loc(1, 0));
        assert!(idx.retarget(&fp(1), ContainerId::new(1), loc(9, 64)));
        assert_eq!(idx.lookup_silent(&fp(1)), Some(loc(9, 64)));
        // A second retarget against the old container is a no-op.
        assert!(!idx.retarget(&fp(1), ContainerId::new(1), loc(7, 0)));
        assert_eq!(idx.lookup_silent(&fp(1)), Some(loc(9, 64)));
        assert!(
            !idx.retarget(&fp(2), ContainerId::new(1), loc(7, 0)),
            "absent"
        );
    }

    #[test]
    fn concurrent_claims_have_one_winner_per_fingerprint() {
        let idx = Arc::new(ChunkIndex::with_stripes(64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let idx = idx.clone();
            handles.push(std::thread::spawn(move || {
                let mut won = 0u64;
                for i in 0..500u64 {
                    if idx.claim(fp(i)) == ClaimOutcome::Claimed {
                        idx.finalize(fp(i), loc(i, 0));
                        won += 1;
                    }
                }
                won
            }));
        }
        let total_wins: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total_wins, 500, "each fingerprint claimed exactly once");
        assert_eq!(idx.len(), 500);
    }
}
