//! Static chunking (SC): fixed-size chunk boundaries.

use crate::Chunker;

/// Fixed-size (static) chunker.
///
/// The paper's single-node sensitivity study (Figure 5(a)) finds that SC beats CDC in
/// *deduplication efficiency* (bytes saved per second) because its chunking cost is
/// negligible, and the cluster experiments use SC with 4 KB chunks.
///
/// # Example
///
/// ```
/// use sigma_chunking::{Chunker, StaticChunker};
///
/// let chunker = StaticChunker::new(4096);
/// let boundaries = chunker.chunk_boundaries(&vec![0u8; 10_000]);
/// assert_eq!(boundaries, vec![4096, 8192, 10_000]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticChunker {
    chunk_size: usize,
}

impl StaticChunker {
    /// Creates a static chunker with the given chunk size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        StaticChunker { chunk_size }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }
}

impl Default for StaticChunker {
    /// 4 KB chunks — the paper's default for cluster experiments.
    fn default() -> Self {
        StaticChunker::new(4096)
    }
}

impl Chunker for StaticChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let n = data.len().div_ceil(self.chunk_size);
        let mut boundaries = Vec::with_capacity(n);
        let mut end = self.chunk_size;
        while end < data.len() {
            boundaries.push(end);
            end += self.chunk_size;
        }
        boundaries.push(data.len());
        boundaries
    }

    fn first_boundary(&self, data: &[u8]) -> Option<usize> {
        if data.is_empty() {
            None
        } else {
            Some(self.chunk_size.min(data.len()))
        }
    }

    fn average_chunk_size(&self) -> usize {
        self.chunk_size
    }

    fn name(&self) -> String {
        format!("sc-{}", self.chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_boundaries;
    use proptest::prelude::*;

    #[test]
    fn exact_multiple() {
        let c = StaticChunker::new(100);
        assert_eq!(c.chunk_boundaries(&[0u8; 300]), vec![100, 200, 300]);
    }

    #[test]
    fn trailing_partial_chunk() {
        let c = StaticChunker::new(100);
        assert_eq!(c.chunk_boundaries(&[0u8; 250]), vec![100, 200, 250]);
    }

    #[test]
    fn input_smaller_than_chunk() {
        let c = StaticChunker::new(100);
        assert_eq!(c.chunk_boundaries(&[0u8; 10]), vec![10]);
    }

    #[test]
    fn empty_input() {
        let c = StaticChunker::new(100);
        assert!(c.chunk_boundaries(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_chunk_size_panics() {
        StaticChunker::new(0);
    }

    #[test]
    fn default_is_4k() {
        assert_eq!(StaticChunker::default().chunk_size(), 4096);
        assert_eq!(StaticChunker::default().name(), "sc-4096");
    }

    proptest! {
        #[test]
        fn prop_boundaries_valid(len in 0usize..100_000, size in 1usize..8192) {
            let c = StaticChunker::new(size);
            let data = vec![0u8; len];
            let b = c.chunk_boundaries(&data);
            prop_assert!(validate_boundaries(len, &b).is_ok());
        }

        #[test]
        fn prop_all_chunks_at_most_chunk_size(len in 1usize..50_000, size in 1usize..4096) {
            let c = StaticChunker::new(size);
            let data = vec![0u8; len];
            let b = c.chunk_boundaries(&data);
            let mut start = 0;
            for &end in &b {
                prop_assert!(end - start <= size);
                start = end;
            }
        }
    }
}
