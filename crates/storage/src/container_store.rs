//! Parallel container management.
//!
//! The deduplication server keeps one *open* container per incoming data stream so
//! that the chunks of different backup streams do not interleave (which would destroy
//! the locality the fingerprint cache depends on).  When an open container fills up
//! it is sealed, charged to the disk model as a sequential write, and a new one is
//! opened.  Sealed containers can be read back for restores and for fingerprint
//! prefetching.

use crate::{
    Container, ContainerBuilder, ContainerId, ContainerMeta, DiskModel, Result, StorageError,
};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifier of a backup data stream within one node.
pub type StreamId = u64;

/// Default container data-section capacity: 4 MB, as in the Data Domain design the
/// paper builds on.
pub const DEFAULT_CONTAINER_CAPACITY: usize = 4 * 1024 * 1024;

/// Aggregate statistics of a [`ContainerStore`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContainerStoreStats {
    /// Containers sealed and written to (simulated) disk.
    pub sealed_containers: u64,
    /// Containers still open.
    pub open_containers: u64,
    /// Total bytes stored in sealed containers' data sections.
    pub stored_bytes: u64,
    /// Total chunks stored in sealed containers.
    pub stored_chunks: u64,
    /// Container metadata sections read back (fingerprint prefetches).
    pub metadata_reads: u64,
    /// Full container data reads (restores).
    pub data_reads: u64,
}

struct StoreInner {
    next_id: u64,
    open: HashMap<StreamId, ContainerBuilder>,
    sealed: HashMap<ContainerId, Container>,
    stats: ContainerStoreStats,
}

/// A node-local store of open and sealed containers.
///
/// # Example
///
/// ```
/// use sigma_storage::ContainerStore;
/// use sigma_hashkit::{Digest, Sha1};
///
/// let store = ContainerStore::new(1024 * 1024);
/// let payload = b"a unique chunk".to_vec();
/// let fp = Sha1::fingerprint(&payload);
/// let location = store.store_chunk(0, fp, &payload).unwrap();
/// store.flush();
/// assert_eq!(store.read_chunk(&location.container, &fp).unwrap(), payload);
/// ```
pub struct ContainerStore {
    capacity: usize,
    disk: Option<Arc<DiskModel>>,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for ContainerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ContainerStore")
            .field("capacity", &self.capacity)
            .field("open", &inner.open.len())
            .field("sealed", &inner.sealed.len())
            .finish()
    }
}

/// Location information returned when a chunk is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredChunk {
    /// Container the chunk was appended to.
    pub container: ContainerId,
    /// Offset within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

impl ContainerStore {
    /// Creates a store with the given per-container data capacity (bytes).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "container capacity must be non-zero");
        ContainerStore {
            capacity,
            disk: None,
            inner: Mutex::new(StoreInner {
                next_id: 0,
                open: HashMap::new(),
                sealed: HashMap::new(),
                stats: ContainerStoreStats::default(),
            }),
        }
    }

    /// Creates a store with the default 4 MB container capacity.
    pub fn with_default_capacity() -> Self {
        ContainerStore::new(DEFAULT_CONTAINER_CAPACITY)
    }

    /// Attaches a disk model: sealed containers are charged as sequential writes,
    /// metadata and data reads as sequential reads.
    pub fn with_disk(mut self, disk: Arc<DiskModel>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Per-container data capacity in bytes.
    pub fn container_capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a unique chunk to the open container of `stream`, sealing and rolling
    /// over to a fresh container when the current one is full.
    ///
    /// Returns where the chunk was stored.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ChunkTooLarge`] when a single chunk exceeds the
    /// container capacity.
    pub fn store_chunk(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<StoredChunk> {
        self.store_impl(stream, fingerprint, data.len(), Some(data))
    }

    /// Appends a *synthetic* chunk of `len` bytes: only its metadata record and
    /// logical length are tracked, no payload is kept.  Used when a node is driven by
    /// a fingerprint trace instead of real data; such chunks cannot be read back.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ChunkTooLarge`] when a single chunk exceeds the
    /// container capacity.
    pub fn store_chunk_synthetic(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        len: u32,
    ) -> Result<StoredChunk> {
        self.store_impl(stream, fingerprint, len as usize, None)
    }

    fn store_impl(
        &self,
        stream: StreamId,
        fingerprint: Fingerprint,
        len: usize,
        data: Option<&[u8]>,
    ) -> Result<StoredChunk> {
        if len > self.capacity {
            return Err(StorageError::ChunkTooLarge {
                chunk_size: len,
                container_capacity: self.capacity,
            });
        }
        let mut inner = self.inner.lock();

        // Open a container for this stream on first use.
        if !inner.open.contains_key(&stream) {
            let id = ContainerId::new(inner.next_id);
            inner.next_id += 1;
            inner
                .open
                .insert(stream, ContainerBuilder::new(id, self.capacity));
        }

        // Roll over if the chunk does not fit.
        let needs_roll = {
            let open = inner.open.get(&stream).expect("just inserted");
            !open.fits(len)
        };
        if needs_roll {
            let id = ContainerId::new(inner.next_id);
            inner.next_id += 1;
            let fresh = ContainerBuilder::new(id, self.capacity);
            let full = inner
                .open
                .insert(stream, fresh)
                .expect("open container existed");
            Self::seal_into(&mut inner, full, &self.disk);
        }

        let open = inner.open.get_mut(&stream).expect("open container exists");
        let offset = open.used() as u32;
        let appended = match data {
            Some(bytes) => open.try_append(fingerprint, bytes),
            None => open.try_append_synthetic(fingerprint, len as u32),
        };
        debug_assert!(appended, "chunk must fit after rollover");
        let container = open.id();
        Ok(StoredChunk {
            container,
            offset,
            len: len as u32,
        })
    }

    /// The container currently open for `stream`, if any.
    pub fn open_container(&self, stream: StreamId) -> Option<ContainerId> {
        self.inner.lock().open.get(&stream).map(|b| b.id())
    }

    fn seal_into(inner: &mut StoreInner, builder: ContainerBuilder, disk: &Option<Arc<DiskModel>>) {
        let container = builder.seal();
        if let Some(disk) = disk {
            disk.record_sequential_transfer(
                (container.data_size() + container.meta().serialized_size()) as u64,
            );
        }
        inner.stats.sealed_containers += 1;
        inner.stats.stored_bytes += container.data_size() as u64;
        inner.stats.stored_chunks += container.chunk_count() as u64;
        inner.sealed.insert(container.id(), container);
    }

    /// Seals every open container (end of a backup session).
    pub fn flush(&self) {
        let mut inner = self.inner.lock();
        let open: Vec<ContainerBuilder> = inner.open.drain().map(|(_, b)| b).collect();
        for builder in open {
            if builder.chunk_count() > 0 {
                Self::seal_into(&mut inner, builder, &self.disk);
            }
        }
    }

    /// Reads a sealed container's metadata section (fingerprint list).
    ///
    /// Charged to the disk model as a sequential read of the metadata section; this
    /// is the "prefetch" operation behind the chunk fingerprint cache.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the container is not sealed.
    pub fn read_metadata(&self, container: &ContainerId) -> Result<ContainerMeta> {
        let mut inner = self.inner.lock();
        inner.stats.metadata_reads += 1;
        let sealed = inner.sealed.get(container).map(|c| c.meta().clone());
        let meta = match sealed {
            Some(m) => m,
            None => {
                // Still-open containers (written moments ago by some stream) are
                // visible too: their fingerprints are in memory on a real server.
                inner
                    .open
                    .values()
                    .find(|b| b.id() == *container)
                    .map(|b| b.clone().seal().meta().clone())
                    .ok_or(StorageError::ContainerNotFound(*container))?
            }
        };
        if let Some(disk) = &self.disk {
            disk.record_sequential_transfer(meta.serialized_size() as u64);
        }
        Ok(meta)
    }

    /// Reads one chunk's payload from a sealed container (restore path).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::ContainerNotFound`] if the container is unknown, or
    /// [`StorageError::ChunkNotInContainer`] if the fingerprint is not stored there.
    pub fn read_chunk(&self, container: &ContainerId, fp: &Fingerprint) -> Result<Vec<u8>> {
        let mut inner = self.inner.lock();
        inner.stats.data_reads += 1;
        // Check sealed containers first, then containers still open (their contents
        // are in memory on a real server and readable immediately).
        let open_copy;
        let c = match inner.sealed.get(container) {
            Some(c) => c,
            None => {
                open_copy = inner
                    .open
                    .values()
                    .find(|b| b.id() == *container)
                    .map(|b| b.clone().seal());
                open_copy
                    .as_ref()
                    .ok_or(StorageError::ContainerNotFound(*container))?
            }
        };
        let data = c
            .chunk_data(fp)
            .ok_or_else(|| StorageError::ChunkNotInContainer {
                container: *container,
                fingerprint: fp.to_string(),
            })?
            .to_vec();
        if let Some(disk) = &self.disk {
            disk.record_sequential_transfer(data.len() as u64);
        }
        Ok(data)
    }

    /// Total physical bytes stored (sealed + open containers' data sections).
    pub fn physical_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        let open: u64 = inner.open.values().map(|b| b.used() as u64).sum();
        inner.stats.stored_bytes + open
    }

    /// Number of sealed containers.
    pub fn sealed_count(&self) -> usize {
        self.inner.lock().sealed.len()
    }

    /// Snapshot of the store statistics.
    pub fn stats(&self) -> ContainerStoreStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.open_containers = inner.open.len() as u64;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskParams;
    use sigma_hashkit::{Digest, Sha1};

    fn payload(i: u64, len: usize) -> (Fingerprint, Vec<u8>) {
        let data: Vec<u8> = (0..len).map(|j| ((i as usize + j) % 251) as u8).collect();
        (Sha1::fingerprint(&data), data)
    }

    #[test]
    fn store_and_read_back() {
        let store = ContainerStore::new(1024);
        let (fp, data) = payload(1, 100);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        store.flush();
        assert_eq!(store.read_chunk(&loc.container, &fp).unwrap(), data);
        assert_eq!(store.physical_bytes(), 100);
    }

    #[test]
    fn rollover_when_container_fills() {
        let store = ContainerStore::new(250);
        let mut containers = std::collections::HashSet::new();
        for i in 0..10u64 {
            let (fp, data) = payload(i, 100);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            containers.insert(loc.container);
        }
        // 100-byte chunks, 250-byte containers => 2 chunks per container => 5 containers.
        assert_eq!(containers.len(), 5);
        assert_eq!(store.stats().sealed_containers, 4, "last one still open");
        store.flush();
        assert_eq!(store.stats().sealed_containers, 5);
        assert_eq!(store.stats().stored_chunks, 10);
    }

    #[test]
    fn per_stream_containers_do_not_interleave() {
        let store = ContainerStore::new(1024);
        let (fp_a, data_a) = payload(1, 64);
        let (fp_b, data_b) = payload(2, 64);
        let loc_a = store.store_chunk(1, fp_a, &data_a).unwrap();
        let loc_b = store.store_chunk(2, fp_b, &data_b).unwrap();
        assert_ne!(loc_a.container, loc_b.container);
        assert_eq!(store.stats().open_containers, 2);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let store = ContainerStore::new(100);
        let (fp, data) = payload(1, 200);
        assert_eq!(
            store.store_chunk(0, fp, &data),
            Err(StorageError::ChunkTooLarge {
                chunk_size: 200,
                container_capacity: 100
            })
        );
    }

    #[test]
    fn metadata_read_returns_fingerprints_in_write_order() {
        let store = ContainerStore::new(10_000);
        let mut expect = Vec::new();
        let mut container = None;
        for i in 0..5u64 {
            let (fp, data) = payload(i, 50);
            let loc = store.store_chunk(0, fp, &data).unwrap();
            container = Some(loc.container);
            expect.push(fp);
        }
        store.flush();
        let meta = store.read_metadata(&container.unwrap()).unwrap();
        let got: Vec<Fingerprint> = meta.fingerprints().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn missing_container_and_chunk_errors() {
        let store = ContainerStore::new(1024);
        let missing = ContainerId::new(99);
        assert!(matches!(
            store.read_metadata(&missing),
            Err(StorageError::ContainerNotFound(_))
        ));
        let (fp, data) = payload(1, 10);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        store.flush();
        let (other_fp, _) = payload(2, 10);
        assert!(matches!(
            store.read_chunk(&loc.container, &other_fp),
            Err(StorageError::ChunkNotInContainer { .. })
        ));
    }

    #[test]
    fn disk_accounting_records_sequential_io() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let store = ContainerStore::new(200).with_disk(disk.clone());
        for i in 0..4u64 {
            let (fp, data) = payload(i, 100);
            store.store_chunk(0, fp, &data).unwrap();
        }
        store.flush();
        let d = disk.stats();
        assert!(d.sequential_ops >= 2, "sealed containers must be written");
        assert!(d.sequential_bytes >= 400);
    }

    #[test]
    fn flush_skips_empty_containers() {
        let store = ContainerStore::new(1024);
        store.flush();
        assert_eq!(store.stats().sealed_containers, 0);
    }

    #[test]
    fn synthetic_chunks_account_bytes_without_payload() {
        let store = ContainerStore::new(1000);
        let mut containers = std::collections::HashSet::new();
        for i in 0..6u64 {
            let (fp, _) = payload(i, 1);
            let loc = store.store_chunk_synthetic(0, fp, 400).unwrap();
            containers.insert(loc.container);
        }
        // 400-byte logical chunks in 1000-byte containers => 2 per container.
        assert_eq!(containers.len(), 3);
        store.flush();
        assert_eq!(store.physical_bytes(), 2400);
        assert_eq!(store.stats().stored_chunks, 6);
        // Synthetic chunks cannot be read back.
        let (fp0, _) = payload(0, 1);
        let cid = *containers.iter().min().unwrap();
        assert!(
            store.read_chunk(&cid, &fp0).is_err()
                || store.read_chunk(&cid, &fp0).unwrap().is_empty()
        );
    }

    #[test]
    fn metadata_of_open_container_is_visible() {
        let store = ContainerStore::new(1_000_000);
        let (fp, data) = payload(1, 100);
        let loc = store.store_chunk(0, fp, &data).unwrap();
        // Not flushed: the container is still open, but its metadata must be readable.
        let meta = store.read_metadata(&loc.container).unwrap();
        assert_eq!(meta.fingerprints().collect::<Vec<_>>(), vec![fp]);
        assert_eq!(store.open_container(0), Some(loc.container));
        assert_eq!(store.open_container(7), None);
    }
}
