//! Table 1: comparison of representative cluster-deduplication schemes.
//!
//! The paper's Table 1 is a qualitative summary (routing granularity, deduplication
//! ratio, throughput, data skew, overhead).  Here the qualitative grades are
//! *derived from measurements*: each scheme is run on the Linux workload at a fixed
//! cluster size and its normalized EDR, storage skew and lookup-message overhead are
//! mapped to the High/Medium/Low vocabulary of the original table.

use crate::runner::{run_cluster, SimulationConfig};
use serde::{Deserialize, Serialize};
use sigma_baselines::{ChunkDhtRouter, ExtremeBinningRouter, StatefulRouter, StatelessRouter};
use sigma_core::{DataRouter, SigmaConfig, SimilarityRouter};
use sigma_metrics::report::TextTable;
use sigma_workloads::{presets, Scale};

/// One scheme row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Scheme name.
    pub scheme: String,
    /// Routing granularity (chunk / file / super-chunk).
    pub granularity: String,
    /// Measured cluster deduplication ratio normalized to single-node exact
    /// deduplication (the Table 1 "Deduplication Ratio" column, before any load
    /// penalty).
    pub normalized_dr: f64,
    /// Measured normalized effective deduplication ratio (capacity saving folded
    /// with load balance).
    pub nedr: f64,
    /// Derived deduplication-ratio grade (High / Medium / Low).
    pub dedup_grade: String,
    /// Measured lookup messages relative to stateless routing.
    pub overhead_vs_stateless: f64,
    /// Derived overhead grade.
    pub overhead_grade: String,
    /// Measured storage-usage skew (σ/α).
    pub skew: f64,
    /// Derived data-skew grade.
    pub skew_grade: String,
    /// Derived throughput grade (broadcast-style routing throttles ingest).
    pub throughput_grade: String,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Params {
    /// Workload scale.
    pub scale: Scale,
    /// Cluster size at which the schemes are compared.
    pub cluster_size: usize,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            scale: Scale::Small,
            cluster_size: 32,
        }
    }
}

/// The schemes of Table 1: `(name, router factory, routing granularity)`.
fn schemes() -> Vec<(&'static str, Box<dyn DataRouter>, &'static str)> {
    vec![
        (
            "chunk-dht (HYDRAstor)",
            Box::new(ChunkDhtRouter::new()),
            "chunk",
        ),
        (
            "extreme-binning",
            Box::new(ExtremeBinningRouter::new()),
            "file",
        ),
        (
            "stateless (EMC)",
            Box::new(StatelessRouter::new()),
            "super-chunk",
        ),
        (
            "stateful (EMC)",
            Box::new(StatefulRouter::new()),
            "super-chunk",
        ),
        (
            "sigma-dedupe",
            Box::new(SimilarityRouter::new(true)),
            "super-chunk",
        ),
    ]
}

/// Grades a "bigger is better" quantity (e.g. normalized DR).
fn grade_high_good(value: f64, high: f64, medium: f64) -> String {
    if value >= high {
        "High"
    } else if value >= medium {
        "Medium"
    } else {
        "Low"
    }
    .to_string()
}

/// Grades a "smaller is better" quantity (overhead, skew) with the paper's labels:
/// a small value is reported as *Low* overhead / *Low* skew.
fn grade_low_good(value: f64, low: f64, medium: f64) -> String {
    if value <= low {
        "Low"
    } else if value <= medium {
        "Medium"
    } else {
        "High"
    }
    .to_string()
}

/// Runs the comparison.
pub fn run(params: Table1Params) -> Vec<Table1Row> {
    let dataset = presets::linux_dataset(params.scale);
    let config = SimulationConfig {
        node_count: params.cluster_size,
        sigma: SigmaConfig::default(),
        client_streams: 4,
    };
    let stateless_baseline = run_cluster(&dataset, Box::new(StatelessRouter::new()), &config);
    let baseline_messages = stateless_baseline.total_lookups().max(1);

    schemes()
        .into_iter()
        .map(|(name, router, granularity)| {
            let summary = run_cluster(&dataset, router, &config);
            let overhead = summary.total_lookups() as f64 / baseline_messages as f64;
            let nedr = summary.nedr();
            let normalized_dr = summary.normalized_dr();
            Table1Row {
                scheme: name.to_string(),
                granularity: granularity.to_string(),
                normalized_dr,
                nedr,
                dedup_grade: grade_high_good(normalized_dr, 0.8, 0.5),
                overhead_vs_stateless: overhead,
                overhead_grade: grade_low_good(overhead, 1.5, 4.0),
                skew: summary.skew,
                skew_grade: grade_low_good(summary.skew, 0.25, 0.75),
                // Broadcast routing (message overhead growing with the cluster)
                // throttles ingest throughput; constant-overhead schemes scale.
                throughput_grade: if overhead > 4.0 {
                    "Low".to_string()
                } else {
                    "High".to_string()
                },
            }
        })
        .collect()
}

/// Renders Table 1.
pub fn render(rows: &[Table1Row]) -> String {
    let mut table = TextTable::new(vec![
        "scheme",
        "granularity",
        "dedup ratio",
        "throughput",
        "data skew",
        "overhead",
        "normalized DR",
        "NEDR",
        "lookups vs stateless",
    ]);
    for row in rows {
        table.add_row(vec![
            row.scheme.clone(),
            row.granularity.clone(),
            row.dedup_grade.clone(),
            row.throughput_grade.clone(),
            row.skew_grade.clone(),
            row.overhead_grade.clone(),
            format!("{:.3}", row.normalized_dr),
            format!("{:.3}", row.nedr),
            format!("{:.2}x", row.overhead_vs_stateless),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Table1Params {
        Table1Params {
            scale: Scale::Tiny,
            cluster_size: 8,
        }
    }

    #[test]
    fn sigma_graded_high_dedup_low_overhead() {
        let rows = run(tiny_params());
        let sigma = rows.iter().find(|r| r.scheme == "sigma-dedupe").unwrap();
        assert_eq!(sigma.dedup_grade, "High", "{:#?}", sigma);
        assert!(sigma.overhead_vs_stateless < 2.0);
        assert_eq!(sigma.throughput_grade, "High");
    }

    #[test]
    fn stateful_pays_in_overhead() {
        let rows = run(tiny_params());
        let stateful = rows.iter().find(|r| r.scheme == "stateful (EMC)").unwrap();
        let sigma = rows.iter().find(|r| r.scheme == "sigma-dedupe").unwrap();
        assert!(stateful.overhead_vs_stateless > sigma.overhead_vs_stateless);
        assert!(
            stateful.normalized_dr > 0.8,
            "stateful should deduplicate well, got {:#?}",
            stateful
        );
    }

    #[test]
    fn all_five_schemes_present() {
        let rows = run(tiny_params());
        assert_eq!(rows.len(), 5);
        let text = render(&rows);
        assert!(text.contains("sigma-dedupe"));
        assert!(text.contains("HYDRAstor"));
    }
}
