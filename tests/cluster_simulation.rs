//! Integration tests of the trace-driven simulation across crates: workloads →
//! routers → cluster → metrics, checking the paper's headline shapes end to end.

use sigma_dedupe::prelude::experiments::{fig7, fig8};
use sigma_dedupe::prelude::*;

fn config(nodes: usize) -> SimulationConfig {
    SimulationConfig {
        node_count: nodes,
        sigma: SigmaConfig::default(),
        client_streams: 4,
    }
}

#[test]
fn figure8_shape_on_all_four_workloads() {
    // Σ-Dedupe must retain most of Stateful's NEDR and stay at or above Stateless on
    // every workload (the Figure 8 story), even at test scale.
    // Scaled-down data needs scaled-down super-chunks so every node still receives a
    // meaningful number of routing units (see Fig8Params::super_chunk_size).
    let params = fig8::Fig8Params {
        scale: Scale::Small,
        cluster_sizes: vec![8, 32],
        super_chunk_size: 256 << 10,
        include_balance_ablation: false,
    };
    let rows = fig8::run(&params);
    assert!(fig8::capacity_shape_holds(&rows, 0.75), "{:#?}", rows);
    // All four datasets are present.
    let datasets: std::collections::HashSet<_> = rows.iter().map(|r| r.dataset.clone()).collect();
    assert_eq!(datasets.len(), 4);
}

#[test]
fn figure7_shape_on_linux_and_vm() {
    let params = fig7::Fig7Params {
        scale: Scale::Tiny,
        cluster_sizes: vec![2, 8, 32],
        super_chunk_size: 1 << 20,
    };
    let rows = fig7::run(&params);
    assert!(fig7::overhead_shape_holds(&rows, 1.8), "{:#?}", rows);
    // Stateful at 32 nodes sends far more lookups than Σ-Dedupe.
    for dataset in ["Linux", "VM"] {
        let of = |scheme: &str| {
            rows.iter()
                .find(|r| r.dataset == dataset && r.scheme == scheme && r.cluster_size == 32)
                .unwrap()
                .lookup_messages
        };
        assert!(of("stateful") > 3 * of("sigma"));
    }
}

#[test]
fn capacity_balancing_reduces_skew_against_no_balancing() {
    let dataset = presets::web_dataset(Scale::Tiny);
    let balanced = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &config(16));
    let unbalanced = run_cluster(
        &dataset,
        Box::new(SimilarityRouter::new(false)),
        &config(16),
    );
    assert!(
        balanced.skew <= unbalanced.skew + 0.05,
        "balanced skew {} vs unbalanced {}",
        balanced.skew,
        unbalanced.skew
    );
}

#[test]
fn round_robin_balances_but_does_not_deduplicate_across_nodes() {
    let dataset = presets::linux_dataset(Scale::Tiny);
    let round_robin = run_cluster(&dataset, Box::new(RoundRobinRouter::new()), &config(16));
    let sigma = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &config(16));
    assert!(
        round_robin.skew < 0.3,
        "round-robin skew {}",
        round_robin.skew
    );
    assert!(
        sigma.dedup_ratio > 1.3 * round_robin.dedup_ratio,
        "sigma {} vs round-robin {}",
        sigma.dedup_ratio,
        round_robin.dedup_ratio
    );
}

#[test]
fn stateless_and_stateful_bracket_sigma_dedupe() {
    // The design goal: effectiveness close to Stateful, overhead close to Stateless.
    let dataset = presets::mail_dataset(Scale::Tiny);
    let cfg = config(32);
    let sigma = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &cfg);
    let stateless = run_cluster(&dataset, Box::new(StatelessRouter::new()), &cfg);
    let stateful = run_cluster(&dataset, Box::new(StatefulRouter::new()), &cfg);

    assert!(sigma.nedr() >= stateless.nedr() * 0.95);
    assert!(sigma.nedr() >= 0.75 * stateful.nedr());
    assert!(sigma.total_lookups() < stateful.total_lookups());
    assert!((sigma.total_lookups() as f64) < 1.4 * stateless.total_lookups() as f64);
}

#[test]
fn single_node_cluster_equals_exact_dedup_for_every_workload() {
    for dataset in presets::paper_datasets(Scale::Tiny) {
        let summary = run_cluster(&dataset, Box::new(SimilarityRouter::new(true)), &config(1));
        let exact = dataset.exact_dedup_ratio();
        assert!(
            (summary.dedup_ratio - exact).abs() / exact < 0.01,
            "{}: cluster {} vs exact {}",
            dataset.name,
            summary.dedup_ratio,
            exact
        );
    }
}
