//! The backup client: data partitioning, chunk fingerprinting and routing.
//!
//! The client side of Σ-Dedupe (Figure 2) chunks each file or stream, fingerprints
//! every chunk, groups consecutive chunks into super-chunks and hands each
//! super-chunk to the cluster, which routes it to a deduplication node.  Because the
//! duplicate-or-unique decision is made *before* data transfer (source
//! deduplication), the number of bytes a client actually ships equals the unique
//! bytes reported back — the quantity surfaced as
//! [`FileBackupReport::transferred_bytes`].

use crate::{
    ChunkDescriptor, DedupCluster, FileId, RecipeEntry, Result, SuperChunk, SuperChunkBuilder,
};
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::sync::Arc;

/// Summary of one file (or stream) backup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileBackupReport {
    /// The file ID assigned by the director (use it to restore).
    pub file_id: FileId,
    /// Logical size of the file in bytes.
    pub logical_bytes: u64,
    /// Bytes that actually had to be transferred (unique chunks).
    pub transferred_bytes: u64,
    /// Number of chunks the file was partitioned into.
    pub chunks: u64,
    /// Number of super-chunks routed.
    pub super_chunks: u64,
    /// Chunks found to be duplicates somewhere in the cluster.
    pub duplicate_chunks: u64,
}

impl FileBackupReport {
    /// Fraction of the file that did not need to be transferred (0 when empty).
    pub fn bandwidth_saving(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.transferred_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// A source-deduplicating backup client bound to one cluster.
///
/// # Example
///
/// ```
/// use sigma_core::{BackupClient, DedupCluster, SigmaConfig};
/// use std::sync::Arc;
///
/// let cluster = Arc::new(DedupCluster::with_similarity_router(2, SigmaConfig::default()));
/// let client = BackupClient::new(cluster.clone(), 7);
/// let report = client.backup_bytes("notes.txt", b"small file").unwrap();
/// assert_eq!(report.logical_bytes, 10);
/// assert_eq!(cluster.restore_file(report.file_id).unwrap(), b"small file");
/// ```
pub struct BackupClient {
    cluster: Arc<DedupCluster>,
    stream_id: u64,
    session_id: u64,
}

impl std::fmt::Debug for BackupClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackupClient")
            .field("stream_id", &self.stream_id)
            .field("session_id", &self.session_id)
            .finish()
    }
}

impl BackupClient {
    /// Creates a client using `stream_id` as its data-stream identifier and opens a
    /// backup session for it (in generation 0).
    pub fn new(cluster: Arc<DedupCluster>, stream_id: u64) -> Self {
        BackupClient::with_generation(cluster, stream_id, 0)
    }

    /// Creates a client whose backup session is tagged with a backup generation.
    ///
    /// Generations are the retention unit: a nightly backup wave creates its
    /// clients in the next generation, and
    /// [`DedupCluster::delete_generation`](crate::DedupCluster::delete_generation)
    /// expires a whole wave at once — the chunks only that generation referenced
    /// are reclaimed by the next
    /// [`DedupCluster::collect_garbage`](crate::DedupCluster::collect_garbage).
    pub fn with_generation(cluster: Arc<DedupCluster>, stream_id: u64, generation: u64) -> Self {
        let session_id = cluster
            .director()
            .open_session_in_generation(&format!("client-{}", stream_id), generation);
        BackupClient {
            cluster,
            stream_id,
            session_id,
        }
    }

    /// Creates a client whose backup session is additionally tagged with the
    /// tenant that owns the stream.
    ///
    /// The tag drives per-tenant logical accounting
    /// ([`Director::logical_bytes_by_tenant`](crate::Director::logical_bytes_by_tenant)):
    /// each tenant's recipe bytes are attributed to it even though the chunks
    /// behind them deduplicate — and are physically shared — across tenants.
    pub fn with_tenant(
        cluster: Arc<DedupCluster>,
        stream_id: u64,
        generation: u64,
        tenant: &str,
    ) -> Self {
        let session_id = cluster.director().open_tenant_session(
            &format!("client-{}", stream_id),
            generation,
            tenant,
        );
        BackupClient {
            cluster,
            stream_id,
            session_id,
        }
    }

    /// The client's data-stream identifier.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    /// The backup session this client registers files under.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Backs up an in-memory byte buffer as one file.
    ///
    /// # Errors
    ///
    /// Propagates routing/storage errors from the cluster.
    pub fn backup_bytes(&self, name: &str, data: &[u8]) -> Result<FileBackupReport> {
        self.backup_reader(name, data)
    }

    /// Backs up anything readable as one file.
    ///
    /// The reader is consumed through the configured chunker; chunks are
    /// fingerprinted, grouped into super-chunks and routed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors as storage errors and routing errors from the cluster.
    pub fn backup_reader<R: Read>(&self, name: &str, mut reader: R) -> Result<FileBackupReport> {
        let config = self.cluster.config().clone();
        let chunker = config.chunker.build();
        let algorithm = config.fingerprint_algorithm;

        // Read the stream fully, then chunk it.  (The paper's prototype similarly
        // stages data in a RAM file system before deduplication.)
        let mut data = Vec::new();
        reader
            .read_to_end(&mut data)
            .map_err(|e| crate::SigmaError::InvalidConfig(format!("read failed: {}", e)))?;

        let file_marker = self.cluster.director().file_count() as u64;
        let mut builder = SuperChunkBuilder::new(config.super_chunk_size);
        let mut recipe: Vec<RecipeEntry> = Vec::new();
        let mut report = FileBackupReport {
            file_id: 0,
            logical_bytes: data.len() as u64,
            transferred_bytes: 0,
            chunks: 0,
            super_chunks: 0,
            duplicate_chunks: 0,
        };

        let mut pending: Vec<SuperChunk> = Vec::new();
        for chunk in chunker.split(&data) {
            report.chunks += 1;
            let descriptor =
                ChunkDescriptor::new(algorithm.fingerprint(chunk.data()), chunk.len() as u32);
            if let Some(sc) = builder.push_chunk(descriptor, chunk.into_data()) {
                pending.push(sc);
            }
        }
        if let Some(sc) = builder.finish() {
            pending.push(sc);
        }

        for sc in pending {
            let (receipt, node) = self.cluster.backup_super_chunk_with_target(
                self.stream_id,
                &sc,
                Some(file_marker),
            )?;
            report.super_chunks += 1;
            report.transferred_bytes += receipt.unique_bytes;
            report.duplicate_chunks += receipt.duplicate_chunks;
            for d in sc.descriptors() {
                recipe.push(RecipeEntry {
                    fingerprint: d.fingerprint,
                    len: d.len,
                    node,
                });
            }
        }

        report.file_id =
            self.cluster
                .director()
                .register_file(self.session_id, name, data.len() as u64, recipe);
        Ok(report)
    }

    /// Restores a previously backed-up file through the cluster.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::SigmaError::FileNotFound`] and chunk read errors.
    pub fn restore(&self, file_id: FileId) -> Result<Vec<u8>> {
        self.cluster.restore_file(file_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SigmaConfig, SigmaError};

    fn small_cluster() -> Arc<DedupCluster> {
        let config = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .chunker(sigma_chunking::ChunkerParams::fixed(4096))
            .build()
            .unwrap();
        Arc::new(DedupCluster::with_similarity_router(4, config))
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn backup_and_restore_round_trip() {
        let cluster = small_cluster();
        let client = BackupClient::new(cluster.clone(), 0);
        let data = pseudo_random(300_000, 1);
        let report = client.backup_bytes("blob.bin", &data).unwrap();
        assert_eq!(report.logical_bytes, data.len() as u64);
        assert_eq!(report.transferred_bytes, data.len() as u64, "all unique");
        assert!(report.chunks >= 73);
        assert!(report.super_chunks >= 4);
        cluster.flush();
        assert_eq!(client.restore(report.file_id).unwrap(), data);
    }

    #[test]
    fn second_generation_backup_transfers_almost_nothing() {
        let cluster = small_cluster();
        let client = BackupClient::new(cluster.clone(), 0);
        let data = pseudo_random(400_000, 2);
        let first = client.backup_bytes("gen-1", &data).unwrap();
        let second = client.backup_bytes("gen-2", &data).unwrap();
        assert_eq!(first.transferred_bytes, data.len() as u64);
        assert_eq!(second.transferred_bytes, 0);
        assert!(second.bandwidth_saving() > 0.99);
        assert_eq!(second.duplicate_chunks, second.chunks);
        // Both files restore correctly even though the second stored nothing new.
        cluster.flush();
        assert_eq!(client.restore(first.file_id).unwrap(), data);
        assert_eq!(client.restore(second.file_id).unwrap(), data);
    }

    #[test]
    fn empty_file_backup() {
        let cluster = small_cluster();
        let client = BackupClient::new(cluster.clone(), 0);
        let report = client.backup_bytes("empty", b"").unwrap();
        assert_eq!(report.logical_bytes, 0);
        assert_eq!(report.chunks, 0);
        assert_eq!(report.bandwidth_saving(), 0.0);
        assert_eq!(client.restore(report.file_id).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multiple_clients_share_the_cluster() {
        let cluster = small_cluster();
        let data = pseudo_random(200_000, 3);
        let a = BackupClient::new(cluster.clone(), 1);
        let b = BackupClient::new(cluster.clone(), 2);
        let ra = a.backup_bytes("from-a", &data).unwrap();
        let rb = b.backup_bytes("from-b", &data).unwrap();
        assert_eq!(ra.transferred_bytes, data.len() as u64);
        assert_eq!(rb.transferred_bytes, 0, "client B's data is already stored");
        assert_ne!(a.session_id(), b.session_id());
        assert_eq!(cluster.director().session_count(), 2);
    }

    #[test]
    fn restore_of_missing_file_is_an_error() {
        let cluster = small_cluster();
        let client = BackupClient::new(cluster, 0);
        assert!(matches!(
            client.restore(999),
            Err(SigmaError::FileNotFound(999))
        ));
    }
}
