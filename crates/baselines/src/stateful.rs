//! EMC's stateful super-chunk routing (broadcast match-count routing).

use sigma_core::{DataRouter, RoutingContext, RoutingDecision};
use sigma_hashkit::Fingerprint;

/// Default sampling rate denominator: one in eight chunk fingerprints is sent to
/// every node for match counting, following the sampled variant described for
/// large-scale stateful routing.
pub const DEFAULT_SAMPLE_DENOMINATOR: usize = 8;

/// Stateful super-chunk routing: every node is asked how many of the super-chunk's
/// (sampled) chunk fingerprints it already stores; the super-chunk goes to the node
/// with the best match, discounted by relative storage usage for load balance.
///
/// This is the high-effectiveness, high-overhead end of the design space: the
/// broadcast makes the fingerprint-lookup message count grow linearly with the
/// cluster size (the rising line of Figure 7), which is exactly what Σ-Dedupe's
/// candidate-set routing avoids.
///
/// # Example
///
/// ```
/// use sigma_baselines::StatefulRouter;
/// use sigma_core::DataRouter;
///
/// let router = StatefulRouter::with_sample_denominator(4);
/// assert_eq!(router.name(), "stateful");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StatefulRouter {
    sample_denominator: usize,
    capacity_balancing: bool,
}

impl Default for StatefulRouter {
    fn default() -> Self {
        StatefulRouter {
            sample_denominator: DEFAULT_SAMPLE_DENOMINATOR,
            capacity_balancing: true,
        }
    }
}

impl StatefulRouter {
    /// Creates the router with the default 1-in-8 sampling.
    pub fn new() -> Self {
        StatefulRouter::default()
    }

    /// Creates the router with a custom sampling rate denominator (1 samples every
    /// chunk fingerprint).
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn with_sample_denominator(denominator: usize) -> Self {
        assert!(denominator > 0, "sample denominator must be non-zero");
        StatefulRouter {
            sample_denominator: denominator,
            ..StatefulRouter::default()
        }
    }

    /// The sampling rate denominator.
    pub fn sample_denominator(&self) -> usize {
        self.sample_denominator
    }

    /// Deterministically samples the chunk fingerprints that are broadcast.
    fn sample(&self, fingerprints: impl Iterator<Item = Fingerprint>) -> Vec<Fingerprint> {
        let denom = self.sample_denominator as u64;
        fingerprints
            .filter(|fp| fp.prefix_u64() % denom == 0)
            .collect()
    }
}

impl DataRouter for StatefulRouter {
    fn name(&self) -> String {
        "stateful".to_string()
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");

        let mut sample = self.sample(ctx.super_chunk.fingerprints());
        if sample.is_empty() {
            // Always broadcast at least one representative fingerprint so the scheme
            // keeps its defining "ask everyone" behaviour on tiny super-chunks.
            if let Some(fp) = ctx.handprint.min_fingerprint() {
                sample.push(fp);
            }
        }
        if sample.is_empty() {
            return RoutingDecision::stateless(0);
        }

        let matches: Vec<usize> = ctx
            .nodes
            .iter()
            .map(|n| n.count_stored_fingerprints(&sample))
            .collect();
        let usages: Vec<f64> = ctx.nodes.iter().map(|n| n.storage_usage() as f64).collect();
        let avg_usage = usages.iter().sum::<f64>() / usages.len() as f64;

        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, (&m, &usage)) in matches.iter().zip(&usages).enumerate() {
            let score = if self.capacity_balancing && avg_usage > 0.0 {
                let w = (usage / avg_usage).max(f64::MIN_POSITIVE);
                m as f64 / w
            } else {
                m as f64
            };
            if score > best_score || (score == best_score && usage < usages[best]) {
                best = i;
                best_score = score;
            }
        }

        RoutingDecision {
            target: best,
            // Every node receives the sampled fingerprint list.
            prerouting_lookup_messages: (node_count * sample.len()) as u64,
            nodes_contacted: node_count as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_core::{ChunkDescriptor, DedupNode, SigmaConfig, SuperChunk};
    use sigma_hashkit::{Digest, Sha1};
    use std::sync::Arc;

    fn nodes(n: usize) -> Vec<Arc<DedupNode>> {
        let c = SigmaConfig::default();
        (0..n).map(|i| Arc::new(DedupNode::new(i, &c))).collect()
    }

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    fn ctx<'a>(
        sc: &'a SuperChunk,
        hp: &'a sigma_core::Handprint,
        nodes: &'a [Arc<DedupNode>],
    ) -> RoutingContext<'a> {
        RoutingContext {
            super_chunk: sc,
            handprint: hp,
            file_id: None,
            nodes,
        }
    }

    #[test]
    fn message_count_grows_with_cluster_size() {
        let router = StatefulRouter::new();
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let mut previous = 0u64;
        for n in [2usize, 8, 32, 128] {
            let nodes = nodes(n);
            let d = router.route(&ctx(&sc, &hp, &nodes));
            assert!(d.prerouting_lookup_messages > previous);
            assert_eq!(d.nodes_contacted, n as u64);
            previous = d.prerouting_lookup_messages;
        }
    }

    #[test]
    fn routes_duplicates_back_to_the_node_that_stores_them() {
        let nodes = nodes(8);
        let router = StatefulRouter::new();
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        // Pre-store the super-chunk on node 5.
        nodes[5].process_super_chunk(0, &sc, &hp).unwrap();
        let d = router.route(&ctx(&sc, &hp, &nodes));
        assert_eq!(d.target, 5);
    }

    #[test]
    fn new_data_spreads_for_balance() {
        let nodes = nodes(4);
        let router = StatefulRouter::new();
        // Load node 0 heavily.
        let filler = super_chunk(50_000..50_256);
        nodes[0]
            .process_super_chunk(0, &filler, &filler.handprint(8))
            .unwrap();
        // Brand-new data has zero matches everywhere: the least-loaded node wins.
        let sc = super_chunk(90_000..90_064);
        let d = router.route(&ctx(&sc, &sc.handprint(8), &nodes));
        assert_ne!(d.target, 0);
    }

    #[test]
    fn sampling_reduces_lookup_volume() {
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let nodes = nodes(4);
        let dense = StatefulRouter::with_sample_denominator(1).route(&ctx(&sc, &hp, &nodes));
        let sparse = StatefulRouter::with_sample_denominator(16).route(&ctx(&sc, &hp, &nodes));
        assert!(sparse.prerouting_lookup_messages < dense.prerouting_lookup_messages);
        assert_eq!(dense.prerouting_lookup_messages, 4 * 256);
    }

    #[test]
    #[should_panic(expected = "sample denominator must be non-zero")]
    fn zero_denominator_panics() {
        StatefulRouter::with_sample_denominator(0);
    }

    #[test]
    fn empty_super_chunk_routes_to_node_zero() {
        let nodes = nodes(4);
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let hp = sc.handprint(8);
        let d = StatefulRouter::new().route(&ctx(&sc, &hp, &nodes));
        assert_eq!(d.target, 0);
        assert_eq!(d.prerouting_lookup_messages, 0);
    }
}
