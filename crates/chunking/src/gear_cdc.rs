//! Gear-hash content-defined chunking.
//!
//! The gear rolling hash (`h = (h << 1) + GEAR[b]`) is substantially cheaper per
//! byte than the table-driven Rabin fingerprint: no window buffer, no remove
//! table, one shift and one add per byte.  Pairing it with the same
//! min/avg/max cut policy as [`CdcChunker`](crate::CdcChunker) gives a chunker
//! with CDC's resynchronisation property at a fraction of the scan cost — the
//! FastCDC observation, applied to the paper's Figure 4(a) throughput study.

use crate::Chunker;
use sigma_hashkit::GearHasher;

/// Derives the gear boundary mask for a target average chunk size.
///
/// The divisor is rounded up to a power of two (boundary probability `1/divisor`
/// per byte) and the mask is placed in the *top* bits of the word: the low bits
/// of a gear hash are dominated by the most recent few bytes (bit `k` only sees
/// the last `k + 1` table adds), so a low mask would shrink the effective window
/// to the mask width.  The top bits have accumulated the full
/// [`GEAR_EFFECTIVE_WINDOW`](sigma_hashkit::GEAR_EFFECTIVE_WINDOW) bytes of history.
pub(crate) fn gear_mask_for_average(avg_size: usize) -> u64 {
    let divisor = (avg_size.next_power_of_two() as u64).max(2);
    let bits = divisor.trailing_zeros();
    (divisor - 1) << (64 - bits)
}

/// Gear-based content-defined chunker with minimum/average/maximum chunk sizes.
///
/// A chunk boundary is declared at the first position `p >= min_size` where the
/// gear hash satisfies `h & mask == mask` (with the mask width derived from the
/// requested average size), or at `max_size` if no such position is found.
///
/// # Example
///
/// ```
/// use sigma_chunking::{Chunker, GearCdcChunker};
///
/// let chunker = GearCdcChunker::new(1024, 4096, 16 * 1024);
/// let data: Vec<u8> = (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
/// let boundaries = chunker.chunk_boundaries(&data);
/// assert_eq!(*boundaries.last().unwrap(), data.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GearCdcChunker {
    min_size: usize,
    avg_size: usize,
    max_size: usize,
    mask: u64,
}

impl GearCdcChunker {
    /// Creates a gear CDC chunker with the given minimum, average and maximum
    /// chunk sizes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_size <= avg_size <= max_size`.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0, "minimum chunk size must be non-zero");
        assert!(
            min_size <= avg_size && avg_size <= max_size,
            "chunk size parameters must satisfy min <= avg <= max"
        );
        GearCdcChunker {
            min_size,
            avg_size,
            max_size,
            mask: gear_mask_for_average(avg_size),
        }
    }

    /// The paper's default sizing (4 KB average, 1 KB minimum, 16 KB maximum)
    /// on the gear hash.
    pub fn with_average_4k() -> Self {
        GearCdcChunker::new(1024, 4096, 16 * 1024)
    }

    /// Minimum chunk size in bytes.
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Maximum chunk size in bytes.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The boundary mask tested against the gear hash.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Length of the next chunk starting at the beginning of `data`.
    #[inline]
    fn next_cut(&self, data: &[u8]) -> usize {
        let limit = data.len().min(self.max_size);
        GearHasher::find_boundary(&data[..limit], self.min_size, self.mask).unwrap_or(limit)
    }
}

impl Chunker for GearCdcChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut boundaries = Vec::with_capacity(data.len() / self.avg_size + 1);
        let mut chunk_start = 0usize;
        while chunk_start < data.len() {
            let cut = self.next_cut(&data[chunk_start..]);
            chunk_start += cut;
            boundaries.push(chunk_start);
        }
        boundaries
    }

    fn first_boundary(&self, data: &[u8]) -> Option<usize> {
        if data.is_empty() {
            None
        } else {
            Some(self.next_cut(data))
        }
    }

    fn average_chunk_size(&self) -> usize {
        self.avg_size
    }

    fn name(&self) -> String {
        format!("gear-{}", self.avg_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_boundaries;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn boundaries_are_valid() {
        let data = random_data(300_000, 17);
        let c = GearCdcChunker::with_average_4k();
        let b = c.chunk_boundaries(&data);
        validate_boundaries(data.len(), &b).unwrap();
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let data = random_data(300_000, 23);
        let c = GearCdcChunker::new(1024, 4096, 16 * 1024);
        let b = c.chunk_boundaries(&data);
        let mut start = 0usize;
        for (i, &end) in b.iter().enumerate() {
            let len = end - start;
            assert!(len <= c.max_size(), "chunk {} too large: {}", i, len);
            if i + 1 != b.len() {
                assert!(len >= c.min_size(), "chunk {} too small: {}", i, len);
            }
            start = end;
        }
    }

    #[test]
    fn average_size_is_in_the_right_ballpark() {
        let data = random_data(2_000_000, 29);
        let c = GearCdcChunker::new(1024, 4096, 16 * 1024);
        let b = c.chunk_boundaries(&data);
        let avg = data.len() / b.len();
        assert!(
            (2048..=12_288).contains(&avg),
            "unexpected average chunk size {}",
            avg
        );
    }

    #[test]
    fn boundaries_resynchronize_after_insertion() {
        let original = random_data(500_000, 31);
        let mut shifted = original.clone();
        let insert = random_data(100, 37);
        shifted.splice(1000..1000, insert.iter().copied());

        let c = GearCdcChunker::new(1024, 4096, 16 * 1024);
        let chunks_a: std::collections::HashSet<Vec<u8>> = c
            .split(&original)
            .into_iter()
            .map(|ch| ch.into_data())
            .collect();
        let chunks_b: Vec<Vec<u8>> = c
            .split(&shifted)
            .into_iter()
            .map(|ch| ch.into_data())
            .collect();

        let shared = chunks_b.iter().filter(|ch| chunks_a.contains(*ch)).count();
        let ratio = shared as f64 / chunks_b.len() as f64;
        assert!(
            ratio > 0.9,
            "expected >90% of chunks to survive an insertion, got {:.2}",
            ratio
        );
    }

    #[test]
    fn mask_probability_matches_divisor() {
        // avg 4096 -> divisor 4096 -> 12 mask bits in the top of the word.
        let mask = gear_mask_for_average(4096);
        assert_eq!(mask.count_ones(), 12);
        assert_eq!(mask.leading_zeros(), 0);
        // Degenerate small average still yields a usable mask.
        assert_eq!(gear_mask_for_average(1).count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn bad_parameters_panic() {
        GearCdcChunker::new(4096, 1024, 16 * 1024);
    }
}
