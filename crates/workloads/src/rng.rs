//! Deterministic randomness and the distributions the generators need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random-number generator with the handful of sampling helpers the
/// workload generators use.
///
/// # Example
///
/// ```
/// use sigma_workloads::DeterministicRng;
///
/// let mut a = DeterministicRng::new(7);
/// let mut b = DeterministicRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.uniform_f64() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    rng: StdRng,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[0, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if `upper` is zero.
    pub fn below(&mut self, upper: u64) -> u64 {
        assert!(upper > 0, "upper bound must be non-zero");
        self.rng.gen_range(0..upper)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// A standard-normal sample (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = (1.0 - self.uniform_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// A sample from `LogNormal(mu, sigma)` (parameters of the underlying normal).
    pub fn log_normal(&mut self, dist: LogNormal) -> f64 {
        (dist.mu + dist.sigma * self.standard_normal()).exp()
    }

    /// Zipf-like rank selection over `n` items with exponent `s`, returning a rank in
    /// `[0, n)` where small ranks are (much) more likely.
    ///
    /// Uses the standard inverse-CDF approximation for the Zipf distribution, which
    /// is accurate enough for workload skew modelling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "population must be non-zero");
        if n == 1 {
            return 0;
        }
        let u = self.uniform_f64().max(f64::MIN_POSITIVE);
        if (s - 1.0).abs() < 1e-9 {
            // Harmonic case: F(k) ~ ln(k) / ln(n).
            let k = (n as f64).powf(u);
            (k as u64 - 1).min(n - 1)
        } else {
            let exponent = 1.0 - s;
            let k = ((u * ((n as f64).powf(exponent) - 1.0)) + 1.0).powf(1.0 / exponent);
            (k as u64).saturating_sub(1).min(n - 1)
        }
    }
}

/// Parameters of a log-normal distribution (of the underlying normal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal distribution.
    pub mu: f64,
    /// Standard deviation of the underlying normal distribution.
    pub sigma: f64,
}

impl LogNormal {
    /// Builds parameters such that the distribution's *median* is `median` and its
    /// spread factor (one sigma) is `spread` (> 1).
    pub fn with_median(median: f64, spread: f64) -> Self {
        LogNormal {
            mu: median.max(f64::MIN_POSITIVE).ln(),
            sigma: spread.max(1.0 + 1e-9).ln(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DeterministicRng::new(123);
        let mut b = DeterministicRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DeterministicRng::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = DeterministicRng::new(1);
        for upper in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(rng.below(upper) < upper);
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DeterministicRng::new(2);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn normal_mean_is_near_zero() {
        let mut rng = DeterministicRng::new(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.standard_normal()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {}", mean);
    }

    #[test]
    fn log_normal_median_matches() {
        let mut rng = DeterministicRng::new(4);
        let dist = LogNormal::with_median(64.0 * 1024.0, 4.0);
        let mut samples: Vec<f64> = (0..5001).map(|_| rng.log_normal(dist)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median / (64.0 * 1024.0) - 1.0).abs() < 0.25,
            "median = {}",
            median
        );
        assert!(samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let mut rng = DeterministicRng::new(5);
        let n = 1000u64;
        let samples: Vec<u64> = (0..20_000).map(|_| rng.zipf(n, 1.1)).collect();
        assert!(samples.iter().all(|&s| s < n));
        let top_decile = samples.iter().filter(|&&s| s < n / 10).count();
        assert!(
            top_decile > samples.len() / 2,
            "zipf should concentrate mass on small ranks, got {}",
            top_decile
        );
        // n = 1 always returns rank 0.
        assert_eq!(rng.zipf(1, 1.1), 0);
    }
}
