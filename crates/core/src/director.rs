//! The director: backup-session, generation and file-recipe management.
//!
//! The director (Figure 2) is the control-plane component that keeps track of which
//! files were backed up, in which session and backup *generation*, and how to
//! reconstruct them: a *file recipe* lists, in order, every chunk fingerprint of the
//! file together with its size and the node that stores it.  No chunk data flows
//! through the director.
//!
//! Recipes are the cluster's **root set**: a chunk is live exactly as long as some
//! registered recipe references it.  Deleting a file or a whole backup therefore
//! only removes metadata here — the space its now-unreferenced chunks occupy is
//! reclaimed by the next [`DedupCluster::collect_garbage`](crate::DedupCluster::collect_garbage)
//! sweep.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::sync::Arc;

/// Identifier of a backed-up file.
pub type FileId = u64;

/// One entry of a file recipe: a chunk and where it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecipeEntry {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// The chunk's length in bytes.
    pub len: u32,
    /// The deduplication node holding the chunk.
    pub node: usize,
}

/// Everything needed to reconstruct one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileRecipe {
    /// The file's identifier (assigned by the director).
    pub file_id: FileId,
    /// Client-supplied file name.
    pub name: String,
    /// Logical file size in bytes.
    pub size: u64,
    /// Chunks in file order.
    pub chunks: Vec<RecipeEntry>,
    /// The backup session this file belongs to.
    pub session_id: u64,
}

/// A group of files backed up together by one client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackupSession {
    /// Session identifier.
    pub session_id: u64,
    /// Client-supplied name (e.g. hostname).
    pub client: String,
    /// Files registered in this session.
    pub files: Vec<FileId>,
    /// The backup generation this session belongs to (0 unless the caller
    /// groups sessions into generations; see
    /// [`open_session_in_generation`](Director::open_session_in_generation)).
    pub generation: u64,
}

#[derive(Debug, Default)]
struct DirectorInner {
    next_file_id: FileId,
    next_session_id: u64,
    recipes: std::collections::HashMap<FileId, Arc<FileRecipe>>,
    sessions: std::collections::HashMap<u64, BackupSession>,
    /// Every session's generation, surviving the session's deletion: a client
    /// that keeps registering files after its session was expired gets the
    /// session lazily recreated *in its original generation*, so the next
    /// expiry of that generation still covers it (instead of the file silently
    /// re-homing into generation 0 and escaping its retention policy).
    session_generations: std::collections::HashMap<u64, u64>,
    /// Tenant tag per session, for multi-tenant accounting.  Like
    /// `session_generations` this survives the session's deletion, so a
    /// straggler file registered after expiry is still attributed to the
    /// tenant that owns the stream.
    session_tenants: std::collections::HashMap<u64, String>,
}

/// The metadata service of the cluster.
///
/// # Example
///
/// ```
/// use sigma_core::Director;
///
/// let director = Director::new();
/// let session = director.open_session("client-a");
/// let file = director.register_file(session, "etc/passwd", 1234, Vec::new());
/// assert_eq!(director.recipe(file).unwrap().name, "etc/passwd");
/// assert_eq!(director.session(session).unwrap().files, vec![file]);
/// director.delete_file(file).unwrap();
/// assert!(director.recipe(file).is_none());
/// ```
#[derive(Debug, Default)]
pub struct Director {
    inner: Mutex<DirectorInner>,
}

impl Director {
    /// Creates an empty director.
    pub fn new() -> Self {
        Director::default()
    }

    /// Opens a new backup session for `client` in generation 0.
    pub fn open_session(&self, client: &str) -> u64 {
        self.open_session_in_generation(client, 0)
    }

    /// Opens a new backup session for `client`, tagged with a backup generation.
    ///
    /// Generations are the retention unit of a protection workload: each nightly
    /// (weekly, …) backup wave opens its sessions in the next generation, and an
    /// expiry policy deletes whole generations at once with
    /// [`delete_generation`](Director::delete_generation).
    pub fn open_session_in_generation(&self, client: &str, generation: u64) -> u64 {
        let mut inner = self.inner.lock();
        let id = inner.next_session_id;
        inner.next_session_id += 1;
        inner.session_generations.insert(id, generation);
        inner.sessions.insert(
            id,
            BackupSession {
                session_id: id,
                client: client.to_string(),
                files: Vec::new(),
                generation,
            },
        );
        id
    }

    /// Opens a backup session tagged with the tenant that owns it, in the
    /// given generation.
    ///
    /// The tag feeds the per-tenant accounting the service layer surfaces:
    /// [`logical_bytes_by_tenant`](Director::logical_bytes_by_tenant) sums
    /// each tenant's registered recipe bytes, while the chunks those recipes
    /// reference remain shared — deduplicated — across tenants.
    pub fn open_tenant_session(&self, client: &str, generation: u64, tenant: &str) -> u64 {
        let session_id = self.open_session_in_generation(client, generation);
        self.inner
            .lock()
            .session_tenants
            .insert(session_id, tenant.to_string());
        session_id
    }

    /// The tenant tag of a session, if it was opened with
    /// [`open_tenant_session`](Director::open_tenant_session).  Survives the
    /// session's deletion, like its generation.
    pub fn session_tenant(&self, session_id: u64) -> Option<String> {
        self.inner.lock().session_tenants.get(&session_id).cloned()
    }

    /// Logical bytes of every registered recipe, grouped by the owning
    /// session's tenant tag.  Untagged sessions are excluded — see
    /// [`untagged_logical_bytes`](Director::untagged_logical_bytes); the two
    /// always sum to [`total_logical_bytes`](Director::total_logical_bytes).
    pub fn logical_bytes_by_tenant(&self) -> std::collections::BTreeMap<String, u64> {
        let inner = self.inner.lock();
        let mut out = std::collections::BTreeMap::new();
        for recipe in inner.recipes.values() {
            if let Some(tenant) = inner.session_tenants.get(&recipe.session_id) {
                *out.entry(tenant.clone()).or_insert(0) += recipe.size;
            }
        }
        out
    }

    /// Logical bytes of recipes whose sessions carry no tenant tag
    /// (trace-driven or direct [`BackupClient`](crate::BackupClient) use).
    pub fn untagged_logical_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .recipes
            .values()
            .filter(|r| !inner.session_tenants.contains_key(&r.session_id))
            .map(|r| r.size)
            .sum()
    }

    /// Registers a completed file backup and returns its file ID.
    ///
    /// Unknown session IDs are tolerated (a session record is created lazily), so
    /// trace-driven callers may pass `0`.
    pub fn register_file(
        &self,
        session_id: u64,
        name: &str,
        size: u64,
        chunks: Vec<RecipeEntry>,
    ) -> FileId {
        let mut inner = self.inner.lock();
        let file_id = inner.next_file_id;
        inner.next_file_id += 1;
        inner.recipes.insert(
            file_id,
            Arc::new(FileRecipe {
                file_id,
                name: name.to_string(),
                size,
                chunks,
                session_id,
            }),
        );
        // Lazy session creation tolerates unknown IDs (trace-driven callers
        // pass 0) — but a session that *was* opened and has since been deleted
        // is recreated in its original generation, so a straggling client
        // cannot smuggle files out of its retention policy.
        let generation = inner
            .session_generations
            .get(&session_id)
            .copied()
            .unwrap_or(0);
        inner
            .sessions
            .entry(session_id)
            .or_insert_with(|| BackupSession {
                session_id,
                client: String::new(),
                files: Vec::new(),
                generation,
            })
            .files
            .push(file_id);
        file_id
    }

    /// The recipe of a file, if it exists.
    ///
    /// Recipes are shared by reference: the returned [`Arc`] aliases the
    /// director's copy, so restores and the GC mark phase never clone the
    /// per-chunk vector on their hot paths.
    pub fn recipe(&self, file_id: FileId) -> Option<Arc<FileRecipe>> {
        self.inner.lock().recipes.get(&file_id).cloned()
    }

    /// Snapshot of every registered recipe — the GC mark phase's root set.
    ///
    /// Sorted by file ID so mark traversals (and the journal records they lead
    /// to) are deterministic.  Cost is one `Arc` clone per file, never a copy of
    /// the chunk vectors.
    pub fn recipes(&self) -> Vec<Arc<FileRecipe>> {
        let mut out: Vec<Arc<FileRecipe>> = self.inner.lock().recipes.values().cloned().collect();
        out.sort_unstable_by_key(|r| r.file_id);
        out
    }

    /// A backup session, if it exists.
    pub fn session(&self, session_id: u64) -> Option<BackupSession> {
        self.inner.lock().sessions.get(&session_id).cloned()
    }

    /// IDs of the sessions opened in `generation`, sorted ascending.
    pub fn sessions_in_generation(&self, generation: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .inner
            .lock()
            .sessions
            .values()
            .filter(|s| s.generation == generation)
            .map(|s| s.session_id)
            .collect();
        out.sort_unstable();
        out
    }

    /// The distinct generations that still have sessions, sorted ascending.
    pub fn generations(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .inner
            .lock()
            .sessions
            .values()
            .map(|s| s.generation)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Deletes one file's recipe, removing it from its session's file list.
    ///
    /// Returns the deleted recipe (the caller needs it to account the deletion
    /// and to know which nodes to notify), or `None` for unknown — including
    /// already-deleted — file IDs.  The file's chunks become garbage only to the
    /// extent no surviving recipe references them; nothing is reclaimed until
    /// the next GC sweep.
    pub fn delete_file(&self, file_id: FileId) -> Option<Arc<FileRecipe>> {
        let mut inner = self.inner.lock();
        let recipe = inner.recipes.remove(&file_id)?;
        if let Some(session) = inner.sessions.get_mut(&recipe.session_id) {
            session.files.retain(|&f| f != file_id);
        }
        Some(recipe)
    }

    /// Deletes a whole backup: the session and every file registered in it.
    ///
    /// Returns the deleted recipes (sorted by file ID), or `None` for unknown
    /// session IDs.
    pub fn delete_backup(&self, session_id: u64) -> Option<Vec<Arc<FileRecipe>>> {
        let mut inner = self.inner.lock();
        let session = inner.sessions.remove(&session_id)?;
        let mut recipes: Vec<Arc<FileRecipe>> = session
            .files
            .iter()
            .filter_map(|f| inner.recipes.remove(f))
            .collect();
        recipes.sort_unstable_by_key(|r| r.file_id);
        Some(recipes)
    }

    /// Deletes every session (and file) of a backup generation — the expiry
    /// primitive of a retention policy.  Returns the deleted recipes, sorted by
    /// file ID; an empty vector when the generation has no sessions.
    pub fn delete_generation(&self, generation: u64) -> Vec<Arc<FileRecipe>> {
        let sessions = self.sessions_in_generation(generation);
        let mut out = Vec::new();
        for session in sessions {
            if let Some(mut recipes) = self.delete_backup(session) {
                out.append(&mut recipes);
            }
        }
        out.sort_unstable_by_key(|r| r.file_id);
        out
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.inner.lock().recipes.len()
    }

    /// Number of sessions.
    pub fn session_count(&self) -> usize {
        self.inner.lock().sessions.len()
    }

    /// Total logical bytes across all registered files.
    pub fn total_logical_bytes(&self) -> u64 {
        self.inner.lock().recipes.values().map(|r| r.size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_hashkit::{Digest, Sha1};

    fn entry(i: u64) -> RecipeEntry {
        RecipeEntry {
            fingerprint: Sha1::fingerprint(&i.to_le_bytes()),
            len: 4096,
            node: (i % 4) as usize,
        }
    }

    #[test]
    fn sessions_group_files() {
        let d = Director::new();
        let s1 = d.open_session("alpha");
        let s2 = d.open_session("beta");
        let f1 = d.register_file(s1, "a.txt", 100, vec![entry(1)]);
        let f2 = d.register_file(s1, "b.txt", 200, vec![entry(2)]);
        let f3 = d.register_file(s2, "c.txt", 300, vec![entry(3)]);
        assert_eq!(d.session(s1).unwrap().files, vec![f1, f2]);
        assert_eq!(d.session(s2).unwrap().files, vec![f3]);
        assert_eq!(d.session(s1).unwrap().client, "alpha");
        assert_eq!(d.file_count(), 3);
        assert_eq!(d.session_count(), 2);
        assert_eq!(d.total_logical_bytes(), 600);
    }

    #[test]
    fn recipes_preserve_chunk_order() {
        let d = Director::new();
        let chunks: Vec<RecipeEntry> = (0..10).map(entry).collect();
        let f = d.register_file(0, "ordered.bin", 40960, chunks.clone());
        assert_eq!(d.recipe(f).unwrap().chunks, chunks);
    }

    #[test]
    fn recipe_access_shares_rather_than_clones() {
        let d = Director::new();
        let f = d.register_file(0, "big", 1 << 20, (0..256).map(entry).collect());
        let a = d.recipe(f).unwrap();
        let b = d.recipe(f).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "accessors alias one allocation");
        assert!(Arc::ptr_eq(&a, &d.recipes()[0]));
    }

    #[test]
    fn unknown_ids_return_none() {
        let d = Director::new();
        assert!(d.recipe(42).is_none());
        assert!(d.session(42).is_none());
        assert!(d.delete_file(42).is_none());
        assert!(d.delete_backup(42).is_none());
        assert!(d.delete_generation(42).is_empty());
    }

    #[test]
    fn lazy_session_creation_for_unknown_session_ids() {
        let d = Director::new();
        let f = d.register_file(99, "orphan", 1, Vec::new());
        assert_eq!(d.session(99).unwrap().files, vec![f]);
        assert_eq!(d.session(99).unwrap().generation, 0);
    }

    #[test]
    fn file_ids_are_unique_and_monotonic() {
        let d = Director::new();
        let ids: Vec<FileId> = (0..100)
            .map(|i| d.register_file(0, &format!("f{}", i), 1, Vec::new()))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
    }

    #[test]
    fn delete_file_removes_recipe_and_session_entry() {
        let d = Director::new();
        let s = d.open_session("alpha");
        let f1 = d.register_file(s, "a", 100, vec![entry(1)]);
        let f2 = d.register_file(s, "b", 200, vec![entry(2)]);
        let deleted = d.delete_file(f1).unwrap();
        assert_eq!(deleted.size, 100);
        assert!(d.recipe(f1).is_none());
        assert_eq!(d.session(s).unwrap().files, vec![f2]);
        assert_eq!(d.total_logical_bytes(), 200);
        // Double delete reports not-found rather than panicking.
        assert!(d.delete_file(f1).is_none());
        // File IDs are never reused after a deletion.
        let f3 = d.register_file(s, "c", 1, Vec::new());
        assert!(f3 > f2);
    }

    #[test]
    fn delete_backup_removes_the_whole_session() {
        let d = Director::new();
        let s1 = d.open_session("alpha");
        let s2 = d.open_session("beta");
        let f1 = d.register_file(s1, "a", 100, vec![entry(1)]);
        let f2 = d.register_file(s1, "b", 200, vec![entry(2)]);
        let f3 = d.register_file(s2, "c", 300, vec![entry(3)]);
        let deleted = d.delete_backup(s1).unwrap();
        assert_eq!(
            deleted.iter().map(|r| r.file_id).collect::<Vec<_>>(),
            vec![f1, f2]
        );
        assert!(d.session(s1).is_none());
        assert!(d.recipe(f1).is_none());
        assert!(d.recipe(f2).is_none());
        assert_eq!(d.recipe(f3).unwrap().size, 300);
        assert_eq!(d.session_count(), 1);
        assert!(d.delete_backup(s1).is_none(), "double delete is not-found");
    }

    #[test]
    fn straggler_files_after_expiry_stay_in_their_generation() {
        // A client keeps writing after its session was expired: the lazily
        // recreated session must come back in the *original* generation, so
        // the next expiry of that generation still covers the straggler.
        let d = Director::new();
        let s = d.open_session_in_generation("nightly", 5);
        d.register_file(s, "wave-1", 10, vec![entry(1)]);
        assert_eq!(d.delete_generation(5).len(), 1);
        let straggler = d.register_file(s, "wave-1-late", 10, vec![entry(2)]);
        assert_eq!(d.session(s).unwrap().generation, 5, "generation preserved");
        let expired = d.delete_generation(5);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].file_id, straggler);
        assert!(d.recipe(straggler).is_none());
        // Generation-0 expiry never saw it.
        assert!(d.delete_generation(0).is_empty());
    }

    #[test]
    fn tenant_tags_partition_logical_bytes() {
        let d = Director::new();
        let sa = d.open_tenant_session("host-1", 0, "acme");
        let sb = d.open_tenant_session("host-2", 0, "globex");
        let untagged = d.open_session("host-3");
        d.register_file(sa, "a1", 100, vec![entry(1)]);
        d.register_file(sa, "a2", 250, vec![entry(2)]);
        d.register_file(sb, "b1", 300, vec![entry(3)]);
        d.register_file(untagged, "u1", 50, vec![entry(4)]);
        let by_tenant = d.logical_bytes_by_tenant();
        assert_eq!(by_tenant["acme"], 350);
        assert_eq!(by_tenant["globex"], 300);
        assert_eq!(by_tenant.len(), 2, "untagged sessions are not a tenant");
        assert_eq!(d.untagged_logical_bytes(), 50);
        assert_eq!(
            by_tenant.values().sum::<u64>() + d.untagged_logical_bytes(),
            d.total_logical_bytes(),
            "tenant partition covers every registered byte"
        );
        assert_eq!(d.session_tenant(sa).as_deref(), Some("acme"));
        assert_eq!(d.session_tenant(untagged), None);
    }

    #[test]
    fn tenant_tag_survives_session_expiry() {
        // A straggler registered after its session was expired must still be
        // attributed to the owning tenant (mirrors the generation-preserving
        // lazy recreation).
        let d = Director::new();
        let s = d.open_tenant_session("nightly", 3, "acme");
        d.register_file(s, "wave", 10, vec![entry(1)]);
        assert_eq!(d.delete_generation(3).len(), 1);
        d.register_file(s, "late", 70, vec![entry(2)]);
        assert_eq!(d.logical_bytes_by_tenant()["acme"], 70);
        assert_eq!(d.session_tenant(s).as_deref(), Some("acme"));
    }

    #[test]
    fn generations_group_and_expire_sessions() {
        let d = Director::new();
        let mut by_gen = Vec::new();
        for generation in 0..3u64 {
            let s = d.open_session_in_generation("nightly", generation);
            let f = d.register_file(
                s,
                &format!("gen-{}", generation),
                10,
                vec![entry(generation)],
            );
            by_gen.push((generation, s, f));
        }
        assert_eq!(d.generations(), vec![0, 1, 2]);
        assert_eq!(d.sessions_in_generation(1), vec![by_gen[1].1]);
        let expired = d.delete_generation(0);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].file_id, by_gen[0].2);
        assert_eq!(d.generations(), vec![1, 2]);
        assert!(d.recipe(by_gen[0].2).is_none());
        assert!(d.recipe(by_gen[1].2).is_some());
    }
}
