//! The tentpole end-to-end proof for the real-file storage backend: data
//! ingested through the **full middleware stack** survives a complete loss of
//! process state.
//!
//! 1. A `[storage] backend = "file"` service config picks the persistence mode
//!    and builds the cluster from it;
//! 2. tenants back up versioned payloads through auth + admission + quota +
//!    logging into a two-node cluster;
//! 3. every in-memory handle — stack, cluster, nodes, journals — is dropped;
//!    only the node directories (`journal.wal` + `container-*.sc`) remain;
//! 4. each node is re-opened from its directory with
//!    [`DedupNode::recover_from_dir`] and every file is reassembled from its
//!    recipe (the client-side catalog a real backup application keeps) and
//!    compared byte-for-byte;
//! 5. a second scenario tears the journal tail mid-frame before the re-open,
//!    proving the torn suffix is discarded and the prior ack point restored.

use sigma_dedupe::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Extra seed from the environment so the CI matrix varies the workloads.
fn env_seed() -> u64 {
    std::env::var("SIGMA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// A unique scratch directory for one test, removed on success.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

const SERVICE_TEXT: &str = r#"
[auth.tokens]
acme = "s3cret"
globex = "t0ken"

[logging]
enabled = true

[admission]
max_inflight_requests = 64

[storage]
backend = "file"
"#;

fn file_sigma_config(root: &std::path::Path) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(32 * 1024)
        .cache_containers(4)
        .file_storage(root)
        .build()
        .expect("valid test config")
}

/// Reassembles one file from its recipe against recovered nodes — what a
/// restore client does once the cluster is back.
fn reassemble(recipe: &FileRecipe, nodes: &HashMap<usize, DedupNode>) -> Vec<u8> {
    let mut data = Vec::with_capacity(recipe.size as usize);
    for entry in &recipe.chunks {
        let chunk = nodes[&entry.node]
            .read_chunk(&entry.fingerprint)
            .unwrap_or_else(|e| panic!("chunk of file {} lost: {}", recipe.file_id, e));
        assert_eq!(chunk.len() as u32, entry.len, "recipe length drift");
        data.extend_from_slice(&chunk);
    }
    data
}

#[test]
fn full_stack_ingest_survives_process_restart() {
    let root = scratch_dir("persistent-restart");
    let service_config = ServiceConfig::parse(SERVICE_TEXT).expect("valid service config");
    let mut sigma = service_config
        .clone()
        .apply_storage(file_sigma_config(&root))
        .expect("storage section applies");
    sigma.storage_root = Some(root.clone()); // the config file has no fixed dir; tests pick one

    // Phase 1: ingest through the full stack, then drop every handle.
    let (recipes, expected) = {
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, sigma.clone()));
        let stack = service_config.into_builder().build(cluster.clone());

        let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut request_id = 1u64;
        for (tenant, token, seed) in [("acme", "s3cret", 0xA11CEu64), ("globex", "t0ken", 0xB0B)] {
            for (name, data) in versioned_payloads(VersionedPayloadParams {
                seed: seed ^ env_seed().wrapping_mul(0x9E37_79B9),
                versions: 3,
                version_size: 96 * 1024,
                mutation_rate: 0.1,
            }) {
                let resp = stack.call(
                    RequestEnvelope::new(
                        request_id,
                        tenant,
                        Operation::Backup {
                            file_name: name,
                            generation: 0,
                        },
                    )
                    .with_token(token)
                    .with_payload(data.clone()),
                );
                assert_eq!(resp.code, ServiceCode::Ok, "authorized backup succeeds");
                let file_id = resp
                    .metadata_u64(sigma_dedupe::service::backend::FILE_ID_KEY)
                    .expect("backup returns a file id");
                expected.insert(file_id, data);
                request_id += 1;
            }
        }
        cluster.try_flush().expect("no faults armed");

        // The recipes are the client-side catalog; they are not cluster state.
        let recipes: Vec<Arc<FileRecipe>> = cluster.director().recipes();
        assert_eq!(recipes.len(), expected.len());
        (recipes, expected)
        // stack, cluster, nodes, journals all dropped here.
    };
    assert!(
        root.join("node-0").join("journal.wal").exists()
            && root.join("node-1").join("journal.wal").exists(),
        "both nodes must have journaled to disk"
    );

    // Phase 2: re-open both nodes from nothing but their directories.
    let mut nodes: HashMap<usize, DedupNode> = HashMap::new();
    for id in 0..2 {
        let (node, report) =
            DedupNode::recover_from_dir(id, &sigma).expect("directory is recoverable");
        assert!(report.bytes_replayed > 0, "node {} replayed nothing", id);
        assert_eq!(report.bytes_discarded, 0, "clean shutdown leaves no tail");
        assert!(
            report.backend_objects_verified > 0,
            "node {} verified no container objects",
            id
        );
        assert_eq!(report.backend_objects_repaired, 0, "nothing to repair");
        node.verify_consistency()
            .expect("recovered node is consistent");
        nodes.insert(id, node);
    }

    // Phase 3: every file reassembles byte-for-byte.
    for recipe in &recipes {
        let data = reassemble(recipe, &nodes);
        assert_eq!(
            &data, &expected[&recipe.file_id],
            "file {} corrupted across the restart",
            recipe.file_id
        );
    }
    drop(nodes);
    std::fs::remove_dir_all(&root).expect("clean up scenario directory");
}

#[test]
fn torn_journal_tail_recovers_to_the_last_ack_point() {
    let root = scratch_dir("persistent-torn");
    let sigma = file_sigma_config(&root);

    // Two acknowledged waves on one node; remember the first ack point.
    let (first_wave, first_ack, second_wave) = {
        let cluster = Arc::new(DedupCluster::with_similarity_router(1, sigma.clone()));
        let client = BackupClient::new(cluster.clone(), 0);
        let wave = |tag: u64| -> Vec<(FileBackupReport, Vec<u8>)> {
            (0..3u64)
                .map(|i| {
                    let data = random_bytes(
                        48 * 1024,
                        (0x7EA8 + tag * 10 + i) ^ env_seed().wrapping_mul(0x9E37_79B9),
                    );
                    let report = client
                        .backup_bytes(&format!("w{tag}-f{i}"), &data)
                        .expect("backup cannot fail");
                    (report, data)
                })
                .collect()
        };
        let first = wave(0);
        cluster.try_flush().expect("no faults armed");
        let first_ack = cluster
            .node_by_id(0)
            .unwrap()
            .journal()
            .expect("durable node")
            .len_bytes();
        let second = wave(1);
        cluster.try_flush().expect("no faults armed");
        let first_recipes: Vec<Arc<FileRecipe>> = first
            .iter()
            .map(|(r, _)| cluster.director().recipe(r.file_id).unwrap())
            .collect();
        let second_len = second.len();
        (
            first
                .into_iter()
                .zip(first_recipes)
                .map(|((_, data), recipe)| (recipe, data))
                .collect::<Vec<_>>(),
            first_ack,
            second_len,
        )
    };
    assert!(second_wave > 0);

    // The crash: the real journal file loses everything past the first ack
    // point, plus it keeps half of the frame that was being written.
    let journal_path = sigma
        .node_storage_dir(0)
        .expect("file backend has a dir")
        .join("journal.wal");
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    assert!(bytes.len() > first_ack, "second wave appended records");
    let torn = first_ack + (bytes.len() - first_ack) / 2;
    std::fs::write(&journal_path, &bytes[..torn]).expect("tear the tail");

    let (node, report) = DedupNode::recover_from_dir(0, &sigma).expect("recoverable");
    assert!(
        report.bytes_discarded > 0,
        "the torn suffix must be discarded, not replayed"
    );
    node.verify_consistency()
        .expect("consistent after the tear");
    // Everything acknowledged before the tear is byte-identical.
    for (recipe, data) in &first_wave {
        let mut restored = Vec::new();
        for entry in &recipe.chunks {
            restored.extend_from_slice(&node.read_chunk(&entry.fingerprint).unwrap());
        }
        assert_eq!(
            &restored, data,
            "file {} corrupted by the tear",
            recipe.file_id
        );
    }
    drop(node);
    std::fs::remove_dir_all(&root).expect("clean up scenario directory");
}
