//! Offline shim for the parts of [`serde`](https://serde.rs) this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the real
//! `serde` cannot be fetched. The workspace only ever uses serde as *derive
//! annotations* — no code path serializes or deserializes anything yet — so this
//! shim provides the two marker traits and no-op derive macros with the same
//! names and import paths. Swapping in the real crate later is a one-line change
//! in `[workspace.dependencies]` and requires no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that bounds written against it always
/// hold; the paired derive macro expands to nothing.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`.
///
/// Blanket-implemented for every type so that bounds written against it always
/// hold; the paired derive macro expands to nothing.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
