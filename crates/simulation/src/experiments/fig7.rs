//! Figure 7: fingerprint-lookup messages vs. cluster size.
//!
//! The system-overhead comparison: Σ-Dedupe, Stateless routing and Extreme Binning
//! send a constant number of fingerprint-lookup messages per super-chunk regardless
//! of the cluster size (Σ-Dedupe at most 1.25× Stateless), while Stateful routing
//! broadcasts to every node and therefore grows linearly with the cluster size.

use crate::runner::{run_cluster, SimulationConfig};
use serde::{Deserialize, Serialize};
use sigma_baselines::{ExtremeBinningRouter, StatefulRouter, StatelessRouter};
use sigma_core::{DataRouter, SigmaConfig, SimilarityRouter};
use sigma_metrics::report::TextTable;
use sigma_workloads::{presets, DatasetTrace, Scale};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Dataset name.
    pub dataset: String,
    /// Routing scheme name.
    pub scheme: String,
    /// Number of deduplication nodes.
    pub cluster_size: usize,
    /// Total fingerprint-lookup messages (pre-routing + post-routing).
    pub lookup_messages: u64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Params {
    /// Workload scale.
    pub scale: Scale,
    /// Cluster sizes to sweep.
    pub cluster_sizes: Vec<usize>,
    /// Super-chunk size in bytes (1 MB in the paper; see
    /// [`Fig8Params`](super::fig8::Fig8Params) for why scaled-down runs shrink it).
    pub super_chunk_size: usize,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            scale: Scale::Small,
            cluster_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
            super_chunk_size: 1 << 20,
        }
    }
}

fn make_router(name: &str) -> Box<dyn DataRouter> {
    match name {
        "sigma" => Box::new(SimilarityRouter::new(true)),
        "stateless" => Box::new(StatelessRouter::new()),
        "stateful" => Box::new(StatefulRouter::new()),
        "extreme-binning" => Box::new(ExtremeBinningRouter::new()),
        other => panic!("unknown routing scheme {other}"),
    }
}

/// The scheme names compared (Figure 7 uses the same four as Figure 8).
pub const SCHEMES: [&str; 4] = ["sigma", "stateless", "stateful", "extreme-binning"];

/// Runs the experiment on the Linux and VM workloads (the two real datasets of the
/// paper's Figure 7).
pub fn run(params: &Fig7Params) -> Vec<Fig7Row> {
    let datasets = [
        presets::linux_dataset(params.scale),
        presets::vm_dataset(params.scale),
    ];
    datasets.iter().flat_map(|d| run_on(d, params)).collect()
}

/// Runs the experiment on one workload.
pub fn run_on(dataset: &DatasetTrace, params: &Fig7Params) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for scheme in SCHEMES {
        if scheme == "extreme-binning" && !dataset.has_file_boundaries {
            continue;
        }
        for &cluster_size in &params.cluster_sizes {
            let sigma = SigmaConfig::builder()
                .super_chunk_size(params.super_chunk_size)
                .build()
                .expect("valid configuration");
            let summary = run_cluster(
                dataset,
                make_router(scheme),
                &SimulationConfig {
                    node_count: cluster_size,
                    sigma,
                    client_streams: 4,
                },
            );
            rows.push(Fig7Row {
                dataset: dataset.name.clone(),
                scheme: scheme.to_string(),
                cluster_size,
                lookup_messages: summary.total_lookups(),
            });
        }
    }
    rows
}

/// Renders the figure for one dataset (cluster sizes as rows, schemes as columns).
pub fn render(dataset: &str, rows: &[Fig7Row]) -> String {
    let rows: Vec<&Fig7Row> = rows.iter().filter(|r| r.dataset == dataset).collect();
    let mut clusters: Vec<usize> = rows.iter().map(|r| r.cluster_size).collect();
    clusters.sort_unstable();
    clusters.dedup();

    let mut headers = vec![format!("{}: nodes", dataset)];
    headers.extend(SCHEMES.iter().map(|s| s.to_string()));
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for c in clusters {
        let mut cells = vec![c.to_string()];
        for scheme in SCHEMES {
            let cell = rows
                .iter()
                .find(|r| r.cluster_size == c && r.scheme == scheme)
                .map(|r| r.lookup_messages.to_string())
                .unwrap_or_else(|| "-".to_string());
            cells.push(cell);
        }
        table.add_row(cells);
    }
    table.render()
}

/// Checks the paper's two headline claims about Figure 7 on a set of rows:
/// Σ-Dedupe stays within `factor ×` of Stateless at every cluster size, and Stateful
/// grows with the cluster size while Σ-Dedupe stays (nearly) flat.
///
/// The paper's bound is 1.25× for full 1 MB super-chunks of 256 chunks; small-scale
/// test runs whose super-chunks are only partially filled should pass a looser
/// factor, because the fixed pre-routing cost (candidates × handprint size) is
/// amortised over fewer chunk lookups.
pub fn overhead_shape_holds(rows: &[Fig7Row], factor: f64) -> bool {
    let datasets: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.dataset.as_str()).collect();
    datasets.iter().all(|dataset| {
        let of = |scheme: &str, cluster: usize| {
            rows.iter()
                .find(|r| &r.dataset == dataset && r.scheme == scheme && r.cluster_size == cluster)
                .map(|r| r.lookup_messages)
        };
        let mut clusters: Vec<usize> = rows
            .iter()
            .filter(|r| &r.dataset == dataset)
            .map(|r| r.cluster_size)
            .collect();
        clusters.sort_unstable();
        clusters.dedup();
        let Some(&largest) = clusters.last() else {
            return true;
        };
        let Some(&smallest) = clusters.first() else {
            return true;
        };
        let sigma_ok = clusters
            .iter()
            .all(|&c| match (of("sigma", c), of("stateless", c)) {
                (Some(s), Some(b)) => s as f64 <= factor * b as f64,
                _ => true,
            });
        let stateful_grows = match (of("stateful", smallest), of("stateful", largest)) {
            (Some(small), Some(large)) => largest == smallest || large > small,
            _ => true,
        };
        let sigma_flat = match (of("sigma", smallest), of("sigma", largest)) {
            (Some(small), Some(large)) => large as f64 <= factor * small as f64,
            _ => true,
        };
        sigma_ok && stateful_grows && sigma_flat
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig7Params {
        Fig7Params {
            scale: Scale::Tiny,
            cluster_sizes: vec![2, 8, 32],
            super_chunk_size: 1 << 20,
        }
    }

    #[test]
    fn overhead_shape_matches_the_paper() {
        let dataset = presets::linux_dataset(Scale::Tiny);
        let rows = run_on(&dataset, &tiny_params());
        // Tiny-scale super-chunks are partially filled, so use a looser factor than
        // the paper's 1.25 (the bench at reporting scale uses 1.3).
        assert!(overhead_shape_holds(&rows, 1.8), "{:#?}", rows);
    }

    #[test]
    fn extreme_binning_skipped_without_file_boundaries() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let rows = run_on(&dataset, &tiny_params());
        assert!(rows.iter().all(|r| r.scheme != "extreme-binning"));
        assert!(!rows.is_empty());
    }

    #[test]
    fn render_marks_missing_series_with_dash() {
        let dataset = presets::web_dataset(Scale::Tiny);
        let rows = run_on(&dataset, &tiny_params());
        let text = render("Web", &rows);
        assert!(text.contains('-'));
        assert!(text.contains("stateful"));
    }
}
