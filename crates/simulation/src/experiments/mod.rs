//! One module per table/figure of the paper's evaluation.
//!
//! Every experiment exposes a `run(...)` function taking explicit size parameters
//! (so unit tests can run them at tiny scale and `cargo bench` at the reporting
//! scale) and a `render(...)` helper that formats the result the way the paper's
//! table or figure reports it.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`table1`] | Table 1 — qualitative comparison of routing schemes |
//! | [`fig1`] | Figure 1 — handprint resemblance estimation vs. handprint size |
//! | [`table2`] | Table 2 — workload characteristics (size, deduplication ratio) |
//! | [`fig4a`] | Figure 4(a) — chunking and fingerprinting throughput vs. streams |
//! | [`fig4b`] | Figure 4(b) — parallel similarity-index lookup vs. lock count |
//! | [`fig5a`] | Figure 5(a) — single-node deduplication efficiency vs. chunk size |
//! | [`fig5b`] | Figure 5(b) — deduplication ratio vs. handprint sampling rate |
//! | [`fig6`] | Figure 6 — cluster deduplication ratio vs. handprint size |
//! | [`fig7`] | Figure 7 — fingerprint-lookup messages vs. cluster size |
//! | [`fig8`] | Figure 8 — normalized effective deduplication ratio vs. cluster size |

pub mod fig1;
pub mod fig4a;
pub mod fig4b;
pub mod fig5a;
pub mod fig5b;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table2;
