//! Σ-Dedupe: a scalable inline cluster deduplication framework.
//!
//! This crate implements the primary contribution of *"A Scalable Inline Cluster
//! Deduplication Framework for Big Data Protection"* (Fu, Jiang, Xiao — MIDDLEWARE
//! 2012): a source inline cluster deduplication middleware that exploits data
//! **similarity** (for inter-node routing) and **locality** (for intra-node
//! deduplication).
//!
//! The moving parts, mirroring Figure 2 of the paper:
//!
//! * [`SuperChunk`] / [`SuperChunkBuilder`] — consecutive chunks grouped into the
//!   coarse-grained routing unit (1 MB by default).
//! * [`Handprint`] — the k smallest chunk fingerprints of a super-chunk
//!   (deterministic min-k sampling); two similar super-chunks share representative
//!   fingerprints with high probability (Broder's theorem, Section 2.2).
//! * [`SimilarityRouter`] — Algorithm 1: similarity-based stateful data routing with
//!   capacity-aware load balancing over at most k candidate nodes.
//! * [`DedupNode`] — a deduplication server: similarity index + container-granular
//!   chunk-fingerprint cache + parallel container management (+ optional on-disk
//!   chunk-index fallback).
//! * [`BackupClient`] — data partitioning, chunk fingerprinting and similarity-aware
//!   routing at the source.
//! * [`IngestPipeline`] — the multi-threaded ingest front end: chunking and
//!   fingerprinting on a worker pool, in-order super-chunk assembly, concurrent
//!   multi-stream submission (see the [`pipeline`] module).
//! * [`Director`] — backup-session and file-recipe management for restores.
//! * [`DedupCluster`] — wires N nodes, a router and the director together and
//!   accounts for fingerprint-lookup messages (the paper's overhead metric).
//! * [`NodeMap`] / [`Rebalancer`] — elastic membership: add/remove nodes on a
//!   live cluster behind generation-stamped node maps, with recipe-preserving
//!   container migration (see the [`membership`] module).
//!
//! # Quick start
//!
//! ```
//! use sigma_core::{BackupClient, DedupCluster, SigmaConfig};
//! use std::sync::Arc;
//!
//! // A 4-node cluster with the paper's default parameters (1 MB super-chunks,
//! // handprints of 8, 4 KB static chunking).
//! let config = SigmaConfig::default();
//! let cluster = Arc::new(DedupCluster::with_similarity_router(4, config));
//! let client = BackupClient::new(cluster.clone(), 0);
//!
//! // Back up two generations of the "same" data: the second is almost free.
//! let generation_1 = vec![42u8; 4 << 20];
//! let generation_2 = generation_1.clone();
//! let report_1 = client.backup_bytes("vm-image, monday", &generation_1).unwrap();
//! let report_2 = client.backup_bytes("vm-image, tuesday", &generation_2).unwrap();
//! assert!(report_2.transferred_bytes < report_1.transferred_bytes / 10);
//!
//! // And the restore path returns the original bytes.
//! let restored = cluster.restore_file(report_2.file_id).unwrap();
//! assert_eq!(restored, generation_2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod config;
mod director;
mod error;
mod handprint;
pub mod membership;
mod node;
pub mod pipeline;
mod restore;
mod routing;
mod super_chunk;

pub use client::{BackupClient, FileBackupReport};
pub use cluster::{BatchReceipts, ClusterStats, DedupCluster, GcReport, MessageStats, StreamBatch};
pub use config::{SigmaConfig, SigmaConfigBuilder, MAX_PARALLELISM};
pub use director::{BackupSession, Director, FileId, FileRecipe, RecipeEntry};
pub use error::{ServiceCode, SigmaError};
pub use handprint::{jaccard, Handprint};
pub use membership::{MoveReceipt, NodeMap, RebalanceReport, Rebalancer};
pub use node::{DedupNode, NodeGcReport, NodeStats, RecoveryReport, SuperChunkReceipt};
pub use pipeline::{IngestPipeline, StreamPayload};
pub use restore::RestoreReport;
pub use routing::{DataRouter, RoutingContext, RoutingDecision, SimilarityRouter};
pub use super_chunk::{ChunkDescriptor, SuperChunk, SuperChunkBuilder};

/// Convenient result alias for Σ-Dedupe operations.
pub type Result<T> = std::result::Result<T, SigmaError>;
