//! Concurrency stress: many threads backing up overlapping datasets into one
//! cluster, checking for deadlocks, consistent accounting and intact restores.
//!
//! CI runs this suite under `--release` with `RUST_TEST_THREADS` unpinned so the
//! tests inside one binary also race each other — lock-ordering bugs in the
//! striped indexes or the per-container store locks surface here rather than on
//! main.

use sigma_dedupe::prelude::*;
use std::sync::{Arc, Barrier};

fn stress_config(parallelism: usize) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(32 * 1024)
        .cache_containers(4)
        .parallelism(parallelism)
        .build()
        .expect("valid stress config")
}

/// Deterministic pseudo-random block so threads can overlap on shared content.
fn block(id: u64, len: usize) -> Vec<u8> {
    let mut state = id.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// A thread's dataset: a shared prefix every thread writes (heavy cross-thread
/// duplication) plus a private suffix unique to the thread.
fn dataset(thread: u64) -> Vec<u8> {
    let mut data = Vec::new();
    for shared in 0..16u64 {
        data.extend_from_slice(&block(shared, 2048));
    }
    for private in 0..8u64 {
        data.extend_from_slice(&block(1_000 + thread * 100 + private, 2048));
    }
    data
}

#[test]
fn threads_share_cluster_without_deadlock_and_stats_sum() {
    const THREADS: u64 = 8;
    let cluster = Arc::new(DedupCluster::with_similarity_router(4, stress_config(1)));
    let barrier = Arc::new(Barrier::new(THREADS as usize));

    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let cluster = cluster.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let client = BackupClient::new(cluster.clone(), thread);
            let data = dataset(thread);
            barrier.wait();
            let mut reports: Vec<(FileBackupReport, Vec<u8>)> = Vec::new();
            for generation in 0..2 {
                let report = client
                    .backup_bytes(&format!("t{thread}-g{generation}"), &data)
                    .expect("backup under contention");
                reports.push((report, data.clone()));
            }
            reports
        }));
    }
    let all: Vec<(FileBackupReport, Vec<u8>)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("no stream worker may deadlock or panic"))
        .collect();
    cluster.flush();

    // Accounting: the cluster-side counters must equal the sum of what the
    // clients observed, no matter how the streams interleaved.
    let stats = cluster.stats();
    let logical: u64 = all.iter().map(|(r, _)| r.logical_bytes).sum();
    let super_chunks: u64 = all.iter().map(|(r, _)| r.super_chunks).sum();
    let chunks: u64 = all.iter().map(|(r, _)| r.chunks).sum();
    assert_eq!(stats.logical_bytes, logical);
    assert_eq!(stats.messages.super_chunks_routed, super_chunks);
    assert_eq!(
        stats.messages.postrouting_lookups, chunks,
        "one batched duplicate-or-unique lookup per chunk"
    );
    assert_eq!(
        stats.node_usage.iter().sum::<u64>(),
        stats.physical_bytes,
        "per-node usage must sum to the cluster total"
    );
    assert!(stats.physical_bytes <= stats.logical_bytes);
    let per_node_logical: u64 = stats.nodes.iter().map(|n| n.logical_bytes).sum();
    assert_eq!(per_node_logical, stats.logical_bytes);

    // The shared prefix must deduplicate across threads: 8 threads x 2 generations
    // wrote the same 32 KB prefix, so the cluster stores far less than logical.
    // (The bound is conservative: racing first-generation streams may seed the
    // same shared super-chunk on several nodes before resemblance kicks in.)
    assert!(
        stats.dedup_ratio > 1.5,
        "overlapping datasets must deduplicate, got {}",
        stats.dedup_ratio
    );

    // Every file restores byte-identically.
    for (report, data) in &all {
        assert_eq!(&cluster.restore_file(report.file_id).unwrap(), data);
    }
}

#[test]
fn pipeline_stress_matches_serial_physical_bytes() {
    const STREAMS: u64 = 16;
    let inputs: Vec<StreamPayload> = (0..STREAMS)
        .map(|s| StreamPayload::new(s, format!("s{s}"), dataset(s % 4)))
        .collect();

    // Serial reference on an identical single-node cluster.
    let serial = Arc::new(DedupCluster::with_similarity_router(1, stress_config(1)));
    for input in &inputs {
        BackupClient::new(serial.clone(), input.stream_id)
            .backup_bytes(&input.name, &input.data)
            .unwrap();
    }
    serial.flush();

    let parallel = Arc::new(DedupCluster::with_similarity_router(1, stress_config(8)));
    let pipeline = IngestPipeline::new(parallel.clone());
    let reports = pipeline.backup_streams(inputs.clone()).unwrap();
    parallel.flush();

    let serial_stats = serial.stats();
    let parallel_stats = parallel.stats();
    assert_eq!(parallel_stats.logical_bytes, serial_stats.logical_bytes);
    assert_eq!(
        parallel_stats.physical_bytes, serial_stats.physical_bytes,
        "16 racing streams over 4 overlapping datasets must not double-store"
    );
    for (report, input) in reports.iter().zip(&inputs) {
        assert_eq!(parallel.restore_file(report.file_id).unwrap(), input.data);
    }
}

#[test]
fn backups_racing_with_flush_lose_nothing() {
    const THREADS: u64 = 4;
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, stress_config(1)));
    let barrier = Arc::new(Barrier::new(THREADS as usize + 1));

    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let cluster = cluster.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let client = BackupClient::new(cluster.clone(), thread);
            barrier.wait();
            (0..8u64)
                .map(|generation| {
                    let data = dataset(thread * 10 + generation);
                    let report = client
                        .backup_bytes(&format!("t{thread}-g{generation}"), &data)
                        .expect("backup racing a flush");
                    (report, data)
                })
                .collect::<Vec<_>>()
        }));
    }
    // A dedicated thread hammers flush() while the clients ingest.
    let flusher = {
        let cluster = cluster.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..64 {
                cluster.flush();
                std::thread::yield_now();
            }
        })
    };

    let all: Vec<(FileBackupReport, Vec<u8>)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("no client may deadlock"))
        .collect();
    flusher.join().expect("flusher must finish");
    cluster.flush();

    for (report, data) in &all {
        assert_eq!(
            &cluster.restore_file(report.file_id).unwrap(),
            data,
            "a flush racing an ingest must never lose chunks"
        );
    }
}
