//! Config-driven middleware stacking: describe the stack as data, build it
//! with [`ServiceConfig::build`].
//!
//! The format is a strict subset of TOML (sections, `key = value` with
//! quoted strings, integers, floats and booleans, `#` comments) parsed by
//! hand because the build environment vendors no TOML crate.  Unknown
//! sections and keys are hard errors — a typo must not silently disable an
//! auth layer.
//!
//! ```toml
//! [auth.tokens]
//! acme = "s3cret"
//!
//! [quota.logical_bytes]
//! acme = 1073741824
//!
//! [rate_limit]
//! capacity = 100
//! refill_per_sec = 50.0
//!
//! [admission]
//! max_inflight_requests = 256
//! max_inflight_bytes = 268435456
//! retry_after_ms = 10
//!
//! [fair_scheduler]
//! quantum_bytes = 262144
//! max_tenant_inflight_bytes = 8388608
//! max_concurrent = 8
//!
//! [logging]
//! enabled = true
//!
//! [storage]
//! backend = "file"
//! dir = "/var/lib/sigma"
//! ```

use crate::builder::{ServiceBuilder, ServiceStack};
use crate::middleware::{AdmissionControl, FairScheduler, RateLimit, TenantQuota, TokenAuth};
use sigma_core::{DedupCluster, SigmaConfig, SigmaError};
use sigma_storage::BackendKind;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Token-bucket parameters of the rate-limit layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Burst capacity (tokens per tenant bucket).
    pub capacity: u64,
    /// Refill rate in tokens per second (`0.0` = hard cap).
    pub refill_per_sec: f64,
}

/// Bounds of the admission-control layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum concurrent in-flight requests across all tenants.
    pub max_inflight_requests: u64,
    /// Maximum total in-flight payload bytes across all tenants.
    pub max_inflight_bytes: u64,
    /// Base retry-after hint in milliseconds for shed requests.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_inflight_requests: 256,
            max_inflight_bytes: 256 << 20,
            retry_after_ms: AdmissionControl::DEFAULT_RETRY_AFTER_MS,
        }
    }
}

/// Parameters of the deficit-round-robin fair-scheduler layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairSchedulerConfig {
    /// Bytes of deficit credit a tenant earns per scheduling round.
    pub quantum_bytes: u64,
    /// Cap on one tenant's concurrently executing payload bytes.
    pub max_tenant_inflight_bytes: u64,
    /// Cap on concurrently executing requests across all tenants.
    pub max_concurrent: u64,
}

impl Default for FairSchedulerConfig {
    fn default() -> Self {
        FairSchedulerConfig {
            quantum_bytes: 256 << 10,
            max_tenant_inflight_bytes: 8 << 20,
            max_concurrent: 8,
        }
    }
}

/// Storage-backend selection for the cluster the stack fronts.
///
/// Unlike the middleware sections this does not add a layer: it is applied
/// to the [`SigmaConfig`] the cluster is built from (see
/// [`ServiceConfig::apply_storage`]), so a deployment's persistence mode
/// lives in the same file as its middleware stack.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageConfig {
    /// Which [`StorageBackend`](sigma_storage::StorageBackend) nodes use.
    pub backend: BackendKind,
    /// Root directory for the `file` backend (one subdirectory per node).
    pub dir: Option<PathBuf>,
}

/// A declarative description of the middleware stack.
///
/// Layers whose section is absent are omitted from the stack; present layers
/// are assembled in the canonical order auth → admission → quota →
/// rate-limit → fair-scheduler → logging.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceConfig {
    /// Per-tenant bearer secrets; non-empty ⇒ auth layer.
    pub auth_tokens: BTreeMap<String, String>,
    /// Per-tenant logical-bytes budgets; non-empty ⇒ quota layer.
    pub quotas: BTreeMap<String, u64>,
    /// Rate-limit parameters; `Some` ⇒ rate-limit layer.
    pub rate_limit: Option<RateLimitConfig>,
    /// Admission-control bounds; `Some` ⇒ admission layer.
    pub admission: Option<AdmissionConfig>,
    /// Fair-scheduler parameters; `Some` ⇒ fair-scheduler layer.
    pub fair_scheduler: Option<FairSchedulerConfig>,
    /// Whether to stack the request-logging/metrics layer.
    pub logging: bool,
    /// Cluster storage-backend selection; `Some` ⇒ apply to the cluster's
    /// [`SigmaConfig`] via [`apply_storage`](Self::apply_storage).
    pub storage: Option<StorageConfig>,
}

impl ServiceConfig {
    /// Parses the TOML-subset text.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] naming the offending line for
    /// syntax errors, unknown sections/keys, and ill-typed values.
    pub fn parse(text: &str) -> Result<ServiceConfig, SigmaError> {
        let mut config = ServiceConfig::default();
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "auth.tokens"
                    | "quota.logical_bytes"
                    | "rate_limit"
                    | "admission"
                    | "fair_scheduler"
                    | "logging"
                    | "storage" => {}
                    other => {
                        return Err(invalid(lineno, &format!("unknown section [{}]", other)));
                    }
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| invalid(lineno, "expected `key = value`"))?;
            let key = unquote(key.trim());
            let value = value.trim();
            match section.as_str() {
                "auth.tokens" => {
                    let token = parse_string(value)
                        .ok_or_else(|| invalid(lineno, "auth token must be a quoted string"))?;
                    config.auth_tokens.insert(key, token);
                }
                "quota.logical_bytes" => {
                    let bytes: u64 = value
                        .parse()
                        .map_err(|_| invalid(lineno, "quota must be an integer byte count"))?;
                    config.quotas.insert(key, bytes);
                }
                "rate_limit" => {
                    let limit = config.rate_limit.get_or_insert(RateLimitConfig {
                        capacity: 0,
                        refill_per_sec: 0.0,
                    });
                    match key.as_str() {
                        "capacity" => {
                            limit.capacity = value
                                .parse()
                                .map_err(|_| invalid(lineno, "capacity must be an integer"))?;
                        }
                        "refill_per_sec" => {
                            let rate: f64 = value
                                .parse()
                                .map_err(|_| invalid(lineno, "refill_per_sec must be a number"))?;
                            if !rate.is_finite() || rate < 0.0 {
                                return Err(invalid(
                                    lineno,
                                    "refill_per_sec must be finite and non-negative",
                                ));
                            }
                            limit.refill_per_sec = rate;
                        }
                        other => {
                            return Err(invalid(
                                lineno,
                                &format!("unknown rate_limit key `{}`", other),
                            ));
                        }
                    }
                }
                "admission" => {
                    let admission = config
                        .admission
                        .get_or_insert_with(AdmissionConfig::default);
                    let bound: u64 = value
                        .parse()
                        .map_err(|_| invalid(lineno, "admission bounds must be integers"))?;
                    match key.as_str() {
                        "max_inflight_requests" => admission.max_inflight_requests = bound,
                        "max_inflight_bytes" => admission.max_inflight_bytes = bound,
                        "retry_after_ms" => admission.retry_after_ms = bound,
                        other => {
                            return Err(invalid(
                                lineno,
                                &format!("unknown admission key `{}`", other),
                            ));
                        }
                    }
                }
                "fair_scheduler" => {
                    let sched = config
                        .fair_scheduler
                        .get_or_insert_with(FairSchedulerConfig::default);
                    let bound: u64 = value.parse().map_err(|_| {
                        invalid(lineno, "fair_scheduler parameters must be integers")
                    })?;
                    match key.as_str() {
                        "quantum_bytes" => sched.quantum_bytes = bound,
                        "max_tenant_inflight_bytes" => sched.max_tenant_inflight_bytes = bound,
                        "max_concurrent" => sched.max_concurrent = bound,
                        other => {
                            return Err(invalid(
                                lineno,
                                &format!("unknown fair_scheduler key `{}`", other),
                            ));
                        }
                    }
                }
                "logging" => match key.as_str() {
                    "enabled" => {
                        config.logging = match value {
                            "true" => true,
                            "false" => false,
                            _ => return Err(invalid(lineno, "enabled must be true or false")),
                        };
                    }
                    other => {
                        return Err(invalid(lineno, &format!("unknown logging key `{}`", other)));
                    }
                },
                "storage" => {
                    let storage = config.storage.get_or_insert_with(StorageConfig::default);
                    match key.as_str() {
                        "backend" => {
                            let name = parse_string(value).ok_or_else(|| {
                                invalid(lineno, "backend must be a quoted string")
                            })?;
                            storage.backend = BackendKind::parse(&name).ok_or_else(|| {
                                invalid(
                                    lineno,
                                    "backend must be \"memory\", \"sim-disk\" or \"file\"",
                                )
                            })?;
                        }
                        "dir" => {
                            let dir = parse_string(value)
                                .ok_or_else(|| invalid(lineno, "dir must be a quoted string"))?;
                            storage.dir = Some(PathBuf::from(dir));
                        }
                        other => {
                            return Err(invalid(
                                lineno,
                                &format!("unknown storage key `{}`", other),
                            ));
                        }
                    }
                }
                "" => return Err(invalid(lineno, "key outside any section")),
                _ => unreachable!("sections are validated on entry"),
            }
        }
        Ok(config)
    }

    /// Converts the description into a [`ServiceBuilder`] with the layers in
    /// canonical order.
    pub fn into_builder(self) -> ServiceBuilder {
        let mut builder = ServiceBuilder::new();
        if !self.auth_tokens.is_empty() {
            let mut auth = TokenAuth::new();
            for (tenant, token) in self.auth_tokens {
                auth = auth.tenant(tenant, token);
            }
            builder = builder.auth(auth);
        }
        if let Some(adm) = self.admission {
            builder = builder.admission(
                AdmissionControl::new(adm.max_inflight_requests, adm.max_inflight_bytes)
                    .with_retry_after_ms(adm.retry_after_ms),
            );
        }
        if !self.quotas.is_empty() {
            let mut quota = TenantQuota::new();
            for (tenant, bytes) in self.quotas {
                quota = quota.budget(tenant, bytes);
            }
            builder = builder.quota(quota);
        }
        if let Some(limit) = self.rate_limit {
            builder = builder.rate_limit(RateLimit::new(limit.capacity, limit.refill_per_sec));
        }
        if let Some(sched) = self.fair_scheduler {
            builder = builder.fair_scheduler(FairScheduler::new(
                sched.quantum_bytes,
                sched.max_tenant_inflight_bytes,
                sched.max_concurrent as usize,
            ));
        }
        if self.logging {
            builder = builder.logging();
        }
        builder
    }

    /// Applies the `[storage]` section (if present) to a [`SigmaConfig`],
    /// returning the config the cluster should be built from.  `backend =
    /// "file"` also turns durability on — a file-backed node without a
    /// write-ahead journal could never recover its on-disk state — mirroring
    /// [`SigmaConfig::builder`]'s `file_storage`.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::InvalidConfig`] when the resulting config fails
    /// validation — in particular `backend = "file"` without a `dir`.
    pub fn apply_storage(&self, mut config: SigmaConfig) -> Result<SigmaConfig, SigmaError> {
        if let Some(storage) = &self.storage {
            config.storage_backend = storage.backend;
            if let Some(dir) = &storage.dir {
                config.storage_root = Some(dir.clone());
            }
            if storage.backend == BackendKind::File {
                config.durability = true;
            }
            config.validate()?;
        }
        Ok(config)
    }

    /// Parses and assembles in one step.
    ///
    /// The `[storage]` section is carried in the parsed description but not
    /// applied here — the cluster already exists; use
    /// [`apply_storage`](Self::apply_storage) before building the cluster
    /// when the config file should pick the persistence mode.
    ///
    /// # Errors
    ///
    /// Propagates [`ServiceConfig::parse`] errors.
    pub fn build(text: &str, cluster: Arc<DedupCluster>) -> Result<ServiceStack, SigmaError> {
        Ok(ServiceConfig::parse(text)?.into_builder().build(cluster))
    }
}

fn invalid(lineno: usize, msg: &str) -> SigmaError {
    SigmaError::InvalidConfig(format!("service config line {}: {}", lineno + 1, msg))
}

/// Drops a trailing `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Accepts both bare and quoted keys.
fn unquote(key: &str) -> String {
    parse_string(key).unwrap_or_else(|| key.to_string())
}

/// `Some(contents)` for a `"quoted string"`, `None` otherwise.
fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    // The subset deliberately has no escape sequences; a stray quote inside
    // would have unbalanced the strip above.
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, RequestEnvelope};
    use sigma_core::{ServiceCode, SigmaConfig};

    const EXAMPLE: &str = r#"
# The reference stack.
[auth.tokens]
acme = "s3cret"      # inline comment
"dash-tenant" = "t2"

[quota.logical_bytes]
acme = 1048576

[rate_limit]
capacity = 10
refill_per_sec = 5.0

[admission]
max_inflight_requests = 32
max_inflight_bytes = 1048576
retry_after_ms = 7

[fair_scheduler]
quantum_bytes = 65536
max_tenant_inflight_bytes = 262144
max_concurrent = 4

[logging]
enabled = true
"#;

    #[test]
    fn parses_the_reference_config() {
        let c = ServiceConfig::parse(EXAMPLE).unwrap();
        assert_eq!(c.auth_tokens["acme"], "s3cret");
        assert_eq!(c.auth_tokens["dash-tenant"], "t2");
        assert_eq!(c.quotas["acme"], 1048576);
        assert_eq!(
            c.rate_limit,
            Some(RateLimitConfig {
                capacity: 10,
                refill_per_sec: 5.0
            })
        );
        assert_eq!(
            c.admission,
            Some(AdmissionConfig {
                max_inflight_requests: 32,
                max_inflight_bytes: 1048576,
                retry_after_ms: 7,
            })
        );
        assert_eq!(
            c.fair_scheduler,
            Some(FairSchedulerConfig {
                quantum_bytes: 65536,
                max_tenant_inflight_bytes: 262144,
                max_concurrent: 4,
            })
        );
        assert!(c.logging);
    }

    #[test]
    fn partial_admission_section_fills_defaults() {
        let c = ServiceConfig::parse("[admission]\nmax_inflight_requests = 9\n").unwrap();
        let adm = c.admission.unwrap();
        assert_eq!(adm.max_inflight_requests, 9);
        assert_eq!(
            adm.max_inflight_bytes,
            AdmissionConfig::default().max_inflight_bytes
        );
        assert_eq!(
            adm.retry_after_ms,
            AdmissionConfig::default().retry_after_ms
        );
    }

    #[test]
    fn builds_the_canonical_stack_order() {
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ));
        let stack = ServiceConfig::build(EXAMPLE, cluster).unwrap();
        assert_eq!(
            stack.middleware_names(),
            vec![
                "auth",
                "admission",
                "quota",
                "rate-limit",
                "fair-scheduler",
                "logging"
            ]
        );
        // And it actually enforces: no token ⇒ unauthorized.
        let resp = stack.call(RequestEnvelope::new(1, "acme", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::Unauthorized);
    }

    #[test]
    fn absent_sections_omit_layers() {
        let stack_desc = ServiceConfig::parse("[logging]\nenabled = true\n").unwrap();
        assert!(stack_desc.auth_tokens.is_empty());
        assert!(stack_desc.rate_limit.is_none());
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            SigmaConfig::default(),
        ));
        let stack = stack_desc.into_builder().build(cluster);
        assert_eq!(stack.middleware_names(), vec!["logging"]);
        let empty = ServiceConfig::parse("").unwrap();
        assert_eq!(empty, ServiceConfig::default());
    }

    #[test]
    fn errors_name_the_line() {
        for (text, needle) in [
            ("[surprise]\n", "unknown section"),
            ("[auth.tokens]\nacme = 42\n", "quoted string"),
            ("[quota.logical_bytes]\nacme = \"many\"\n", "integer"),
            ("[rate_limit]\nburst = 5\n", "unknown rate_limit key"),
            ("[rate_limit]\nrefill_per_sec = -1.0\n", "non-negative"),
            ("[rate_limit]\nrefill_per_sec = inf\n", "non-negative"),
            ("[admission]\nslots = 5\n", "unknown admission key"),
            ("[admission]\nmax_inflight_bytes = lots\n", "integers"),
            (
                "[fair_scheduler]\nweight = 2\n",
                "unknown fair_scheduler key",
            ),
            ("[fair_scheduler]\nquantum_bytes = -3\n", "integers"),
            ("[logging]\nenabled = yes\n", "true or false"),
            ("stray = 1\n", "outside any section"),
            ("[logging]\nnonsense\n", "key = value"),
        ] {
            let err = ServiceConfig::parse(text).unwrap_err();
            match &err {
                SigmaError::InvalidConfig(msg) => {
                    assert!(msg.contains("line"), "{}", msg);
                    assert!(msg.contains(needle), "`{}` missing from `{}`", needle, msg);
                }
                other => panic!("expected InvalidConfig, got {:?}", other),
            }
            assert_eq!(err.code(), ServiceCode::InvalidRequest);
        }
    }

    #[test]
    fn storage_section_parses_and_applies() {
        let c =
            ServiceConfig::parse("[storage]\nbackend = \"file\"\ndir = \"/tmp/sig\"\n").unwrap();
        let storage = c.storage.as_ref().unwrap();
        assert_eq!(storage.backend, sigma_storage::BackendKind::File);
        assert_eq!(
            storage.dir.as_deref(),
            Some(std::path::Path::new("/tmp/sig"))
        );
        let applied = c.apply_storage(SigmaConfig::default()).unwrap();
        assert_eq!(applied.storage_backend, sigma_storage::BackendKind::File);
        assert!(applied.durability, "file backend must imply durability");
        assert!(applied.node_storage_dir(3).unwrap().ends_with("node-3"));

        // Absent section leaves the config untouched.
        let untouched = ServiceConfig::default()
            .apply_storage(SigmaConfig::default())
            .unwrap();
        assert_eq!(
            untouched.storage_backend,
            sigma_storage::BackendKind::SimDisk
        );
        assert!(!untouched.durability);
    }

    #[test]
    fn storage_section_rejects_bad_values() {
        for (text, needle) in [
            ("[storage]\nbackend = \"tape\"\n", "backend must be"),
            ("[storage]\nbackend = file\n", "quoted string"),
            ("[storage]\nmedium = \"file\"\n", "unknown storage key"),
        ] {
            let err = ServiceConfig::parse(text).unwrap_err();
            match &err {
                SigmaError::InvalidConfig(msg) => {
                    assert!(msg.contains(needle), "`{}` missing from `{}`", needle, msg);
                }
                other => panic!("expected InvalidConfig, got {:?}", other),
            }
        }
        // A file backend without a directory fails at apply time.
        let c = ServiceConfig::parse("[storage]\nbackend = \"file\"\n").unwrap();
        let err = c.apply_storage(SigmaConfig::default()).unwrap_err();
        assert!(matches!(err, SigmaError::InvalidConfig(_)));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let c = ServiceConfig::parse("[auth.tokens]\nacme = \"se#ret\"\n").unwrap();
        assert_eq!(c.auth_tokens["acme"], "se#ret");
    }
}
