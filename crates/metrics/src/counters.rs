//! Lock-light operation counters for long-running services.
//!
//! [`OpCounters`] aggregates one operation class (count, errors, bytes in and
//! out, latency sum/max) behind atomics so a hot request path never takes a
//! lock to record an observation; [`MetricsRegistry`] keys a set of counters
//! by operation name and renders consistent snapshots.  The service layer's
//! request-logging middleware feeds these from a [`Stopwatch`](crate::Stopwatch)
//! around each request.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Atomic counters for one operation class.
#[derive(Debug, Default)]
pub struct OpCounters {
    count: AtomicU64,
    errors: AtomicU64,
    request_bytes: AtomicU64,
    response_bytes: AtomicU64,
    latency_nanos_sum: AtomicU64,
    latency_nanos_max: AtomicU64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        OpCounters::default()
    }

    /// Records one completed request: its wall-clock latency, the bytes it
    /// carried in and out, and whether it ended in an error.
    pub fn record(&self, latency: Duration, request_bytes: u64, response_bytes: u64, error: bool) {
        let nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        if error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.request_bytes
            .fetch_add(request_bytes, Ordering::Relaxed);
        self.response_bytes
            .fetch_add(response_bytes, Ordering::Relaxed);
        self.latency_nanos_sum.fetch_add(nanos, Ordering::Relaxed);
        self.latency_nanos_max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    ///
    /// Individual fields are read independently (no global lock), so a
    /// snapshot racing `record` may tear between fields by one observation —
    /// fine for monitoring, by design.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            count: self.count.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            request_bytes: self.request_bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            latency_nanos_sum: self.latency_nanos_sum.load(Ordering::Relaxed),
            latency_nanos_max: self.latency_nanos_max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one operation's counters, with derived figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSnapshot {
    /// Requests observed (successes and errors).
    pub count: u64,
    /// Requests that ended in a non-`Ok` status.
    pub errors: u64,
    /// Total payload bytes carried by requests.
    pub request_bytes: u64,
    /// Total payload bytes carried by responses.
    pub response_bytes: u64,
    /// Sum of request latencies in nanoseconds.
    pub latency_nanos_sum: u64,
    /// Largest single request latency in nanoseconds.
    pub latency_nanos_max: u64,
}

impl OpSnapshot {
    /// Mean request latency in seconds (0 when no requests were observed).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.latency_nanos_sum as f64 / self.count as f64 / 1e9
        }
    }

    /// Largest single request latency in seconds.
    pub fn max_latency_secs(&self) -> f64 {
        self.latency_nanos_max as f64 / 1e9
    }

    /// Fraction of requests that ended in an error (0 when none observed).
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }
}

/// A named set of [`OpCounters`], one per operation class.
///
/// # Example
///
/// ```
/// use sigma_metrics::MetricsRegistry;
/// use std::time::Duration;
///
/// let registry = MetricsRegistry::new();
/// registry
///     .op("backup")
///     .record(Duration::from_millis(2), 4096, 0, false);
/// let snap = registry.snapshot();
/// assert_eq!(snap["backup"].count, 1);
/// assert_eq!(snap["backup"].request_bytes, 4096);
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    ops: RwLock<BTreeMap<String, Arc<OpCounters>>>,
    tenants: RwLock<BTreeMap<String, Arc<crate::TenantCounters>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counters for `name`, created on first use.  The returned handle can
    /// be cached by hot paths to skip the registry lookup entirely.
    pub fn op(&self, name: &str) -> Arc<OpCounters> {
        if let Some(c) = self.ops.read().expect("metrics lock").get(name) {
            return c.clone();
        }
        self.ops
            .write()
            .expect("metrics lock")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Snapshots every operation class, keyed by name.
    pub fn snapshot(&self) -> BTreeMap<String, OpSnapshot> {
        self.ops
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.snapshot()))
            .collect()
    }

    /// The per-tenant counters for `tenant`, created on first use.  Same
    /// caching contract as [`op`](MetricsRegistry::op).
    pub fn tenant(&self, tenant: &str) -> Arc<crate::TenantCounters> {
        if let Some(c) = self.tenants.read().expect("metrics lock").get(tenant) {
            return c.clone();
        }
        self.tenants
            .write()
            .expect("metrics lock")
            .entry(tenant.to_string())
            .or_default()
            .clone()
    }

    /// Reports every tenant observed so far, keyed by tenant name.
    pub fn tenant_reports(&self) -> BTreeMap<String, crate::TenantStatsReport> {
        self.tenants
            .read()
            .expect("metrics lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.report(name)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_and_derive() {
        let c = OpCounters::new();
        c.record(Duration::from_millis(10), 100, 0, false);
        c.record(Duration::from_millis(30), 300, 50, true);
        let s = c.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.request_bytes, 400);
        assert_eq!(s.response_bytes, 50);
        assert!((s.mean_latency_secs() - 0.020).abs() < 1e-6);
        assert!((s.max_latency_secs() - 0.030).abs() < 1e-6);
        assert!((s.error_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_zero_rates() {
        let s = OpCounters::new().snapshot();
        assert_eq!(s.mean_latency_secs(), 0.0);
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s, OpSnapshot::default());
    }

    #[test]
    fn registry_creates_and_reuses_ops() {
        let r = MetricsRegistry::new();
        let a = r.op("backup");
        let b = r.op("backup");
        assert!(
            Arc::ptr_eq(&a, &b),
            "same op name returns the same counters"
        );
        a.record(Duration::from_micros(5), 1, 2, false);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap["backup"].count, 1);
        r.op("restore");
        assert_eq!(r.snapshot().len(), 2);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
        assert_send_sync::<OpCounters>();
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.op("hot");
                    for _ in 0..1000 {
                        c.record(Duration::from_nanos(100), 1, 1, false);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot()["hot"].count, 4000);
    }
}
