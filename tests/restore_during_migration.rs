//! Property tests: restores are byte-identical while a [`Rebalancer`] is
//! mid-flight, and after removing the node that originally stored the chunks.
//!
//! Two properties over deterministically generated payload workloads:
//!
//! * **mid-flight** — back arbitrary overlapping streams up on a small cluster,
//!   then drive a node-removal rebalance *one container at a time*, restoring and
//!   verifying every file between steps.  The forwarding-tombstone hand-off
//!   (publish tombstone, then drop the source copy) means there is no point at
//!   which a chunk is unreachable.
//! * **post-removal** — after the drain completes, remove further nodes so that
//!   restores must follow multi-hop tombstone chains, and verify physical bytes
//!   are conserved by every migration (no chunk duplicated or lost).

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::sync::Arc;

/// Small super-chunks and containers so even a few KB of payload produces
/// several sealed containers to migrate.
fn migration_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .build()
        .expect("valid test config")
}

/// Builds one stream's payload by concatenating blocks from a shared pool, so
/// streams overlap with each other (cluster-wide duplicates cross node borders).
fn compose(blocks: &[Vec<u8>], picks: &[usize]) -> Vec<u8> {
    let mut data = Vec::new();
    for &pick in picks {
        data.extend_from_slice(&blocks[pick % blocks.len()]);
    }
    data
}

/// Backs every composition up as its own file on its own stream; returns
/// `(file_id, expected bytes)` pairs.
fn backup_all(cluster: &Arc<DedupCluster>, datas: &[Vec<u8>]) -> Vec<(u64, Vec<u8>)> {
    let mut files = Vec::new();
    for (stream, data) in datas.iter().enumerate() {
        let client = BackupClient::new(cluster.clone(), stream as u64);
        let report = client
            .backup_bytes(&format!("stream-{stream}"), data)
            .expect("payload backup cannot fail");
        files.push((report.file_id, data.clone()));
    }
    cluster.flush();
    files
}

fn assert_all_restore(cluster: &DedupCluster, files: &[(u64, Vec<u8>)]) {
    for (file_id, expected) in files {
        let restored = cluster
            .restore_file(*file_id)
            .unwrap_or_else(|e| panic!("file {} failed to restore: {}", file_id, e));
        assert_eq!(&restored, expected, "file {} corrupted", file_id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every file restores byte-identically after *each individual* container
    /// migration of a node-removal drain.
    #[test]
    fn restores_stay_intact_mid_migration(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..768),
            1..5,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 1..24),
            1..4,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions
            .iter()
            .map(|picks| compose(&blocks, picks))
            .collect();
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, migration_config()));
        let files = backup_all(&cluster, &datas);
        let physical_before = cluster.stats().physical_bytes;

        // Drain node 0 one container at a time, restoring everything in between.
        let mut rebalancer = cluster.begin_remove_node(0).expect("3-node cluster");
        while rebalancer.step().expect("no faults in this test").is_some() {
            assert_all_restore(&cluster, &files);
        }
        let report = rebalancer.run().expect("no faults in this test");
        prop_assert_eq!(
            cluster.node_by_id(0).expect("retired node stays addressable").storage_usage(),
            0,
            "drain must empty the removed node"
        );
        // Conservation: the drain moved bytes, it did not mint or destroy them.
        prop_assert_eq!(cluster.stats().physical_bytes, physical_before);
        prop_assert!(report.bytes_moved <= physical_before);
        assert_all_restore(&cluster, &files);
    }

    /// After the original node is gone, further removals force multi-hop
    /// forwarding chains; restores still hold and bytes stay conserved.
    #[test]
    fn restores_follow_tombstone_chains_after_repeated_removals(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..768),
            1..4,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..16),
            1..3,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions
            .iter()
            .map(|picks| compose(&blocks, picks))
            .collect();
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, migration_config()));
        let files = backup_all(&cluster, &datas);
        let physical_before = cluster.stats().physical_bytes;

        // Remove the two original nodes in turn: chunks first written to node 0
        // may migrate 0 -> 1 -> 2 and must be restored through the chain.
        cluster.remove_node(0).expect("3 nodes active");
        assert_all_restore(&cluster, &files);
        cluster.remove_node(1).expect("2 nodes active");
        prop_assert_eq!(cluster.node_count(), 1);
        prop_assert_eq!(cluster.stats().physical_bytes, physical_before);
        assert_all_restore(&cluster, &files);
    }
}
