//! Fair-scheduler throughput and fairness under skewed multi-tenant load.
//!
//! Not a figure of the paper — its evaluation is single-tenant — but the
//! number that gates the service layer once many tenants share one cluster:
//! what deficit-round-robin scheduling costs per request, and whether a hot
//! tenant with several times everyone else's client count can buy itself a
//! larger share of the ingest window.
//!
//! The banner sweeps the hot tenant's extra-client count over a small storm
//! (Jain fairness index, hot-tenant share, shed/retry counts); criterion then
//! measures (a) the DRR grant/park/wake machinery alone against a no-op
//! backend, balanced vs. hot-tenant-skewed, and (b) a small end-to-end storm
//! through the full six-layer stack into a real cluster.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_service::middleware::{FairScheduler, ServiceResult};
use sigma_service::{Operation, RequestEnvelope, ResponseEnvelope, ServiceBuilder};
use sigma_simulation::tenant_storm::{run_tenant_storm, TenantStormConfig};
use std::sync::Arc;
use std::thread;

/// The tests' tiny storm shape: 8 tenants, overlap groups of 4, one tenant in
/// four churning, sized so a full run takes well under a second.
fn small_storm(hot_tenant_extra_clients: usize, service_time_us: u64) -> TenantStormConfig {
    TenantStormConfig {
        tenants: 8,
        clients_per_tenant: 2,
        hot_tenant_extra_clients,
        generations: 3,
        initial_payload_bytes: 6 * 1024,
        growth_per_generation: 1024,
        overlap_group: 4,
        churn_every: 4,
        // One ~8 KiB request in flight per tenant keeps every queue refilled,
        // so the fairness figure measures scheduling, not wakeup luck.
        max_tenant_inflight_bytes: 8 << 10,
        service_time_us,
        ..TenantStormConfig::default()
    }
}

fn report() {
    sigma_bench::banner(
        "tenant fairness",
        "DRR scheduling vs. a hot tenant's client-count advantage",
    );
    let mut table = sigma_metrics::report::TextTable::new(vec![
        "hot extras",
        "clients",
        "Jain index",
        "hot share/mean",
        "admitted",
        "shed",
        "restores intact",
    ]);
    for hot_extra in [0usize, 6, 14] {
        let report = run_tenant_storm(&small_storm(hot_extra, 200));
        table.add_row(vec![
            hot_extra.to_string(),
            report.clients.to_string(),
            format!("{:.4}", report.fairness_index),
            format!("{:.3}", report.hot_tenant_share_ratio),
            report.admitted.to_string(),
            report.shed.to_string(),
            format!("{}/{}", report.intact_restores, report.expected_restores),
        ]);
    }
    sigma_bench::print_table(
        "storm fairness vs. hot-tenant skew (8 tenants x 2 clients, 3 generations)",
        &table.render(),
    );
}

/// Immediate success: the scheduler's grant/park/wake machinery is the only
/// cost left in the stack.
fn noop_backend(req: RequestEnvelope) -> ServiceResult {
    Ok(ResponseEnvelope::ok(req.request_id))
}

/// Pushes `reqs_per_client` requests of `payload` bytes from every client
/// thread through a scheduler-only stack into a no-op backend and returns the
/// wall-clock MB/s of payload granted. With `skewed`, half the clients pile
/// onto one hot tenant instead of one tenant each.
fn drive_scheduler(clients: usize, reqs_per_client: usize, payload: usize, skewed: bool) -> f64 {
    let scheduler = Arc::new(FairScheduler::new(8 << 10, 16 << 10, 4));
    let stack = Arc::new(
        ServiceBuilder::new()
            .fair_scheduler_with(scheduler)
            .build_with_backend(Arc::new(noop_backend)),
    );
    let total = (clients * reqs_per_client * payload) as u64;
    let sw = sigma_metrics::Stopwatch::start();
    let workers: Vec<_> = (0..clients)
        .map(|client| {
            let stack = stack.clone();
            thread::spawn(move || {
                // Skewed: half the clients pile onto tenant 0; balanced: one
                // tenant per client.
                let tenant = if skewed && client % 2 == 0 {
                    "tenant-hot".to_string()
                } else {
                    format!("tenant-{client}")
                };
                for req in 0..reqs_per_client {
                    let envelope = RequestEnvelope::new(
                        (client * reqs_per_client + req) as u64,
                        &tenant,
                        Operation::Backup {
                            file_name: format!("c{client}/r{req}"),
                            generation: 0,
                        },
                    )
                    .with_payload(vec![0x5A; payload]);
                    let response = stack.call(envelope);
                    assert!(response.is_ok(), "no-op backend cannot reject");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("scheduler bench client panicked");
    }
    sw.stop(total).mb_per_sec()
}

fn bench(c: &mut Criterion) {
    report();

    let mut group = c.benchmark_group("tenant_fairness");
    group.sample_size(10);

    // Scheduler machinery alone: 8 client threads x 64 requests x 4 KiB
    // against a no-op backend, so grant/park/wake overhead is the cost.
    let (clients, reqs, payload) = (8usize, 64usize, 4 << 10);
    group.throughput(Throughput::Bytes((clients * reqs * payload) as u64));
    for (label, skewed) in [("drr_balanced", false), ("drr_hot_tenant", true)] {
        group.bench_function(label, |b| {
            b.iter(|| drive_scheduler(clients, reqs, payload, skewed));
        });
    }

    // End-to-end: the small storm through the full stack into a real
    // cluster, no service-time floor so the stack itself is what's timed.
    // Bytes are the live logical bytes the storm leaves behind (its
    // deterministic dataset), so MB/s tracks the whole scenario.
    let logical = run_tenant_storm(&small_storm(6, 0)).cluster_logical_bytes;
    group.throughput(Throughput::Bytes(logical.max(1)));
    group.bench_function("storm_full_stack", |b| {
        b.iter(|| run_tenant_storm(&small_storm(6, 0)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
