//! Figure 1: the effect of handprinting on super-chunk resemblance detection.
//!
//! The paper takes the first 8 MB super-chunk of four pairs of files with different
//! degrees of similarity (two Linux kernel versions, two PPT versions, two DOC
//! versions, two HTML versions), chunks them with TTTD (1 K / 2 K / 4 K / 32 K), and
//! compares the *real* resemblance (Jaccard index over all chunk fingerprints) with
//! the resemblance *estimated* from handprints of increasing size.  The estimate
//! approaches the real value as the handprint grows, and even small handprints
//! detect similarity that a single representative fingerprint misses.

use serde::{Deserialize, Serialize};
use sigma_chunking::{Chunker, TttdChunker};
use sigma_core::{jaccard, Handprint};
use sigma_hashkit::{Digest, Fingerprint, Sha1};
use sigma_metrics::report::TextTable;
use sigma_workloads::payload::{random_bytes, versioned_payloads, VersionedPayloadParams};

/// One file pair of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Pair label (e.g. `"linux-kernel"`).
    pub pair: String,
    /// Real resemblance: Jaccard index over the full chunk-fingerprint sets.
    pub real_resemblance: f64,
    /// `(handprint size, estimated resemblance)` series.
    pub estimates: Vec<(usize, f64)>,
}

/// Parameters of the Figure 1 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1Params {
    /// Super-chunk size in bytes (the paper uses 8 MB).
    pub super_chunk_size: usize,
    /// Handprint sizes to evaluate.
    pub max_handprint_exponent: u32,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Fig1Params {
            super_chunk_size: 8 << 20,
            max_handprint_exponent: 9, // up to 512 representative fingerprints
        }
    }
}

/// The four file pairs: `(label, fraction of 4 KB regions rewritten)`.
///
/// The mutation rates are chosen so that the resulting Jaccard resemblances span the
/// range of the paper's four pairs (from ≈0.95 for the kernel pair down to ≈0.25 for
/// the HTML pair).
const PAIRS: [(&str, f64); 4] = [
    ("linux-kernel", 0.02),
    ("doc", 0.20),
    ("ppt", 0.40),
    ("html", 0.60),
];

/// Runs the experiment.
pub fn run(params: Fig1Params) -> Vec<Fig1Row> {
    let chunker = TttdChunker::default();
    let handprint_sizes: Vec<usize> = (0..=params.max_handprint_exponent)
        .map(|e| 1usize << e)
        .collect();

    PAIRS
        .iter()
        .enumerate()
        .map(|(i, (label, mutation_rate))| {
            let versions = versioned_payloads(VersionedPayloadParams {
                seed: 0xf161 + i as u64,
                versions: 2,
                version_size: params.super_chunk_size,
                mutation_rate: *mutation_rate,
            });
            let a = fingerprints(&chunker, &versions[0].1);
            let b = fingerprints(&chunker, &versions[1].1);
            let real = jaccard(&a, &b);
            let estimates = handprint_sizes
                .iter()
                .map(|&k| {
                    let ha = Handprint::from_fingerprints(a.iter().copied(), k);
                    let hb = Handprint::from_fingerprints(b.iter().copied(), k);
                    (k, ha.estimate_resemblance(&hb))
                })
                .collect();
            Fig1Row {
                pair: label.to_string(),
                real_resemblance: real,
                estimates,
            }
        })
        .collect()
}

fn fingerprints(chunker: &TttdChunker, data: &[u8]) -> Vec<Fingerprint> {
    chunker
        .split(data)
        .iter()
        .map(|c| Sha1::fingerprint(c.data()))
        .collect()
}

/// Renders the figure as a text table (one column per handprint size).
pub fn render(rows: &[Fig1Row]) -> String {
    let mut headers = vec!["pair".to_string(), "real r".to_string()];
    if let Some(first) = rows.first() {
        for (k, _) in &first.estimates {
            headers.push(format!("k={}", k));
        }
    }
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for row in rows {
        let mut cells = vec![row.pair.clone(), format!("{:.3}", row.real_resemblance)];
        cells.extend(row.estimates.iter().map(|(_, e)| format!("{:.3}", e)));
        table.add_row(cells);
    }
    table.render()
}

/// A quick self-check used by tests and the bench harness: estimates must approach
/// the real resemblance as the handprint size grows.
pub fn estimates_converge(rows: &[Fig1Row]) -> bool {
    rows.iter().all(|row| {
        let last = row.estimates.last().map(|&(_, e)| e).unwrap_or(0.0);
        let first = row.estimates.first().map(|&(_, e)| e).unwrap_or(0.0);
        // The largest handprint must be a better (or equal) estimator than k = 1,
        // and must land within 0.25 of the real value.
        (last - row.real_resemblance).abs() <= 0.25
            && (last - row.real_resemblance).abs() <= (first - row.real_resemblance).abs() + 1e-9
    })
}

/// Deterministic pseudo-random buffer re-exported for bench warm-ups.
pub fn sample_buffer(len: usize) -> Vec<u8> {
    random_bytes(len, 0xf161)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig1Params {
        Fig1Params {
            super_chunk_size: 1 << 20,
            max_handprint_exponent: 6,
        }
    }

    #[test]
    fn four_pairs_with_decreasing_resemblance() {
        let rows = run(tiny_params());
        assert_eq!(rows.len(), 4);
        for pair in rows.windows(2) {
            assert!(
                pair[0].real_resemblance > pair[1].real_resemblance,
                "{} ({}) should be more similar than {} ({})",
                pair[0].pair,
                pair[0].real_resemblance,
                pair[1].pair,
                pair[1].real_resemblance
            );
        }
        assert!(rows[0].real_resemblance > 0.7);
        assert!(rows[3].real_resemblance < 0.5);
    }

    #[test]
    fn estimates_approach_real_value() {
        let rows = run(tiny_params());
        assert!(estimates_converge(&rows), "{:#?}", rows);
    }

    #[test]
    fn render_contains_all_pairs() {
        let rows = run(Fig1Params {
            super_chunk_size: 256 * 1024,
            max_handprint_exponent: 3,
        });
        let text = render(&rows);
        for (label, _) in PAIRS {
            assert!(text.contains(label));
        }
        assert!(text.contains("k=8"));
    }
}
