//! The deduplication server node.
//!
//! A node receives super-chunks routed to it, identifies duplicate chunks and stores
//! the unique ones in containers.  The intra-node design follows Section 3.3 of the
//! paper:
//!
//! 1. look the super-chunk's representative fingerprints up in the **similarity
//!    index**;
//! 2. **prefetch** the chunk-fingerprint lists of the matched containers into the
//!    chunk-fingerprint cache (one sequential metadata read per container);
//! 3. resolve every chunk fingerprint against the cache; only cache misses may fall
//!    back to the traditional on-disk chunk index (a simulated random disk read), and
//!    that fallback can be disabled entirely for the approximate mode of Fig. 5(b);
//! 4. store unique chunks into the per-stream open container and finally map the
//!    super-chunk's representative fingerprints to that container in the similarity
//!    index.

use crate::{ChunkDescriptor, Handprint, Result, SigmaConfig, SigmaError, SuperChunk};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use sigma_storage::{
    CacheStats, ChunkIndex, ChunkIndexStats, ChunkLocation, ClaimOutcome, Container, ContainerId,
    ContainerStore, ContainerStoreStats, DiskModel, DiskParams, DiskStats, FingerprintCache,
    SimilarityIndex, SimilarityIndexStats, StreamId,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of deduplicating one super-chunk on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SuperChunkReceipt {
    /// Node that processed the super-chunk.
    pub node_id: usize,
    /// Chunks found to be duplicates (not stored again).
    pub duplicate_chunks: u64,
    /// Chunks stored as new unique data.
    pub unique_chunks: u64,
    /// Bytes of duplicate chunks.
    pub duplicate_bytes: u64,
    /// Bytes of unique chunks (what a source-deduplicating client must transfer).
    pub unique_bytes: u64,
    /// Duplicate chunks resolved by the chunk-fingerprint cache.
    pub cache_hits: u64,
    /// Duplicate chunks resolved by the on-disk chunk-index fallback.
    pub index_fallback_hits: u64,
    /// Containers prefetched into the cache for this super-chunk.
    pub containers_prefetched: u64,
}

impl SuperChunkReceipt {
    /// Total chunks in the super-chunk.
    pub fn total_chunks(&self) -> u64 {
        self.duplicate_chunks + self.unique_chunks
    }

    /// Total logical bytes in the super-chunk.
    pub fn logical_bytes(&self) -> u64 {
        self.duplicate_bytes + self.unique_bytes
    }
}

/// Point-in-time statistics of a [`DedupNode`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct NodeStats {
    /// Node identifier.
    pub node_id: usize,
    /// Logical bytes received.
    pub logical_bytes: u64,
    /// Physical bytes stored after deduplication.
    pub physical_bytes: u64,
    /// Total chunks received.
    pub total_chunks: u64,
    /// Unique chunks stored.
    pub unique_chunks: u64,
    /// Super-chunks processed.
    pub super_chunks: u64,
    /// Deduplication ratio (logical / physical); 1.0 when nothing is stored.
    pub dedup_ratio: f64,
    /// Similarity-index statistics.
    pub similarity_index: SimilarityIndexStats,
    /// Chunk-fingerprint cache statistics.
    pub cache: CacheStats,
    /// On-disk chunk-index statistics.
    pub chunk_index: ChunkIndexStats,
    /// Container store statistics.
    pub containers: ContainerStoreStats,
    /// Simulated disk statistics.
    pub disk: DiskStats,
    /// Estimated RAM used by the similarity index, in bytes.
    pub similarity_index_ram_bytes: u64,
    /// Estimated size of the full chunk index, in bytes (what a traditional design
    /// would need to keep hot).
    pub chunk_index_bytes: u64,
}

/// A deduplication server node.
///
/// All methods take `&self`; internal state is protected by striped locks so that
/// multiple backup streams (threads) can be deduplicated in parallel, as in the
/// paper's multi-stream prototype.
///
/// # Example
///
/// ```
/// use sigma_core::{DedupNode, SigmaConfig, SuperChunk};
/// use sigma_hashkit::FingerprintAlgorithm;
///
/// let node = DedupNode::new(0, &SigmaConfig::default());
/// let chunks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 4096]).collect();
/// let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
/// let handprint = sc.handprint(8);
///
/// let first = node.process_super_chunk(0, &sc, &handprint).unwrap();
/// assert_eq!(first.unique_chunks, 4);
/// let second = node.process_super_chunk(0, &sc, &handprint).unwrap();
/// assert_eq!(second.duplicate_chunks, 4);
/// assert!(node.stats().dedup_ratio > 1.9);
/// ```
#[derive(Debug)]
pub struct DedupNode {
    id: usize,
    chunk_index_fallback: bool,
    similarity_index: SimilarityIndex,
    cache: FingerprintCache,
    chunk_index: ChunkIndex,
    store: ContainerStore,
    disk: Arc<DiskModel>,
    logical_bytes: AtomicU64,
    total_chunks: AtomicU64,
    unique_chunks: AtomicU64,
    super_chunks: AtomicU64,
    /// Fingerprints written to the currently open container of each stream; catches
    /// duplicates within the active container before it is sealed.
    open_fingerprints: Mutex<HashMap<StreamId, (ContainerId, HashSet<Fingerprint>)>>,
    /// Forwarding tombstones: containers migrated away by the rebalancer, mapped to
    /// the node that received them.  Chunk-index entries for migrated chunks stay in
    /// place, so a restore that lands here resolves the chunk's container, finds it
    /// gone from the store, and follows the tombstone to the new owner.
    forwarding: RwLock<HashMap<ContainerId, usize>>,
}

impl DedupNode {
    /// Creates a node with identifier `id` configured by `config`.
    pub fn new(id: usize, config: &SigmaConfig) -> Self {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        DedupNode {
            id,
            chunk_index_fallback: config.chunk_index_fallback,
            similarity_index: SimilarityIndex::new(config.similarity_index_locks),
            cache: FingerprintCache::new(config.cache_containers),
            chunk_index: ChunkIndex::with_disk(disk.clone()),
            store: ContainerStore::new(config.container_capacity).with_disk(disk.clone()),
            disk,
            logical_bytes: AtomicU64::new(0),
            total_chunks: AtomicU64::new(0),
            unique_chunks: AtomicU64::new(0),
            super_chunks: AtomicU64::new(0),
            open_fingerprints: Mutex::new(HashMap::new()),
            forwarding: RwLock::new(HashMap::new()),
        }
    }

    /// The node identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Counts how many of a handprint's representative fingerprints this node has in
    /// its similarity index (the resemblance value returned to a pre-routing query,
    /// step 2 of Algorithm 1).
    pub fn resemblance_count(&self, handprint: &Handprint) -> usize {
        self.similarity_index
            .count_matches(handprint.representative_fingerprints())
    }

    /// Counts how many of the given chunk fingerprints this node already stores.
    ///
    /// Used by the *stateful* baseline router, which consults every node's stored
    /// state; the probe does not charge simulated disk I/O (the paper's stateful
    /// scheme keeps a sampled in-RAM index for this purpose).
    pub fn count_stored_fingerprints(&self, fingerprints: &[Fingerprint]) -> usize {
        fingerprints
            .iter()
            .filter(|fp| self.chunk_index.contains_silent(fp))
            .count()
    }

    /// Physical bytes stored on this node (the storage-usage figure used for load
    /// balancing and skew metrics).
    pub fn storage_usage(&self) -> u64 {
        self.store.physical_bytes()
    }

    /// Logical bytes routed to this node so far.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes.load(Ordering::Relaxed)
    }

    /// Deduplicates one super-chunk arriving on `stream`.
    ///
    /// The handprint is passed in (rather than recomputed) because in the real
    /// protocol the backup client computes it once and sends it both to the routing
    /// candidates and to the target node.
    ///
    /// # Errors
    ///
    /// Returns an error if a unique chunk cannot be stored (e.g. it exceeds the
    /// container capacity).
    pub fn process_super_chunk(
        &self,
        stream: StreamId,
        super_chunk: &SuperChunk,
        handprint: &Handprint,
    ) -> Result<SuperChunkReceipt> {
        let mut receipt = SuperChunkReceipt {
            node_id: self.id,
            ..SuperChunkReceipt::default()
        };

        // Step 1 + 2: similarity-index lookup and container prefetch.
        let matched = self
            .similarity_index
            .matched_containers(handprint.representative_fingerprints());
        for cid in &matched {
            if !self.cache.contains_container(*cid) {
                if let Ok(meta) = self.store.read_metadata(cid) {
                    self.cache.insert_container(*cid, meta.fingerprints());
                    receipt.containers_prefetched += 1;
                }
            }
        }

        // Step 3: resolve each chunk.
        let mut first_target: Option<ContainerId> = None;
        for (i, descriptor) in super_chunk.descriptors().iter().enumerate() {
            let resolution = self.resolve_chunk(stream, descriptor, super_chunk.payload(i))?;
            match resolution {
                ChunkResolution::CacheHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.cache_hits += 1;
                }
                ChunkResolution::IndexHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.index_fallback_hits += 1;
                }
                ChunkResolution::OpenContainerHit => {
                    receipt.duplicate_chunks += 1;
                    receipt.duplicate_bytes += descriptor.len as u64;
                    receipt.cache_hits += 1;
                }
                ChunkResolution::Stored(container) => {
                    receipt.unique_chunks += 1;
                    receipt.unique_bytes += descriptor.len as u64;
                    if first_target.is_none() {
                        first_target = Some(container);
                    }
                }
            }
        }

        // Step 4: index the super-chunk's handprint under the container it went to.
        let target = first_target.or_else(|| matched.first().copied());
        if let Some(cid) = target {
            for rfp in handprint.representative_fingerprints() {
                self.similarity_index.insert(*rfp, cid);
            }
        }

        self.logical_bytes
            .fetch_add(super_chunk.logical_size(), Ordering::Relaxed);
        self.total_chunks
            .fetch_add(super_chunk.chunk_count() as u64, Ordering::Relaxed);
        self.unique_chunks
            .fetch_add(receipt.unique_chunks, Ordering::Relaxed);
        self.super_chunks.fetch_add(1, Ordering::Relaxed);
        Ok(receipt)
    }

    /// Deduplicates a batch of super-chunks arriving on `stream`, in order.
    ///
    /// Handprints are computed with `handprint_size` representative fingerprints
    /// each.  This is the node-side half of the cluster's batched ingest entry
    /// points: one call per stream, stream order preserved.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first storage error.
    pub fn process_super_chunk_batch(
        &self,
        stream: StreamId,
        super_chunks: &[SuperChunk],
        handprint_size: usize,
    ) -> Result<Vec<SuperChunkReceipt>> {
        super_chunks
            .iter()
            .map(|sc| self.process_super_chunk(stream, sc, &sc.handprint(handprint_size)))
            .collect()
    }

    fn resolve_chunk(
        &self,
        stream: StreamId,
        descriptor: &ChunkDescriptor,
        payload: Option<&[u8]>,
    ) -> Result<ChunkResolution> {
        let fp = descriptor.fingerprint;

        // 3a: chunk-fingerprint cache (container-locality hits).
        if self.cache.lookup(&fp).is_some() {
            return Ok(ChunkResolution::CacheHit);
        }

        // 3b: fingerprints already written to this stream's open container.
        {
            let open = self.open_fingerprints.lock();
            if let Some((cid, set)) = open.get(&stream) {
                if self.store.open_container(stream) == Some(*cid) && set.contains(&fp) {
                    return Ok(ChunkResolution::OpenContainerHit);
                }
            }
        }

        // An oversized chunk can never be stored, so it must be rejected *before*
        // any claim: if it were claimed first and the store then failed, a
        // concurrent stream racing on the same fingerprint would have seen
        // `Duplicate` and reported a successful backup referencing a chunk that
        // ends up existing nowhere.  Failing here keeps every racer on the same
        // error path the serial client takes.
        if descriptor.len as usize > self.store.container_capacity() {
            return Err(sigma_storage::StorageError::ChunkTooLarge {
                chunk_size: descriptor.len as usize,
                container_capacity: self.store.container_capacity(),
            }
            .into());
        }

        // 3c: optional on-disk chunk-index fallback.  In exact mode the index
        // doubles as the uniqueness arbiter: the fingerprint is *claimed* before
        // the chunk is appended to a container, so of several streams racing on the
        // same new fingerprint exactly one stores it and the rest see a duplicate.
        // This keeps the unique-chunk set — and the node's physical bytes —
        // identical whether super-chunks arrive serially or concurrently.
        if self.chunk_index_fallback {
            match self.chunk_index.claim(fp) {
                ClaimOutcome::Duplicate => return Ok(ChunkResolution::IndexHit),
                ClaimOutcome::Claimed => {}
            }
        }

        // Unique: store it.
        let stored = match payload {
            Some(bytes) => self.store.store_chunk(stream, fp, bytes),
            None => self.store.store_chunk_synthetic(stream, fp, descriptor.len),
        };
        let stored = match stored {
            Ok(stored) => stored,
            Err(e) => {
                if self.chunk_index_fallback {
                    // Roll the claim back so a later, smaller-capacity retry (or
                    // another stream) can store the chunk.
                    self.chunk_index.abandon(&fp);
                }
                return Err(e.into());
            }
        };
        let location = ChunkLocation {
            container: stored.container,
            offset: stored.offset,
            len: stored.len,
        };
        if self.chunk_index_fallback {
            self.chunk_index.finalize(fp, location);
        } else {
            self.chunk_index.insert(fp, location);
        }
        // Track the open container's fingerprints for intra-container duplicate hits.
        {
            let mut open = self.open_fingerprints.lock();
            let entry = open
                .entry(stream)
                .or_insert_with(|| (stored.container, HashSet::new()));
            if entry.0 != stored.container {
                *entry = (stored.container, HashSet::new());
            }
            entry.1.insert(fp);
        }
        Ok(ChunkResolution::Stored(stored.container))
    }

    /// Reads a chunk's payload back (restore path).
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::ChunkMissing`] when the fingerprint is unknown to this
    /// node, [`SigmaError::PayloadUnavailable`] when the chunk was stored in
    /// synthetic (trace-driven) mode, and [`SigmaError::ChunkMigrated`] when the
    /// chunk's container was migrated away by the rebalancer — the error names the
    /// node now holding it, and [`DedupCluster`](crate::DedupCluster) restores
    /// follow that forwarding chain transparently.
    pub fn read_chunk(&self, fingerprint: &Fingerprint) -> Result<Vec<u8>> {
        let location =
            self.chunk_index
                .lookup(fingerprint)
                .ok_or_else(|| SigmaError::ChunkMissing {
                    node: self.id,
                    fingerprint: fingerprint.to_string(),
                })?;
        match self.store.read_chunk(&location.container, fingerprint) {
            Ok(data) => Ok(data),
            Err(sigma_storage::StorageError::ChunkNotInContainer { .. }) => {
                Err(SigmaError::PayloadUnavailable {
                    fingerprint: fingerprint.to_string(),
                })
            }
            Err(sigma_storage::StorageError::ContainerNotFound(cid)) => {
                match self.forwarded_to(&cid) {
                    Some(node) => Err(SigmaError::ChunkMigrated {
                        fingerprint: fingerprint.to_string(),
                        node,
                    }),
                    None => Err(SigmaError::ChunkMissing {
                        node: self.id,
                        fingerprint: fingerprint.to_string(),
                    }),
                }
            }
            Err(e) => Err(e.into()),
        }
    }

    // ---- Elastic-membership support (used by the cluster's `Rebalancer`) ----

    /// Identifiers of every sealed container on this node, sorted ascending.
    pub fn sealed_container_ids(&self) -> Vec<ContainerId> {
        self.store.sealed_container_ids()
    }

    /// Logical data-section size of a sealed container, if it exists.
    pub fn container_data_size(&self, container: &ContainerId) -> Option<usize> {
        self.store.sealed_data_size(container)
    }

    /// Node this container was forwarded to, if it was migrated away.
    pub fn forwarded_to(&self, container: &ContainerId) -> Option<usize> {
        self.forwarding.read().get(container).copied()
    }

    /// Clones a sealed container out of this node for migration (charged to the
    /// disk model as a sequential read).  The container remains readable here until
    /// [`retire_container`](Self::retire_container) completes the hand-off.
    pub fn export_container(&self, container: &ContainerId) -> Option<Container> {
        self.store.export_sealed(container)
    }

    /// Removes and returns the similarity-index entries (representative
    /// fingerprints) pointing at `container`, for re-insertion on the destination
    /// node under the container's new identifier.
    pub fn take_similarity_entries(&self, container: ContainerId) -> Vec<Fingerprint> {
        self.similarity_index.extract_container(container)
    }

    /// Adopts a container migrated from another node.
    ///
    /// The container is re-identified in this node's ID space, every chunk record
    /// is indexed at its new location, and the given representative fingerprints
    /// are mapped to the new container so future similar super-chunks deduplicate
    /// here.  Returns the container's new local identifier.
    pub fn adopt_container(&self, container: Container, rfps: &[Fingerprint]) -> ContainerId {
        let records: Vec<sigma_storage::ChunkRecord> = container.meta().records.clone();
        let new_id = self.store.adopt_sealed(container);
        for record in records {
            self.chunk_index.insert(
                record.fingerprint,
                ChunkLocation {
                    container: new_id,
                    offset: record.offset,
                    len: record.len,
                },
            );
        }
        for rfp in rfps {
            self.similarity_index.insert(*rfp, new_id);
        }
        new_id
    }

    /// Completes the migration of `container` to node `successor`: a forwarding
    /// tombstone is published *before* the container data is dropped, so a restore
    /// racing with the hand-off either still reads the chunk locally or follows
    /// the tombstone — there is no window in which the chunk is unreachable.
    pub fn retire_container(&self, container: ContainerId, successor: usize) {
        self.forwarding.write().insert(container, successor);
        self.store.remove_sealed(&container);
    }

    /// Seals all open containers (end of a backup session).
    pub fn flush(&self) {
        self.store.flush();
        self.open_fingerprints.lock().clear();
    }

    /// The node's deduplication ratio (logical bytes / physical bytes); 1.0 when no
    /// data has been stored.
    pub fn dedup_ratio(&self) -> f64 {
        let physical = self.storage_usage();
        if physical == 0 {
            1.0
        } else {
            self.logical_bytes() as f64 / physical as f64
        }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            node_id: self.id,
            logical_bytes: self.logical_bytes(),
            physical_bytes: self.storage_usage(),
            total_chunks: self.total_chunks.load(Ordering::Relaxed),
            unique_chunks: self.unique_chunks.load(Ordering::Relaxed),
            super_chunks: self.super_chunks.load(Ordering::Relaxed),
            dedup_ratio: self.dedup_ratio(),
            similarity_index: self.similarity_index.stats(),
            cache: self.cache.stats(),
            chunk_index: self.chunk_index.stats(),
            containers: self.store.stats(),
            disk: self.disk.stats(),
            similarity_index_ram_bytes: self.similarity_index.estimated_ram_bytes() as u64,
            chunk_index_bytes: self.chunk_index.estimated_bytes() as u64,
        }
    }
}

enum ChunkResolution {
    CacheHit,
    OpenContainerHit,
    IndexHit,
    Stored(ContainerId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SuperChunkBuilder;
    use sigma_hashkit::{Digest, FingerprintAlgorithm, Sha1};

    fn config() -> SigmaConfig {
        SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(256 * 1024)
            .cache_containers(8)
            .build()
            .unwrap()
    }

    fn payload_super_chunk(seed: u8, chunks: usize, chunk_len: usize) -> SuperChunk {
        let data: Vec<Vec<u8>> = (0..chunks)
            .map(|i| {
                (0..chunk_len)
                    .map(|j| seed.wrapping_add((i * 31 + j) as u8))
                    .collect()
            })
            .collect();
        SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, data)
    }

    fn descriptor_super_chunk(ids: &[u64], len: u32) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.iter()
                .map(|&i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), len))
                .collect(),
        )
    }

    #[test]
    fn unique_then_duplicate_super_chunk() {
        let node = DedupNode::new(3, &config());
        let sc = payload_super_chunk(1, 16, 4096);
        let hp = sc.handprint(8);
        let first = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(first.node_id, 3);
        assert_eq!(first.unique_chunks, 16);
        assert_eq!(first.duplicate_chunks, 0);
        assert_eq!(first.unique_bytes, 16 * 4096);

        let second = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(second.unique_chunks, 0);
        assert_eq!(second.duplicate_chunks, 16);
        assert_eq!(second.total_chunks(), 16);
        assert_eq!(second.logical_bytes(), 16 * 4096);

        let stats = node.stats();
        assert_eq!(stats.logical_bytes, 2 * 16 * 4096);
        assert_eq!(stats.physical_bytes, 16 * 4096);
        assert!((stats.dedup_ratio - 2.0).abs() < 1e-9);
        assert_eq!(stats.super_chunks, 2);
    }

    #[test]
    fn duplicates_within_one_super_chunk_are_caught() {
        let node = DedupNode::new(0, &config());
        // The same chunk id repeated many times inside one super-chunk.
        let sc = descriptor_super_chunk(&[7, 7, 7, 7, 8], 4096);
        let hp = sc.handprint(8);
        let r = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(r.unique_chunks, 2);
        assert_eq!(r.duplicate_chunks, 3);
    }

    #[test]
    fn similarity_only_mode_still_detects_similar_super_chunks() {
        let cfg = SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .chunk_index_fallback(false)
            .cache_containers(8)
            .build()
            .unwrap();
        let node = DedupNode::new(0, &cfg);
        let sc = descriptor_super_chunk(&(0..64).collect::<Vec<u64>>(), 4096);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.flush();
        // The identical super-chunk arrives again: the handprint matches, the
        // container is prefetched, every chunk hits the cache.
        let r = node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(r.duplicate_chunks, 64);
        assert_eq!(r.unique_chunks, 0);
        assert!(r.containers_prefetched >= 1);
    }

    #[test]
    fn similarity_only_mode_misses_dissimilar_duplicates() {
        // Without the chunk-index fallback, duplicates arriving in a super-chunk
        // whose handprint does not match anything go undetected — that is the
        // approximate-dedup trade-off of Fig. 5(b).
        let cfg = SigmaConfig::builder()
            .chunk_index_fallback(false)
            .cache_containers(8)
            .build()
            .unwrap();
        let node = DedupNode::new(0, &cfg);
        // First super-chunk: chunks 0..64.
        let a = descriptor_super_chunk(&(0..64).collect::<Vec<u64>>(), 4096);
        node.process_super_chunk(0, &a, &a.handprint(8)).unwrap();
        node.flush();
        // Second super-chunk shares only one low-similarity chunk and has a disjoint
        // handprint (we force that by computing the handprint from different data).
        let mut ids: Vec<u64> = (1000..1063).collect();
        ids.push(5); // one duplicate chunk hidden among new data
        let b = descriptor_super_chunk(&ids, 4096);
        // Handprint intentionally computed only over the new chunks so it cannot
        // match the stored container.
        let hp_b = Handprint::from_fingerprints(
            ids[..32]
                .iter()
                .map(|i| Sha1::fingerprint(&i.to_le_bytes())),
            8,
        );
        let r = node.process_super_chunk(0, &b, &hp_b).unwrap();
        // The hidden duplicate may or may not be caught via the open container (it is
        // a different container), so in similarity-only mode it is stored again.
        assert_eq!(r.duplicate_chunks, 0);
        assert_eq!(r.unique_chunks, 64);

        // With the fallback enabled the same scenario catches the duplicate.
        let exact = DedupNode::new(1, &SigmaConfig::default());
        exact.process_super_chunk(0, &a, &a.handprint(8)).unwrap();
        exact.flush();
        let r2 = exact.process_super_chunk(0, &b, &hp_b).unwrap();
        assert_eq!(r2.duplicate_chunks, 1);
    }

    #[test]
    fn oversized_chunk_fails_before_claiming_its_fingerprint() {
        let node = DedupNode::new(0, &config());
        // 300 KB chunk vs. 256 KB containers: must fail up front, leaving the
        // fingerprint unclaimed so no racer can mistake it for a duplicate.
        let sc = descriptor_super_chunk(&[7], 300 * 1024);
        let fp = sc.descriptors()[0].fingerprint;
        assert!(node.process_super_chunk(0, &sc, &sc.handprint(4)).is_err());
        assert_eq!(node.count_stored_fingerprints(&[fp]), 0);
        // The same fingerprint with a storable length is still accepted later.
        let ok = SuperChunk::from_descriptors(0, vec![ChunkDescriptor::new(fp, 4096)]);
        let receipt = node.process_super_chunk(0, &ok, &ok.handprint(4)).unwrap();
        assert_eq!(receipt.unique_chunks, 1);
    }

    #[test]
    fn read_back_restores_payloads() {
        let node = DedupNode::new(0, &config());
        let sc = payload_super_chunk(9, 8, 1024);
        let hp = sc.handprint(8);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        node.flush();
        for (i, d) in sc.descriptors().iter().enumerate() {
            let data = node.read_chunk(&d.fingerprint).unwrap();
            assert_eq!(data.as_slice(), sc.payload(i).unwrap());
        }
    }

    #[test]
    fn read_chunk_errors() {
        let node = DedupNode::new(0, &config());
        let missing = Sha1::fingerprint(b"never stored");
        assert!(matches!(
            node.read_chunk(&missing),
            Err(SigmaError::ChunkMissing { .. })
        ));

        // Synthetic chunks have no payload.
        let sc = descriptor_super_chunk(&[1, 2, 3], 512);
        node.process_super_chunk(0, &sc, &sc.handprint(4)).unwrap();
        node.flush();
        assert!(matches!(
            node.read_chunk(&sc.descriptors()[0].fingerprint),
            Err(SigmaError::PayloadUnavailable { .. })
        ));
    }

    #[test]
    fn resemblance_count_reflects_similarity_index() {
        let node = DedupNode::new(0, &config());
        let sc = descriptor_super_chunk(&(0..32).collect::<Vec<u64>>(), 4096);
        let hp = sc.handprint(8);
        assert_eq!(node.resemblance_count(&hp), 0);
        node.process_super_chunk(0, &sc, &hp).unwrap();
        assert_eq!(node.resemblance_count(&hp), 8);
        // A disjoint super-chunk has zero resemblance.
        let other = descriptor_super_chunk(&(100..132).collect::<Vec<u64>>(), 4096);
        assert_eq!(node.resemblance_count(&other.handprint(8)), 0);
    }

    #[test]
    fn count_stored_fingerprints_for_stateful_routing() {
        let node = DedupNode::new(0, &config());
        let sc = descriptor_super_chunk(&(0..16).collect::<Vec<u64>>(), 4096);
        node.process_super_chunk(0, &sc, &sc.handprint(8)).unwrap();
        let probe: Vec<Fingerprint> = (8..24u64)
            .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
            .collect();
        assert_eq!(node.count_stored_fingerprints(&probe), 8);
    }

    #[test]
    fn multi_stream_processing_is_thread_safe() {
        let node = Arc::new(DedupNode::new(0, &config()));
        let mut handles = Vec::new();
        for stream in 0..4u64 {
            let node = node.clone();
            handles.push(std::thread::spawn(move || {
                let mut builder = SuperChunkBuilder::new(32 * 1024);
                let mut supers = Vec::new();
                for i in 0..64u64 {
                    let id = stream * 1000 + i;
                    let d = ChunkDescriptor::new(Sha1::fingerprint(&id.to_le_bytes()), 4096);
                    if let Some(sc) = builder.push_descriptor(d) {
                        supers.push(sc);
                    }
                }
                supers.extend(builder.finish());
                for sc in supers {
                    node.process_super_chunk(stream, &sc, &sc.handprint(8))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = node.stats();
        assert_eq!(stats.total_chunks, 4 * 64);
        assert_eq!(stats.unique_chunks, 4 * 64);
        assert_eq!(stats.physical_bytes, 4 * 64 * 4096);
    }
}
