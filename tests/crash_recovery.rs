//! Property tests for durability and crash recovery.
//!
//! Three properties over deterministically generated workloads:
//!
//! * **boundary sweep** — for a random single-node workload with flush
//!   (acknowledgement) points, kill the node at *every* journal-record boundary
//!   by truncating the journal there and recovering from the prefix.  Every
//!   super-chunk acknowledged before the boundary must read back byte-identical,
//!   and physical bytes must be conserved or strictly reduced — the torn tail is
//!   discarded, never duplicated.
//! * **torn tail** — a cut *inside* a frame (plus a corrupted tail byte) must
//!   recover to exactly the state of the last complete boundary before it.
//! * **mid-rebalance kills** — on a cluster draining a node, arm an in-band
//!   crash at every journal append the drain performs (source tombstones and
//!   destination adopts alike), recover, resume the drain, and verify that no
//!   container was lost or duplicated and every acknowledged file restores
//!   byte-identically through an intact tombstone chain.
//!
//! On failure, the journals under test are left in `target/fault-artifacts/`
//! (the CI `faults` job uploads them); on success the artifacts are removed.
//! `SIGMA_FAULT_SEED` perturbs the workload seeds so a CI seed matrix explores
//! different workloads with the same deterministic harness.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// Extra seed from the environment so a CI matrix varies the workloads.
fn env_seed() -> u64 {
    std::env::var("SIGMA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

fn durable_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .durability(true)
        .build()
        .expect("valid test config")
}

/// Deterministic pseudo-random payload, perturbed by `SIGMA_FAULT_SEED`.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = (seed ^ env_seed().wrapping_mul(0x9E37_79B9)).wrapping_mul(0x2545_F491) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

// ---- failure artifacts ----

fn artifact_path(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/fault-artifacts");
    std::fs::create_dir_all(&dir).expect("artifact dir is creatable");
    dir.join(format!("{name}.journal"))
}

/// Saves the journal image a failing case was recovering from; `clear` removes
/// it once the case passed, so a failed run leaves exactly the failing image.
fn save_artifact(name: &str, bytes: &[u8]) {
    std::fs::write(artifact_path(name), bytes).expect("artifact is writable");
}

fn clear_artifact(name: &str) {
    let _ = std::fs::remove_file(artifact_path(name));
}

// ---- boundary sweep ----

/// One acknowledged round: the super-chunks flushed together, with the journal
/// frame count at the acknowledgement point.
struct AckedRound {
    super_chunks: Vec<SuperChunk>,
    /// Journal byte offset of the acknowledgement (all frames ≤ this offset).
    ack_offset: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery at every journal-record boundary restores exactly the
    /// acknowledged prefix of the workload.
    #[test]
    fn recovery_at_every_boundary_restores_acked_data(
        rounds in proptest::collection::vec(
            proptest::collection::vec(64usize..1500, 1..4),
            1..4,
        ),
        stream_count in 1u64..3,
    ) {
        let config = durable_config();
        let node = DedupNode::new(0, &config);
        let journal = node.journal().expect("durable node").clone();

        let mut acked: Vec<AckedRound> = Vec::new();
        for (round_no, round) in rounds.iter().enumerate() {
            let mut super_chunks = Vec::new();
            for (sc_no, &chunk_len) in round.iter().enumerate() {
                let chunks = 1 + chunk_len % 5;
                let payloads: Vec<Vec<u8>> = (0..chunks)
                    .map(|i| payload(chunk_len, (round_no * 1000 + sc_no * 10 + i) as u64))
                    .collect();
                let stream = (sc_no as u64) % stream_count;
                let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, payloads);
                node.process_super_chunk(stream, &sc, &sc.handprint(4)).unwrap();
                super_chunks.push(sc);
            }
            node.try_flush().unwrap();
            acked.push(AckedRound {
                super_chunks,
                ack_offset: journal.len_bytes(),
            });
        }

        let bytes = journal.bytes();
        let boundaries = journal.frame_boundaries();
        let final_physical = node.storage_usage();
        let mut last_physical = 0u64;
        // Boundary 0 (empty journal) plus after every complete frame.
        for cut in std::iter::once(0).chain(boundaries.iter().copied()) {
            save_artifact("boundary-sweep", &bytes[..cut]);
            let (recovered, report) =
                DedupNode::recover(0, &config, Arc::new(Journal::from_bytes(bytes[..cut].to_vec())))
                    .unwrap();
            prop_assert_eq!(report.bytes_discarded, 0, "cuts are at boundaries");
            // Acknowledged super-chunks are served byte-identically.
            for round in acked.iter().filter(|r| r.ack_offset <= cut) {
                for sc in &round.super_chunks {
                    for (i, d) in sc.descriptors().iter().enumerate() {
                        prop_assert_eq!(
                            recovered.read_chunk(&d.fingerprint).unwrap(),
                            sc.payload(i).unwrap().to_vec(),
                            "acked chunk must survive a crash at offset {}", cut
                        );
                    }
                }
            }
            // Conserved or strictly reduced — never duplicated.
            let physical = recovered.storage_usage();
            prop_assert!(physical <= final_physical);
            prop_assert!(physical >= last_physical, "replay is monotone over the log");
            last_physical = physical;
            recovered.verify_consistency().unwrap();
        }
        prop_assert_eq!(last_physical, final_physical, "full replay loses nothing");
        clear_artifact("boundary-sweep");
    }

    /// Boundary sweep over a journal that ends in garbage-collection records:
    /// recovery at every boundary is consistent, survivors stay readable from
    /// their acknowledgement on, and the final boundary reproduces the post-GC
    /// state exactly — collected chunks can neither resurrect (physical bytes
    /// monotonically *decrease* over the GC suffix) nor take survivors with
    /// them.
    #[test]
    fn recovery_at_gc_record_boundaries_converges(
        rounds in proptest::collection::vec(
            proptest::collection::vec(64usize..1200, 1..4),
            2..5,
        ),
        survivor_mask in 0u64..u64::MAX,
        threshold in 0.3f64..1.0,
    ) {
        let config = SigmaConfig::builder()
            .super_chunk_size(4 * 1024)
            .chunker(ChunkerParams::fixed(512))
            .container_capacity(8 * 1024)
            .cache_containers(4)
            .durability(true)
            .gc_liveness_threshold(threshold)
            .build()
            .expect("valid test config");
        let node = DedupNode::new(0, &config);
        let journal = node.journal().expect("durable node").clone();

        // Acknowledged ingest: every round flushed.
        let mut all: Vec<SuperChunk> = Vec::new();
        for (round_no, round) in rounds.iter().enumerate() {
            for (sc_no, &chunk_len) in round.iter().enumerate() {
                let payloads: Vec<Vec<u8>> = (0..1 + chunk_len % 4)
                    .map(|i| payload(chunk_len, (90_000 + round_no * 1000 + sc_no * 10 + i) as u64))
                    .collect();
                let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, payloads);
                node.process_super_chunk((sc_no % 2) as u64, &sc, &sc.handprint(4)).unwrap();
                all.push(sc);
            }
            node.try_flush().unwrap();
        }
        let ingest_end = journal.len_bytes();

        // Retention: a random subset of super-chunks survives; the rest are
        // "deleted backups" whose chunks become garbage.  Survivor chunks are
        // marked at the container the index resolves them to — exactly what the
        // cluster mark phase hands the node.
        let survivors: Vec<&SuperChunk> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| survivor_mask & (1 << (i % 63)) != 0)
            .map(|(_, sc)| sc)
            .collect();
        let mut live: std::collections::HashMap<
            ContainerId,
            std::collections::HashSet<Fingerprint>,
        > = std::collections::HashMap::new();
        for sc in &survivors {
            for d in sc.descriptors() {
                let loc = node.chunk_location(&d.fingerprint).expect("acked chunk is indexed");
                live.entry(loc.container).or_default().insert(d.fingerprint);
            }
        }
        node.note_recipe_deleted(0xDEAD);
        node.sweep_garbage(&live, threshold).unwrap();
        let physical_after_gc = node.storage_usage();

        let bytes = journal.bytes();
        let boundaries = journal.frame_boundaries();
        let mut last_physical: Option<u64> = None;
        for cut in boundaries.iter().copied().filter(|&b| b >= ingest_end) {
            save_artifact("gc-boundary-sweep", &bytes[..cut]);
            let (recovered, report) =
                DedupNode::recover(0, &config, Arc::new(Journal::from_bytes(bytes[..cut].to_vec())))
                    .unwrap();
            prop_assert_eq!(report.bytes_discarded, 0, "cuts are at boundaries");
            // Survivors are acked before the GC window: readable at every cut.
            for sc in &survivors {
                for (i, d) in sc.descriptors().iter().enumerate() {
                    prop_assert_eq!(
                        recovered.read_chunk(&d.fingerprint).unwrap(),
                        sc.payload(i).unwrap().to_vec(),
                        "live chunk lost at offset {}", cut
                    );
                }
            }
            // Over the GC suffix physical bytes only ever shrink: a replayed
            // drop/compact cannot resurrect collected data.
            let physical = recovered.storage_usage();
            if let Some(last) = last_physical {
                prop_assert!(physical <= last, "GC replay must be monotone decreasing");
            }
            prop_assert!(physical >= physical_after_gc);
            last_physical = Some(physical);
            recovered.verify_consistency().unwrap();
        }
        prop_assert_eq!(
            last_physical.expect("at least the pre-GC boundary exists"),
            physical_after_gc,
            "full replay converges to the post-GC state"
        );
        clear_artifact("gc-boundary-sweep");
    }

    /// A torn or corrupted tail recovers to the last complete boundary — the
    /// torn suffix is discarded wholesale, never half-applied.
    #[test]
    fn torn_tails_recover_to_the_previous_boundary(
        chunk_lens in proptest::collection::vec(64usize..1200, 4..16),
        cut_fraction in 0.05f64..0.95,
    ) {
        let config = durable_config();
        let node = DedupNode::new(0, &config);
        for (i, &len) in chunk_lens.iter().enumerate() {
            let sc = SuperChunk::from_payloads(
                FingerprintAlgorithm::Sha1,
                0,
                vec![payload(len, 5000 + i as u64)],
            );
            node.process_super_chunk(0, &sc, &sc.handprint(2)).unwrap();
        }
        node.try_flush().unwrap();
        let journal = node.journal().unwrap();
        let bytes = journal.bytes();
        let boundaries = journal.frame_boundaries();

        // A cut strictly inside some frame.
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).clamp(1, bytes.len() - 1);
        let reference_cut = boundaries
            .iter()
            .copied()
            .take_while(|&b| b <= cut)
            .last()
            .unwrap_or(0);
        save_artifact("torn-tail", &bytes[..cut]);

        let (torn, torn_report) =
            DedupNode::recover(0, &config, Arc::new(Journal::from_bytes(bytes[..cut].to_vec())))
                .unwrap();
        let (reference, _) = DedupNode::recover(
            0,
            &config,
            Arc::new(Journal::from_bytes(bytes[..reference_cut].to_vec())),
        )
        .unwrap();
        prop_assert_eq!(torn_report.bytes_discarded as usize, cut - reference_cut);
        prop_assert_eq!(torn.storage_usage(), reference.storage_usage());
        prop_assert_eq!(torn.sealed_container_ids(), reference.sealed_container_ids());
        torn.verify_consistency().unwrap();

        // Corrupting a byte of the tail frame is equivalent to tearing it.
        if cut < bytes.len() {
            let mut corrupt = bytes.clone();
            let target = reference_cut + (cut - reference_cut) / 2;
            corrupt.truncate(cut);
            if target < corrupt.len() {
                corrupt[target] ^= 0x5A;
                let (after_corruption, _) = DedupNode::recover(
                    0,
                    &config,
                    Arc::new(Journal::from_bytes(corrupt)),
                )
                .unwrap();
                prop_assert!(after_corruption.storage_usage() <= reference.storage_usage());
                after_corruption.verify_consistency().unwrap();
            }
        }
        clear_artifact("torn-tail");
    }
}

// ---- file-backend boundary sweep ----

/// A unique scratch directory for one test case, removed on success.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

fn durable_file_config(root: &std::path::Path) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .file_storage(root)
        .build()
        .expect("valid test config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The boundary sweep of `recovery_at_every_boundary_restores_acked_data`,
    /// re-run against the real-file backend: the node directory's actual
    /// `journal.wal` is truncated at every frame boundary (plus one cut strictly
    /// inside a frame), the node is re-opened from the directory with
    /// [`DedupNode::recover_from_dir`], and the recovered state must match a
    /// volatile recovery from the same journal prefix bit-for-bit — acked
    /// chunks byte-identical, same physical bytes, same report counters.
    #[test]
    fn file_backend_recovery_sweep_matches_volatile(
        rounds in proptest::collection::vec(
            proptest::collection::vec(64usize..1200, 1..4),
            1..4,
        ),
        cut_fraction in 0.05f64..0.95,
    ) {
        let root = scratch_dir("file-sweep");
        let config = durable_file_config(&root);

        // Drive the workload on a file-backed node; every round acknowledged.
        let mut acked: Vec<AckedRound> = Vec::new();
        {
            let node = DedupNode::new(0, &config);
            let journal = node.journal().expect("durable node").clone();
            for (round_no, round) in rounds.iter().enumerate() {
                let mut super_chunks = Vec::new();
                for (sc_no, &chunk_len) in round.iter().enumerate() {
                    let payloads: Vec<Vec<u8>> = (0..1 + chunk_len % 5)
                        .map(|i| payload(chunk_len, (70_000 + round_no * 1000 + sc_no * 10 + i) as u64))
                        .collect();
                    let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, payloads);
                    node.process_super_chunk((sc_no % 2) as u64, &sc, &sc.handprint(4)).unwrap();
                    super_chunks.push(sc);
                }
                node.try_flush().unwrap();
                acked.push(AckedRound { super_chunks, ack_offset: journal.len_bytes() });
            }
        }
        // The node and its journal handle are gone; only the directory remains.
        let node_dir = config.node_storage_dir(0).expect("file backend has a dir");
        let journal_path = node_dir.join("journal.wal");
        let bytes = std::fs::read(&journal_path).expect("journal file exists");
        let container_files: Vec<(std::ffi::OsString, Vec<u8>)> = std::fs::read_dir(&node_dir)
            .unwrap()
            .filter_map(|e| {
                let e = e.unwrap();
                let name = e.file_name();
                name.to_string_lossy()
                    .starts_with("container-")
                    .then(|| (name.clone(), std::fs::read(e.path()).unwrap()))
            })
            .collect();
        let boundaries = Journal::from_bytes(bytes.clone()).frame_boundaries();
        let torn_cut = ((bytes.len() as f64 * cut_fraction) as usize).clamp(1, bytes.len() - 1);

        for cut in std::iter::once(0)
            .chain(boundaries.iter().copied())
            .chain(std::iter::once(torn_cut))
        {
            // Simulate the crash against the real medium: the directory holds
            // every container file the full run produced (recovery must sweep
            // the orphans) and a journal truncated — possibly mid-frame — at
            // the kill point.
            let crash_root = scratch_dir("file-sweep-cut");
            let crash_config = durable_file_config(&crash_root);
            let crash_dir = crash_config.node_storage_dir(0).unwrap();
            std::fs::create_dir_all(&crash_dir).unwrap();
            for (name, data) in &container_files {
                std::fs::write(crash_dir.join(name), data).unwrap();
            }
            std::fs::write(crash_dir.join("journal.wal"), &bytes[..cut]).unwrap();

            let (from_disk, disk_report) =
                DedupNode::recover_from_dir(0, &crash_config).expect("directory is recoverable");
            let (volatile, volatile_report) = DedupNode::recover(
                0,
                &durable_config(),
                Arc::new(Journal::from_bytes(bytes[..cut].to_vec())),
            )
            .unwrap();

            // Equivalence: the medium must be invisible to recovery.
            prop_assert_eq!(disk_report.bytes_replayed, volatile_report.bytes_replayed);
            prop_assert_eq!(disk_report.bytes_discarded, volatile_report.bytes_discarded);
            prop_assert_eq!(disk_report.containers_recovered, volatile_report.containers_recovered);
            prop_assert_eq!(disk_report.chunks_indexed, volatile_report.chunks_indexed);
            prop_assert_eq!(from_disk.storage_usage(), volatile.storage_usage());
            prop_assert_eq!(from_disk.sealed_container_ids(), volatile.sealed_container_ids());

            // Acked data is served byte-identically off the real files.
            for round in acked.iter().filter(|r| r.ack_offset <= cut) {
                for sc in &round.super_chunks {
                    for (i, d) in sc.descriptors().iter().enumerate() {
                        prop_assert_eq!(
                            from_disk.read_chunk(&d.fingerprint).unwrap(),
                            sc.payload(i).unwrap().to_vec(),
                            "acked chunk must survive a file-backend crash at offset {}", cut
                        );
                    }
                }
            }
            // Consistency now includes the backend cross-check: on-disk
            // container bytes must equal the in-memory accounting, so the
            // orphan sweep must have removed containers from beyond the cut.
            from_disk.verify_consistency().unwrap();
            std::fs::remove_dir_all(&crash_root).unwrap();
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}

// ---- mid-rebalance kills ----

/// Backs three overlapping streams up on a durable 3-node cluster and
/// acknowledges them; returns the cluster and ground truth.
fn acked_cluster(case: u64) -> (Arc<DedupCluster>, Vec<(u64, Vec<u8>)>) {
    let cluster = Arc::new(DedupCluster::with_similarity_router(3, durable_config()));
    let mut files = Vec::new();
    // Shared blocks so streams overlap (cluster-wide duplicates cross nodes).
    let blocks: Vec<Vec<u8>> = (0..4u64).map(|b| payload(700, case * 100 + b)).collect();
    for stream in 0..3u64 {
        let mut data = Vec::new();
        for pick in 0..6u64 {
            data.extend_from_slice(&blocks[((stream + pick) % 4) as usize]);
            data.extend_from_slice(&payload(300, case * 1000 + stream * 10 + pick));
        }
        let client = BackupClient::new(cluster.clone(), stream);
        let report = client
            .backup_bytes(&format!("stream-{stream}"), &data)
            .expect("payload backup cannot fail");
        files.push((report.file_id, data));
    }
    cluster.try_flush().expect("no fault armed yet");
    (cluster, files)
}

fn assert_all_restore(cluster: &DedupCluster, files: &[(u64, Vec<u8>)]) {
    for (file_id, expected) in files {
        let restored = cluster
            .restore_file(*file_id)
            .unwrap_or_else(|e| panic!("file {file_id} failed to restore: {e}"));
        assert_eq!(&restored, expected, "file {} corrupted", file_id);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Killing the drain at *every* journal append it performs — destination
    /// adopts and source tombstones alike, torn and clean — never loses or
    /// duplicates a container: after recovery and a resumed drain, physical
    /// bytes are exactly conserved and every file restores through an intact
    /// tombstone chain.
    #[test]
    fn mid_rebalance_kills_never_lose_or_duplicate(case in 0u64..1000) {
        // Profile the drain fault-free: how many appends each node performs.
        let baseline = {
            let (cluster, files) = acked_cluster(case);
            let before: Vec<u64> = (0..3)
                .map(|id| cluster.node_by_id(id).unwrap().journal().unwrap().next_seq())
                .collect();
            cluster.remove_node(0).expect("no fault armed");
            assert_all_restore(&cluster, &files);
            let spans: Vec<(u64, u64)> = (0..3)
                .map(|id| {
                    let after = cluster.node_by_id(id).unwrap().journal().unwrap().next_seq();
                    (before[id], after)
                })
                .collect();
            (cluster.stats().physical_bytes, spans)
        };
        let (physical_expected, spans) = baseline;

        // Now kill at every append of every node inside the drain window.
        for (victim, &(start, end)) in spans.iter().enumerate() {
            for seq in start..end {
                let mode = if (seq + case) % 2 == 0 { CrashMode::Torn } else { CrashMode::Clean };
                let (cluster, files) = acked_cluster(case);
                let node = cluster.node_by_id(victim).unwrap();
                let journal = node.journal().unwrap().clone();
                save_artifact("mid-rebalance", &journal.bytes());
                journal.arm_crash_at_seq(seq, mode);

                match cluster.remove_node(0) {
                    Ok(_) => {
                        // The workload is deterministic, so the armed append
                        // must have fired inside the drain.
                        prop_assert!(
                            !cluster.crashed_nodes().is_empty() || journal.next_seq() <= seq,
                            "armed seq {} on node {} never fired", seq, victim
                        );
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(
                                e,
                                SigmaError::Storage(
                                    StorageError::Crashed
                                )
                            ),
                            "drain failed for a non-crash reason: {}", e
                        );
                    }
                }
                if !cluster.crashed_nodes().is_empty() {
                    save_artifact("mid-rebalance", &journal.bytes());
                    let report = cluster.restart_node(victim).expect("recoverable");
                    prop_assert_eq!(report.node_id, victim);
                    // Finish the interrupted removal.
                    cluster
                        .resume_drain(0)
                        .expect("node 0 is retired")
                        .run()
                        .expect("resumed drain cannot crash again");
                }

                // The drained node is empty, bytes are exactly conserved (no
                // container lost, none duplicated), restores follow the chain.
                prop_assert_eq!(
                    cluster.node_by_id(0).unwrap().storage_usage(),
                    0,
                    "victim {} seq {}: drain must complete", victim, seq
                );
                prop_assert_eq!(
                    cluster.stats().physical_bytes,
                    physical_expected,
                    "victim {} seq {} ({:?}): bytes not conserved", victim, seq, mode
                );
                assert_all_restore(&cluster, &files);
                for id in 0..3 {
                    cluster
                        .node_by_id(id)
                        .unwrap()
                        .verify_consistency()
                        .unwrap();
                }
            }
        }
        clear_artifact("mid-rebalance");
    }
}

/// A caller that re-runs an already-executed drain plan (lost acknowledgement,
/// confused supervisor) must not double-adopt: overlapping executions converge
/// to the same conserved state.
#[test]
fn replayed_drain_plans_cannot_double_adopt() {
    let (cluster, files) = acked_cluster(42);
    let physical_before = cluster.stats().physical_bytes;

    let first = cluster.begin_remove_node(0).expect("3-node cluster");
    let planned = first.remaining();
    assert!(planned > 0);
    first.run().expect("no faults armed");

    // "Retry" the removal wholesale: the node is already retired, so the resume
    // path re-plans — and must find nothing left to move.
    let retry = cluster.resume_drain(0).expect("node 0 is retired");
    let report = retry.run().expect("no faults armed");
    assert_eq!(report.containers_moved, 0, "nothing left to re-migrate");

    assert_eq!(cluster.stats().physical_bytes, physical_before, "conserved");
    for (file_id, expected) in &files {
        assert_eq!(&cluster.restore_file(*file_id).unwrap(), expected);
    }
}

// ---- multi-tenant delete + GC crash window ----

use sigma_dedupe::service::backend::FILE_ID_KEY;
use sigma_dedupe::service::Backend;

/// Ground truth for one tenant-tagged acknowledged backup.
struct TenantFile {
    tenant: &'static str,
    file_id: u64,
    generation: u64,
    data: Vec<u8>,
}

/// Two tenants with overlapping payloads on a durable 3-node cluster, backed
/// up through the tenant-tagging [`BackupService`] and acknowledged; returns
/// the cluster, the service and per-file ground truth.
fn tenant_acked_cluster(case: u64) -> (Arc<DedupCluster>, Arc<BackupService>, Vec<TenantFile>) {
    let config = SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .durability(true)
        // Maximal reclaim: any container with a dead byte is compacted, so
        // the expiry window is guaranteed to append GC records to sweep over.
        .gc_liveness_threshold(1.0)
        .build()
        .expect("valid test config");
    let cluster = Arc::new(DedupCluster::with_similarity_router(3, config));
    let service = Arc::new(BackupService::new(cluster.clone()));
    // Shared blocks: the tenants' files deduplicate against each other, so
    // one tenant's expiry churns containers holding the other's chunks.
    let blocks: Vec<Vec<u8>> = (0..4u64).map(|b| payload(700, case * 77 + b)).collect();
    let mut files = Vec::new();
    let mut request_id = 1u64;
    for (t, tenant) in ["alpha", "beta"].into_iter().enumerate() {
        for generation in 0..2u64 {
            let mut data = Vec::new();
            for pick in 0..8u64 {
                data.extend_from_slice(&blocks[((pick + generation) % 4) as usize]);
                data.extend_from_slice(&payload(
                    1200,
                    case * 1000 + (t as u64) * 100 + generation * 10 + pick,
                ));
            }
            let resp = service
                .call(
                    RequestEnvelope::new(
                        request_id,
                        tenant,
                        Operation::Backup {
                            file_name: format!("{tenant}-g{generation}"),
                            generation,
                        },
                    )
                    .with_payload(data.clone()),
                )
                .expect("acked backup cannot fail");
            request_id += 1;
            files.push(TenantFile {
                tenant,
                file_id: resp.metadata_u64(FILE_ID_KEY).expect("backup returns id"),
                generation,
                data,
            });
        }
    }
    cluster.try_flush().expect("no fault armed yet");
    (cluster, service, files)
}

/// Alpha's generation 0 is expired; everything else must survive, and the
/// per-tenant live bytes must still partition the cluster's logical total.
fn assert_tenant_state(
    cluster: &DedupCluster,
    service: &BackupService,
    files: &[TenantFile],
    request_id: &mut u64,
) {
    for file in files {
        *request_id += 1;
        let resp = service.call(RequestEnvelope::new(
            *request_id,
            file.tenant,
            Operation::Restore {
                file_id: file.file_id,
            },
        ));
        if file.tenant == "alpha" && file.generation == 0 {
            assert!(
                matches!(resp, Err(SigmaError::FileNotFound(_))),
                "expired file {} must stay expired",
                file.file_id
            );
        } else {
            let resp = resp.unwrap_or_else(|e| {
                panic!(
                    "{} file {} failed to restore: {}",
                    file.tenant, file.file_id, e
                )
            });
            assert_eq!(
                resp.payload, file.data,
                "{} file {} corrupted by alpha's churn",
                file.tenant, file.file_id
            );
        }
    }
    let live_sum: u64 = service
        .tenant_stats()
        .values()
        .map(|r| r.live_logical_bytes)
        .sum();
    assert_eq!(
        live_sum,
        cluster.stats().logical_bytes,
        "per-tenant live bytes must partition the cluster total"
    );
    for id in 0..3 {
        cluster
            .node_by_id(id)
            .unwrap()
            .verify_consistency()
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Killing a node at every journal append inside one tenant's expiry
    /// window (delete generation + mark-and-sweep) converges, after recovery
    /// and one re-run of the sweep, to the fault-free end state — with the
    /// *other* tenant's files byte-identical throughout and per-tenant
    /// accounting still partitioning the cluster.
    #[test]
    fn tenant_expiry_crash_window_preserves_other_tenants(case in 0u64..1000) {
        // Fault-free baseline: end-state physical bytes plus the journal
        // window the delete + sweep spans on each node.
        let (physical_expected, spans) = {
            let (cluster, service, files) = tenant_acked_cluster(case);
            let before: Vec<u64> = (0..3)
                .map(|id| cluster.node_by_id(id).unwrap().journal().unwrap().next_seq())
                .collect();
            let mut request_id = 1000u64;
            service
                .call(RequestEnvelope::new(
                    request_id,
                    "alpha",
                    Operation::DeleteGeneration { generation: 0 },
                ))
                .expect("generation exists");
            service
                .call(RequestEnvelope::new(request_id + 1, "alpha", Operation::CollectGarbage))
                .expect("no fault armed");
            assert_tenant_state(&cluster, &service, &files, &mut request_id);
            let spans: Vec<(u64, u64)> = (0..3)
                .map(|id| {
                    let after = cluster.node_by_id(id).unwrap().journal().unwrap().next_seq();
                    (before[id], after)
                })
                .collect();
            (cluster.stats().physical_bytes, spans)
        };
        prop_assert!(
            spans.iter().any(|&(start, end)| end > start),
            "the expiry window must append journal records to sweep over"
        );

        for (victim, &(start, end)) in spans.iter().enumerate() {
            for seq in start..end {
                let mode = if (seq + case) % 2 == 0 { CrashMode::Torn } else { CrashMode::Clean };
                let (cluster, service, files) = tenant_acked_cluster(case);
                let journal = cluster.node_by_id(victim).unwrap().journal().unwrap().clone();
                save_artifact("tenant-expiry", &journal.bytes());
                journal.arm_crash_at_seq(seq, mode);

                let mut request_id = 2000u64;
                // The deletion is director state: it succeeds even if its
                // journal audit record fires the armed crash (swallowed).
                service
                    .call(RequestEnvelope::new(
                        request_id,
                        "alpha",
                        Operation::DeleteGeneration { generation: 0 },
                    ))
                    .expect("generation exists");
                match service.call(RequestEnvelope::new(
                    request_id + 1,
                    "alpha",
                    Operation::CollectGarbage,
                )) {
                    Ok(_) => {
                        prop_assert!(
                            !cluster.crashed_nodes().is_empty() || journal.next_seq() <= seq,
                            "armed seq {} on node {} never fired", seq, victim
                        );
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(e, SigmaError::Storage(StorageError::Crashed)),
                            "sweep failed for a non-crash reason: {}", e
                        );
                    }
                }
                if !cluster.crashed_nodes().is_empty() {
                    save_artifact("tenant-expiry", &journal.bytes());
                    cluster.restart_node(victim).expect("recoverable");
                }
                // One re-run finishes whatever the crash interrupted.
                service
                    .call(RequestEnvelope::new(request_id + 2, "alpha", Operation::CollectGarbage))
                    .expect("retried sweep cannot crash again");
                request_id += 10;

                prop_assert_eq!(
                    cluster.stats().physical_bytes,
                    physical_expected,
                    "victim {} seq {} ({:?}): expiry did not converge",
                    victim, seq, mode
                );
                assert_tenant_state(&cluster, &service, &files, &mut request_id);
            }
        }
        clear_artifact("tenant-expiry");
    }
}

/// Restarting a node that never crashed is a harmless (if pointless) operation:
/// the node comes back from its journal serving the same acknowledged bytes.
#[test]
fn restarting_a_healthy_node_is_idempotent() {
    let (cluster, files) = acked_cluster(7);
    let physical_before = cluster.stats().physical_bytes;
    for id in 0..3 {
        let report = cluster.restart_node(id).expect("journaled node");
        assert_eq!(report.reconciled_migrations, 0, "nothing was in flight");
    }
    assert_eq!(cluster.stats().physical_bytes, physical_before);
    for (file_id, expected) in &files {
        assert_eq!(&cluster.restore_file(*file_id).unwrap(), expected);
    }
}
