//! Payload (real-bytes) workload generators.
//!
//! Some experiments need actual bytes rather than pre-chunked fingerprint traces:
//! the client-side chunking/fingerprinting throughput study (Figure 4(a)), the
//! single-node deduplication-efficiency sweep (Figure 5(a)) and the end-to-end
//! backup/restore examples.  These generators produce deterministic pseudo-random
//! buffers and *versioned* families of buffers whose later versions share most of
//! their content with earlier ones.

use crate::DeterministicRng;
use serde::{Deserialize, Serialize};

/// Generates `len` bytes of seeded pseudo-random data (high entropy, so CDC finds
/// natural boundaries and nothing deduplicates by accident).
///
/// # Example
///
/// ```
/// use sigma_workloads::payload::random_bytes;
/// assert_eq!(random_bytes(1024, 7), random_bytes(1024, 7));
/// assert_ne!(random_bytes(1024, 7), random_bytes(1024, 8));
/// ```
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = DeterministicRng::new(seed);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        out.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Parameters for a versioned payload dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VersionedPayloadParams {
    /// Deterministic seed.
    pub seed: u64,
    /// Number of versions (backup generations).
    pub versions: usize,
    /// Size of each version in bytes.
    pub version_size: usize,
    /// Fraction of 4 KB regions rewritten between consecutive versions.
    pub mutation_rate: f64,
}

impl Default for VersionedPayloadParams {
    fn default() -> Self {
        VersionedPayloadParams {
            seed: 42,
            versions: 4,
            version_size: 4 << 20,
            mutation_rate: 0.05,
        }
    }
}

/// A named sequence of payload versions, each mostly identical to its predecessor.
///
/// # Example
///
/// ```
/// use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
///
/// let versions = versioned_payloads(VersionedPayloadParams {
///     versions: 3,
///     version_size: 256 * 1024,
///     ..VersionedPayloadParams::default()
/// });
/// assert_eq!(versions.len(), 3);
/// assert_eq!(versions[0].1.len(), 256 * 1024);
/// // Consecutive versions differ, but only a little.
/// let diff = versions[0].1.iter().zip(&versions[1].1).filter(|(a, b)| a != b).count();
/// assert!(diff > 0 && diff < versions[0].1.len() / 4);
/// ```
pub fn versioned_payloads(params: VersionedPayloadParams) -> Vec<(String, Vec<u8>)> {
    const REGION: usize = 4096;
    let mut rng = DeterministicRng::new(params.seed);
    let mut current = random_bytes(params.version_size, params.seed.wrapping_add(1));
    let mut out = Vec::with_capacity(params.versions);
    out.push(("version-0".to_string(), current.clone()));
    for v in 1..params.versions {
        let regions = current.len().div_ceil(REGION);
        for r in 0..regions {
            if rng.chance(params.mutation_rate) {
                let start = r * REGION;
                let end = (start + REGION).min(current.len());
                let fresh = random_bytes(end - start, rng.next_u64());
                current[start..end].copy_from_slice(&fresh);
            }
        }
        out.push((format!("version-{}", v), current.clone()));
    }
    out
}

/// Parameters for a *generational* payload dataset: versioned mutation plus
/// per-generation growth — the shape of a real protection workload, where each
/// backup generation rewrites a little of the old data and appends some new.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationalPayloadParams {
    /// Deterministic seed.
    pub seed: u64,
    /// Number of backup generations.
    pub generations: usize,
    /// Size of generation 0 in bytes.
    pub initial_size: usize,
    /// Fraction of 4 KB regions rewritten between consecutive generations.
    pub mutation_rate: f64,
    /// Fresh bytes appended by each generation after the first (dataset growth).
    pub growth_per_generation: usize,
}

impl Default for GenerationalPayloadParams {
    fn default() -> Self {
        GenerationalPayloadParams {
            seed: 42,
            generations: 4,
            initial_size: 4 << 20,
            mutation_rate: 0.05,
            growth_per_generation: 256 * 1024,
        }
    }
}

/// A named sequence of backup generations: each generation mutates a fraction of
/// its predecessor's 4 KB regions **and** appends fresh data, so later
/// generations share most-but-not-all content with earlier ones and the dataset
/// grows monotonically — the workload a retention policy expires from the front.
///
/// # Example
///
/// ```
/// use sigma_workloads::payload::{generational_payloads, GenerationalPayloadParams};
///
/// let gens = generational_payloads(GenerationalPayloadParams {
///     generations: 3,
///     initial_size: 128 * 1024,
///     growth_per_generation: 16 * 1024,
///     ..GenerationalPayloadParams::default()
/// });
/// assert_eq!(gens.len(), 3);
/// assert_eq!(gens[0].1.len(), 128 * 1024);
/// assert_eq!(gens[2].1.len(), 128 * 1024 + 2 * 16 * 1024);
/// ```
pub fn generational_payloads(params: GenerationalPayloadParams) -> Vec<(String, Vec<u8>)> {
    const REGION: usize = 4096;
    let mut rng = DeterministicRng::new(params.seed);
    let mut current = random_bytes(params.initial_size, params.seed.wrapping_add(1));
    let mut out = Vec::with_capacity(params.generations);
    out.push(("generation-0".to_string(), current.clone()));
    for g in 1..params.generations {
        let regions = current.len().div_ceil(REGION);
        for r in 0..regions {
            if rng.chance(params.mutation_rate) {
                let start = r * REGION;
                let end = (start + REGION).min(current.len());
                let fresh = random_bytes(end - start, rng.next_u64());
                current[start..end].copy_from_slice(&fresh);
            }
        }
        current.extend_from_slice(&random_bytes(params.growth_per_generation, rng.next_u64()));
        out.push((format!("generation-{}", g), current.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bytes_length_and_determinism() {
        for len in [0usize, 1, 7, 8, 1000] {
            assert_eq!(random_bytes(len, 3).len(), len);
        }
        assert_eq!(random_bytes(500, 1), random_bytes(500, 1));
    }

    #[test]
    fn versions_mostly_overlap() {
        let versions = versioned_payloads(VersionedPayloadParams {
            versions: 3,
            version_size: 1 << 20,
            mutation_rate: 0.05,
            seed: 9,
        });
        assert_eq!(versions.len(), 3);
        for pair in versions.windows(2) {
            let same = pair[0]
                .1
                .iter()
                .zip(&pair[1].1)
                .filter(|(a, b)| a == b)
                .count();
            let frac = same as f64 / pair[0].1.len() as f64;
            assert!(frac > 0.85, "only {:.2} of bytes shared", frac);
        }
    }

    #[test]
    fn zero_mutation_rate_gives_identical_versions() {
        let versions = versioned_payloads(VersionedPayloadParams {
            versions: 3,
            version_size: 64 * 1024,
            mutation_rate: 0.0,
            seed: 5,
        });
        assert_eq!(versions[0].1, versions[1].1);
        assert_eq!(versions[1].1, versions[2].1);
    }

    #[test]
    fn generational_payloads_grow_and_mostly_overlap() {
        let gens = generational_payloads(GenerationalPayloadParams {
            seed: 11,
            generations: 4,
            initial_size: 512 * 1024,
            mutation_rate: 0.05,
            growth_per_generation: 64 * 1024,
        });
        assert_eq!(gens.len(), 4);
        for (g, (name, data)) in gens.iter().enumerate() {
            assert_eq!(name, &format!("generation-{}", g));
            assert_eq!(data.len(), 512 * 1024 + g * 64 * 1024);
        }
        // The shared prefix mostly overlaps generation to generation.
        for pair in gens.windows(2) {
            let prefix = pair[0].1.len();
            let same = pair[0]
                .1
                .iter()
                .zip(&pair[1].1[..prefix])
                .filter(|(a, b)| a == b)
                .count();
            assert!(same as f64 / prefix as f64 > 0.85);
        }
        // Deterministic.
        let again = generational_payloads(GenerationalPayloadParams {
            seed: 11,
            generations: 4,
            initial_size: 512 * 1024,
            mutation_rate: 0.05,
            growth_per_generation: 64 * 1024,
        });
        assert_eq!(gens, again);
    }

    #[test]
    fn zero_growth_generational_matches_versioned_shape() {
        let gens = generational_payloads(GenerationalPayloadParams {
            seed: 3,
            generations: 3,
            initial_size: 64 * 1024,
            mutation_rate: 0.0,
            growth_per_generation: 0,
        });
        assert_eq!(gens[0].1, gens[1].1);
        assert_eq!(gens[1].1, gens[2].1);
    }

    #[test]
    fn names_are_sequential() {
        let versions = versioned_payloads(VersionedPayloadParams {
            versions: 2,
            version_size: 1024,
            ..VersionedPayloadParams::default()
        });
        assert_eq!(versions[0].0, "version-0");
        assert_eq!(versions[1].0, "version-1");
    }
}
