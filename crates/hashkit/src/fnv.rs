//! FNV-1a: a tiny, fast, non-cryptographic hash.
//!
//! Used where a cheap, well-distributed hash of small keys is needed: bucket
//! selection inside the striped similarity index and deterministic pseudo-random
//! placement in the baseline DHT routers.  It is *not* used for chunk fingerprints.

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV32_OFFSET: u32 = 0x811c_9dc5;
const FNV32_PRIME: u32 = 0x0100_0193;

/// One-shot 64-bit FNV-1a hash of `data`.
///
/// # Example
///
/// ```
/// use sigma_hashkit::fnv1a_64;
/// assert_ne!(fnv1a_64(b"node-0"), fnv1a_64(b"node-1"));
/// ```
pub fn fnv1a_64(data: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// One-shot 32-bit FNV-1a hash of `data`.
pub fn fnv1a_32(data: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// Incremental 64-bit FNV-1a hasher implementing [`std::hash::Hasher`].
///
/// # Example
///
/// ```
/// use std::hash::Hasher;
/// use sigma_hashkit::{fnv1a_64, Fnv64};
///
/// let mut h = Fnv64::new();
/// h.write(b"abc");
/// assert_eq!(h.finish(), fnv1a_64(b"abc"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV64_OFFSET)
    }
}

impl Fnv64 {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV64_PRIME);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::hash::Hasher;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a (from the FNV specification test vectors).
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a_32(b""), 0x811c9dc5);
        assert_eq!(fnv1a_32(b"a"), 0xe40c292c);
        assert_eq!(fnv1a_32(b"foobar"), 0xbf9cf968);
    }

    #[test]
    fn hasher_matches_one_shot() {
        let mut h = Fnv64::new();
        h.write(b"hello ");
        h.write(b"world");
        assert_eq!(h.finish(), fnv1a_64(b"hello world"));
    }

    proptest! {
        #[test]
        fn prop_incremental_equals_one_shot(
            data in proptest::collection::vec(any::<u8>(), 0..256),
            split in 0usize..256,
        ) {
            let split = split.min(data.len());
            let mut h = Fnv64::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            prop_assert_eq!(h.finish(), fnv1a_64(&data));
        }
    }
}
