//! The chunk fingerprint cache: container-granular, locality-preserving, LRU.
//!
//! When a representative fingerprint hits in the similarity index, the full
//! fingerprint list of the mapped container is prefetched from the container's
//! metadata section into this cache (Section 3.3).  Subsequent chunk-fingerprint
//! lookups for the same super-chunk then hit in RAM instead of the on-disk chunk
//! index, which is what removes the disk index-lookup bottleneck.  Entries are
//! evicted with an LRU policy at container granularity.

use crate::ContainerId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::{HashMap, HashSet, VecDeque};

/// Statistics of a [`FingerprintCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Chunk-fingerprint lookups served from the cache.
    pub lookups: u64,
    /// Lookups that found the fingerprint in some cached container.
    pub hits: u64,
    /// Containers prefetched into the cache.
    pub prefetches: u64,
    /// Containers evicted to make room.
    pub evictions: u64,
    /// Containers currently cached.
    pub cached_containers: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, or 0 when no lookups were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

struct CacheInner {
    /// Per-container fingerprint sets.
    containers: HashMap<ContainerId, HashSet<Fingerprint>>,
    /// Reverse map for O(1) membership tests across all cached containers.
    fingerprints: HashMap<Fingerprint, ContainerId>,
    /// LRU order: front = least recently used.
    lru: VecDeque<ContainerId>,
    stats: CacheStats,
}

/// An LRU cache of container fingerprint lists.
///
/// # Example
///
/// ```
/// use sigma_storage::{ContainerId, FingerprintCache};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let cache = FingerprintCache::new(2);
/// let fp = Sha1::fingerprint(b"chunk");
/// cache.insert_container(ContainerId::new(1), vec![fp]);
/// assert_eq!(cache.lookup(&fp), Some(ContainerId::new(1)));
/// ```
pub struct FingerprintCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for FingerprintCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FingerprintCache")
            .field("capacity", &self.capacity)
            .field("cached_containers", &inner.containers.len())
            .finish()
    }
}

impl FingerprintCache {
    /// Creates a cache holding at most `capacity` containers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        FingerprintCache {
            capacity,
            inner: Mutex::new(CacheInner {
                containers: HashMap::new(),
                fingerprints: HashMap::new(),
                lru: VecDeque::new(),
                stats: CacheStats::default(),
            }),
        }
    }

    /// Maximum number of containers the cache can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts (prefetches) a container's fingerprint list, evicting the least
    /// recently used container if the cache is full.
    pub fn insert_container(
        &self,
        container: ContainerId,
        fingerprints: impl IntoIterator<Item = Fingerprint>,
    ) {
        let mut inner = self.inner.lock();
        inner.stats.prefetches += 1;

        if inner.containers.contains_key(&container) {
            // Refresh recency only.
            Self::touch(&mut inner, container);
            return;
        }

        while inner.containers.len() >= self.capacity {
            if let Some(victim) = inner.lru.pop_front() {
                if let Some(set) = inner.containers.remove(&victim) {
                    for fp in set {
                        // Only remove reverse entries still owned by the victim.
                        if inner.fingerprints.get(&fp) == Some(&victim) {
                            inner.fingerprints.remove(&fp);
                        }
                    }
                }
                inner.stats.evictions += 1;
            } else {
                break;
            }
        }

        let set: HashSet<Fingerprint> = fingerprints.into_iter().collect();
        for fp in &set {
            inner.fingerprints.insert(*fp, container);
        }
        inner.containers.insert(container, set);
        inner.lru.push_back(container);
        inner.stats.cached_containers = inner.containers.len() as u64;
    }

    fn touch(inner: &mut CacheInner, container: ContainerId) {
        if let Some(pos) = inner.lru.iter().position(|&c| c == container) {
            inner.lru.remove(pos);
            inner.lru.push_back(container);
        }
    }

    /// Looks up a chunk fingerprint across all cached containers.
    ///
    /// A hit refreshes the owning container's recency.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ContainerId> {
        let mut inner = self.inner.lock();
        inner.stats.lookups += 1;
        let owner = inner.fingerprints.get(fp).copied();
        if let Some(cid) = owner {
            inner.stats.hits += 1;
            Self::touch(&mut inner, cid);
        }
        owner
    }

    /// True if the given container is currently cached.
    pub fn contains_container(&self, container: ContainerId) -> bool {
        self.inner.lock().containers.contains_key(&container)
    }

    /// Number of containers currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().containers.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.inner.lock().stats;
        s.cached_containers = self.len() as u64;
        s
    }

    /// Removes every entry and resets recency (statistics are preserved).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.containers.clear();
        inner.fingerprints.clear();
        inner.lru.clear();
        inner.stats.cached_containers = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_hashkit::{Digest, Sha1};

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    fn fps(range: std::ops::Range<u64>) -> Vec<Fingerprint> {
        range.map(fp).collect()
    }

    #[test]
    fn lookup_hits_cached_containers() {
        let cache = FingerprintCache::new(4);
        cache.insert_container(ContainerId::new(1), fps(0..10));
        assert_eq!(cache.lookup(&fp(3)), Some(ContainerId::new(1)));
        assert_eq!(cache.lookup(&fp(99)), None);
        let s = cache.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = FingerprintCache::new(2);
        cache.insert_container(ContainerId::new(1), fps(0..5));
        cache.insert_container(ContainerId::new(2), fps(5..10));
        // Touch container 1 so container 2 becomes the LRU victim.
        assert!(cache.lookup(&fp(0)).is_some());
        cache.insert_container(ContainerId::new(3), fps(10..15));
        assert!(cache.contains_container(ContainerId::new(1)));
        assert!(!cache.contains_container(ContainerId::new(2)));
        assert!(cache.contains_container(ContainerId::new(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.lookup(&fp(7)), None, "evicted fingerprints must miss");
    }

    #[test]
    fn reinserting_refreshes_recency_without_duplicating() {
        let cache = FingerprintCache::new(2);
        cache.insert_container(ContainerId::new(1), fps(0..5));
        cache.insert_container(ContainerId::new(2), fps(5..10));
        cache.insert_container(ContainerId::new(1), fps(0..5));
        assert_eq!(cache.len(), 2);
        cache.insert_container(ContainerId::new(3), fps(10..15));
        // Container 2 was least recently used.
        assert!(cache.contains_container(ContainerId::new(1)));
        assert!(!cache.contains_container(ContainerId::new(2)));
    }

    #[test]
    fn shared_fingerprints_survive_eviction_of_one_owner() {
        // Two containers can both hold the same (duplicate) fingerprint; evicting one
        // must not remove the other's reverse-map entry.
        let cache = FingerprintCache::new(2);
        let shared = fp(1000);
        cache.insert_container(ContainerId::new(1), vec![shared, fp(1)]);
        cache.insert_container(ContainerId::new(2), vec![shared, fp(2)]);
        // Evict container 1 (it is the LRU).
        cache.insert_container(ContainerId::new(3), fps(10..12));
        assert!(!cache.contains_container(ContainerId::new(1)));
        assert_eq!(cache.lookup(&shared), Some(ContainerId::new(2)));
    }

    #[test]
    fn clear_empties_cache() {
        let cache = FingerprintCache::new(2);
        cache.insert_container(ContainerId::new(1), fps(0..5));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(&fp(0)), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        FingerprintCache::new(0);
    }

    #[test]
    fn hit_ratio_reflects_access_pattern() {
        let cache = FingerprintCache::new(8);
        cache.insert_container(ContainerId::new(1), fps(0..100));
        for i in 0..100u64 {
            cache.lookup(&fp(i));
        }
        for i in 100..200u64 {
            cache.lookup(&fp(i));
        }
        assert!((cache.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }
}
