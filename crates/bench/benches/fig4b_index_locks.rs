//! Figure 4(b): parallel similarity-index lookup vs. lock striping granularity.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_hashkit::{Digest, Sha1};
use sigma_simulation::experiments::fig4b;
use sigma_storage::{ContainerId, SimilarityIndex};

fn report() {
    sigma_bench::banner(
        "Figure 4(b)",
        "parallel similarity-index lookup throughput vs. number of locks",
    );
    let rows = fig4b::run(&fig4b::Fig4bParams {
        preload_entries: 100_000,
        lookups_per_stream: 200_000,
        lock_counts: vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536],
        stream_counts: vec![1, 2, 4, 8, 16],
    });
    sigma_bench::print_table(
        "aggregate similarity-index lookups per second",
        &fig4b::render(&rows),
    );
}

fn bench_index_lookup(c: &mut Criterion) {
    report();
    let index = SimilarityIndex::new(1024);
    let keys: Vec<_> = (0..10_000u64)
        .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        index.insert(*key, ContainerId::new(i as u64));
    }
    c.bench_function("fig4b/similarity_index_lookup_hit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            std::hint::black_box(index.lookup(&keys[i]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_index_lookup
}
criterion_main!(benches);
