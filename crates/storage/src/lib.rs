//! Storage substrate for Σ-Dedupe deduplication server nodes.
//!
//! Figure 3 of the paper shows the data structures inside a deduplication server:
//!
//! * a **similarity index** in RAM mapping representative fingerprints (RFPs) of
//!   stored super-chunks to the **container ID** (CID) where they live, protected by
//!   per-bucket locks so multiple backup streams can look up concurrently;
//! * a **chunk fingerprint cache** that holds the full fingerprint lists of recently
//!   accessed containers (prefetched from container metadata sections) with an LRU
//!   replacement policy;
//! * self-describing **containers** on disk, each with a data section (the chunks)
//!   and a metadata section (fingerprint, offset, length per chunk), managed in
//!   parallel with one open container per incoming data stream;
//! * a traditional hash-table based **on-disk chunk index** kept only as a fallback
//!   for fingerprints that miss in the cache.
//!
//! This crate implements all four structures plus a [`DiskModel`] that accounts for
//! the simulated disk I/O they would generate, so the higher layers can report the
//! index-lookup message and I/O counts that the paper uses as overhead metrics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod chunk_index;
mod container;
mod container_store;
mod disk;
mod error;
mod fingerprint_cache;
mod journal;
mod read_cache;
mod similarity_index;

pub use backend::{
    BackendKind, FileBackend, MemoryBackend, SimDiskBackend, StorageBackend, StorageObject,
};
pub use chunk_index::{ChunkIndex, ChunkIndexStats, ChunkLocation, ClaimOutcome};
pub use container::{
    ChunkRecord, Container, ContainerBuilder, ContainerId, ContainerMeta,
    CONTAINER_BLOB_DATA_OFFSET,
};
pub use container_store::{
    BatchedReadStats, ChunkFetch, CompactionOutcome, ContainerLiveness, ContainerStore,
    ContainerStoreStats, StoredChunk, StreamId, DEFAULT_CONTAINER_CAPACITY,
};
pub use disk::{DiskModel, DiskParams, DiskStats};
pub use error::StorageError;
pub use fingerprint_cache::{CacheStats, FingerprintCache};
pub use journal::{CrashMode, Journal, JournalRecord, NodeSnapshot, ReplaySummary};
pub use read_cache::{ContainerReadCache, ReadCacheStats};
pub use similarity_index::{SimilarityIndex, SimilarityIndexStats};

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
