//! A simple disk model used for I/O accounting in the simulated deduplication nodes.
//!
//! The paper's evaluation measures system overhead in terms of index-lookup messages
//! and attributes the intra-node bottleneck to random disk I/O against the on-disk
//! chunk index.  Since this reproduction runs on a single machine, the storage layer
//! does not actually pay seek latency; instead every structure records the disk
//! operations it *would* perform against this model, so experiments can report
//! comparable I/O counts and derive simulated latency.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters describing the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Average time of one random I/O operation (seek + rotation), in microseconds.
    pub random_io_us: f64,
    /// Sequential transfer bandwidth in MB/s.
    pub sequential_mb_per_s: f64,
}

impl Default for DiskParams {
    /// A 7200 RPM SATA disk comparable to the paper's testbed (Samsung 250 GB HDD):
    /// ~8 ms per random I/O and ~100 MB/s sequential bandwidth.
    fn default() -> Self {
        DiskParams {
            random_io_us: 8000.0,
            sequential_mb_per_s: 100.0,
        }
    }
}

impl DiskParams {
    /// Validates the parameters.
    ///
    /// Both fields must be finite and strictly positive: a zero or negative
    /// bandwidth turns [`DiskModel::simulated_time_us`] into an infinity (or, with
    /// NaN inputs, a NaN) that silently poisons every derived latency figure, so
    /// such configurations are rejected up front instead.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StorageError::InvalidDiskParams`] naming the first
    /// offending field.
    pub fn validate(&self) -> crate::Result<()> {
        if !(self.random_io_us.is_finite() && self.random_io_us > 0.0) {
            return Err(crate::StorageError::InvalidDiskParams(format!(
                "random_io_us must be finite and positive, got {}",
                self.random_io_us
            )));
        }
        if !(self.sequential_mb_per_s.is_finite() && self.sequential_mb_per_s > 0.0) {
            return Err(crate::StorageError::InvalidDiskParams(format!(
                "sequential_mb_per_s must be finite and positive, got {}",
                self.sequential_mb_per_s
            )));
        }
        Ok(())
    }
}

/// Counters of simulated disk activity.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of random read operations (e.g. chunk-index lookups on disk).
    pub random_reads: u64,
    /// Number of random write operations.
    pub random_writes: u64,
    /// Bytes transferred sequentially (container reads/writes).
    pub sequential_bytes: u64,
    /// Number of sequential transfer operations.
    pub sequential_ops: u64,
}

impl DiskStats {
    /// Total number of I/O operations of any kind.
    pub fn total_ops(&self) -> u64 {
        self.random_reads + self.random_writes + self.sequential_ops
    }
}

/// Thread-safe simulated disk.
///
/// # Example
///
/// ```
/// use sigma_storage::{DiskModel, DiskParams};
///
/// let disk = DiskModel::new(DiskParams::default());
/// disk.record_random_read();
/// disk.record_sequential_transfer(4 << 20);
/// let stats = disk.stats();
/// assert_eq!(stats.random_reads, 1);
/// assert_eq!(stats.sequential_bytes, 4 << 20);
/// assert!(disk.simulated_time_us() > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct DiskModel {
    params: DiskParams,
    random_reads: AtomicU64,
    random_writes: AtomicU64,
    sequential_bytes: AtomicU64,
    sequential_ops: AtomicU64,
}

impl DiskModel {
    /// Creates a disk model with the given parameters.
    pub fn new(params: DiskParams) -> Self {
        DiskModel {
            params,
            ..DiskModel::default()
        }
    }

    /// The disk parameters.
    pub fn params(&self) -> DiskParams {
        self.params
    }

    /// Records one random read (e.g. an on-disk index probe).
    pub fn record_random_read(&self) {
        self.random_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one random write.
    pub fn record_random_write(&self) {
        self.random_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a sequential transfer of `bytes` bytes (container read or write).
    pub fn record_sequential_transfer(&self, bytes: u64) {
        self.sequential_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.sequential_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the accumulated counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            random_reads: self.random_reads.load(Ordering::Relaxed),
            random_writes: self.random_writes.load(Ordering::Relaxed),
            sequential_bytes: self.sequential_bytes.load(Ordering::Relaxed),
            sequential_ops: self.sequential_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.random_reads.store(0, Ordering::Relaxed);
        self.random_writes.store(0, Ordering::Relaxed);
        self.sequential_bytes.store(0, Ordering::Relaxed);
        self.sequential_ops.store(0, Ordering::Relaxed);
    }

    /// Total simulated time the recorded operations would take, in microseconds.
    pub fn simulated_time_us(&self) -> f64 {
        let s = self.stats();
        let random = (s.random_reads + s.random_writes) as f64 * self.params.random_io_us;
        let sequential =
            s.sequential_bytes as f64 / (self.params.sequential_mb_per_s * 1_048_576.0) * 1e6;
        random + sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let disk = DiskModel::new(DiskParams::default());
        for _ in 0..5 {
            disk.record_random_read();
        }
        disk.record_random_write();
        disk.record_sequential_transfer(1000);
        disk.record_sequential_transfer(2000);
        let s = disk.stats();
        assert_eq!(s.random_reads, 5);
        assert_eq!(s.random_writes, 1);
        assert_eq!(s.sequential_bytes, 3000);
        assert_eq!(s.sequential_ops, 2);
        assert_eq!(s.total_ops(), 8);
    }

    #[test]
    fn reset_clears_counters() {
        let disk = DiskModel::new(DiskParams::default());
        disk.record_random_read();
        disk.reset();
        assert_eq!(disk.stats().total_ops(), 0);
        assert_eq!(disk.simulated_time_us(), 0.0);
    }

    #[test]
    fn simulated_time_reflects_parameters() {
        let disk = DiskModel::new(DiskParams {
            random_io_us: 1000.0,
            sequential_mb_per_s: 1.0,
        });
        disk.record_random_read();
        disk.record_sequential_transfer(1_048_576);
        // 1 random I/O at 1ms + 1 MB at 1 MB/s = 1ms + 1s.
        let t = disk.simulated_time_us();
        assert!((t - (1000.0 + 1_000_000.0)).abs() < 1.0, "t = {}", t);
    }

    #[test]
    fn validation_rejects_non_positive_and_non_finite_params() {
        assert!(DiskParams::default().validate().is_ok());
        // The smallest positive normal values are still legal.
        assert!(DiskParams {
            random_io_us: f64::MIN_POSITIVE,
            sequential_mb_per_s: f64::MIN_POSITIVE,
        }
        .validate()
        .is_ok());
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = DiskParams {
                random_io_us: bad,
                ..DiskParams::default()
            }
            .validate()
            .unwrap_err();
            assert!(
                e.to_string().contains("random_io_us"),
                "error must name the field: {}",
                e
            );
            assert!(DiskParams {
                sequential_mb_per_s: bad,
                ..DiskParams::default()
            }
            .validate()
            .is_err());
        }
    }

    #[test]
    fn rejected_params_are_exactly_those_that_poison_latency() {
        // The boundary values validation rejects are the ones that would have
        // produced inf/NaN simulated latencies.
        let disk = DiskModel::new(DiskParams {
            random_io_us: 8000.0,
            sequential_mb_per_s: 0.0,
        });
        disk.record_sequential_transfer(1);
        assert!(disk.simulated_time_us().is_infinite());
        let disk = DiskModel::new(DiskParams {
            random_io_us: f64::NAN,
            sequential_mb_per_s: 100.0,
        });
        disk.record_random_read();
        assert!(disk.simulated_time_us().is_nan());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let disk = std::sync::Arc::new(DiskModel::new(DiskParams::default()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = disk.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    d.record_random_read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(disk.stats().random_reads, 4000);
    }
}
