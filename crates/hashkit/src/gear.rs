//! Gear hash: a cheap table-driven rolling hash for content-defined chunking.
//!
//! The gear hash (`h = (h << 1) + GEAR[b]`) needs no explicit sliding window: old
//! bytes "age out" as their contribution is shifted past the top of the word.  It is
//! provided as a faster alternative to the [`RabinHasher`](crate::RabinHasher) for
//! the content-defined chunkers; the chunk-boundary distribution it produces is very
//! similar in practice.

use crate::RollingHash;

/// Builds a table of 256 pseudo-random 64-bit constants with splitmix64.
const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut i = 0;
    while i < 256 {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        table[i] = z;
        i += 1;
    }
    table
}

/// The 256-entry constant table used by [`GearHasher`].
pub const GEAR_TABLE: [u64; 256] = build_gear_table();

/// Number of trailing bytes that still influence the gear hash value.
///
/// After 64 shifts a byte's contribution has left the word entirely, so the hash is
/// effectively a function of the last 64 bytes.
pub const GEAR_EFFECTIVE_WINDOW: usize = 64;

/// Rolling gear hash.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{GearHasher, RollingHash};
///
/// let mut h = GearHasher::new();
/// for &b in b"stream of bytes".iter() {
///     h.roll(b);
/// }
/// assert_ne!(h.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GearHasher {
    hash: u64,
}

impl GearHasher {
    /// Creates a hasher with an empty state.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RollingHash for GearHasher {
    fn reset(&mut self) {
        self.hash = 0;
    }

    #[inline]
    fn roll(&mut self, byte: u8) -> u64 {
        self.hash = (self.hash << 1).wrapping_add(GEAR_TABLE[byte as usize]);
        self.hash
    }

    fn value(&self) -> u64 {
        self.hash
    }

    fn window_size(&self) -> usize {
        GEAR_EFFECTIVE_WINDOW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_entries_are_distinct_enough() {
        // Not a strict requirement, but a sanity check against a broken generator:
        // all 256 entries should be unique.
        let mut sorted = GEAR_TABLE.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
    }

    #[test]
    fn rolling_is_deterministic() {
        let mut a = GearHasher::new();
        let mut b = GearHasher::new();
        for &byte in b"identical input".iter() {
            a.roll(byte);
            b.roll(byte);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn reset_clears_state() {
        let mut h = GearHasher::new();
        h.roll(42);
        h.reset();
        assert_eq!(h.value(), 0);
    }

    proptest! {
        #[test]
        fn prop_old_bytes_age_out(
            prefix_a in proptest::collection::vec(any::<u8>(), 0..100),
            prefix_b in proptest::collection::vec(any::<u8>(), 0..100),
            tail in proptest::collection::vec(any::<u8>(), 64..160),
        ) {
            // After at least 64 common trailing bytes the two hashes must agree.
            let run = |prefix: &[u8]| {
                let mut h = GearHasher::new();
                for &b in prefix.iter().chain(tail.iter()) {
                    h.roll(b);
                }
                h.value()
            };
            prop_assert_eq!(run(&prefix_a), run(&prefix_b));
        }
    }
}
