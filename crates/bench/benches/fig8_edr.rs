//! Figure 8: normalized effective deduplication ratio vs. cluster size.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::SimilarityRouter;
use sigma_simulation::experiments::fig8;
use sigma_simulation::runner::{run_cluster, SimulationConfig};
use sigma_workloads::{presets, Scale};

fn report() {
    sigma_bench::banner(
        "Figure 8",
        "normalized effective deduplication ratio (EDR) vs. cluster size, four workloads x four schemes",
    );
    let rows = fig8::run(&fig8::Fig8Params {
        scale: Scale::Small,
        cluster_sizes: vec![1, 2, 4, 8, 16, 32, 64, 128],
        super_chunk_size: 256 << 10,
        include_balance_ablation: true,
    });
    for dataset in ["Linux", "VM", "Mail", "Web"] {
        sigma_bench::print_table(
            &format!("normalized EDR, {} workload", dataset),
            &fig8::render(dataset, &rows),
        );
    }
    println!(
        "capacity shape (sigma retains most of stateful's EDR and stays above stateless): {}",
        fig8::capacity_shape_holds(&rows, 0.75)
    );
    println!(
        "note: super-chunks are scaled down with the dataset (256 KiB here) so that every node \
         still receives a meaningful number of routing units; see DESIGN.md."
    );
}

fn bench_cluster_run(c: &mut Criterion) {
    report();
    let dataset = presets::web_dataset(Scale::Tiny);
    c.bench_function("fig8/cluster_run_web_tiny_8_nodes_sigma", |b| {
        b.iter(|| {
            run_cluster(
                &dataset,
                Box::new(SimilarityRouter::new(true)),
                &SimulationConfig {
                    node_count: 8,
                    ..SimulationConfig::default()
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_run
}
criterion_main!(benches);
