//! Pluggable storage backends: the durable medium beneath the journal and the
//! container store.
//!
//! The ILDG-style middleware separation the service layer follows — grid
//! services composed over abstract storage elements — applies one level down
//! too: [`Journal`](crate::Journal) and [`ContainerStore`](crate::ContainerStore)
//! talk to a [`StorageBackend`] trait instead of a `Vec<u8>` welded into the
//! struct, and three implementations plug in beneath them:
//!
//! | backend | medium | survives process exit | disk accounting |
//! |---|---|---|---|
//! | [`MemoryBackend`] | RAM object map | no | none |
//! | [`SimDiskBackend`] | RAM object map | no | yes — carries the node's [`DiskModel`] |
//! | [`FileBackend`] | one directory of real files | **yes** | none (real I/O pays real time) |
//!
//! The volatile backends keep every figure reproduction and fault-injection
//! test deterministic: [`SimDiskBackend`] is exactly the pre-existing
//! "simulated durable medium" (RAM contents, `DiskModel` charges), re-expressed
//! as a backend object.  [`FileBackend`] maps each object to a file in a
//! per-node directory (`journal.wal`, `container-<id>.sc`), fsyncs at the
//! existing acknowledgement points (every journal append is an ack point) and
//! replaces the journal atomically on compaction via
//! write-new / fsync / rename / fsync-dir — so a node's containers and journal
//! survive an actual process restart, not just a simulated one.
//!
//! Charging discipline: the callers (journal, store, chunk index) decide *what*
//! an operation costs and charge the [`DiskModel`] they obtain from
//! [`StorageBackend::disk`]; backends never charge on their own.  This keeps
//! the simulated figures bit-identical whether the medium is a RAM map or a
//! backend object, and makes the file backend's simulated-I/O figures
//! honestly zero.

use crate::{ContainerId, DiskModel, Result, StorageError};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One durable object a backend stores for a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StorageObject {
    /// The node's write-ahead journal (`journal.wal` on the file backend).
    Journal,
    /// One sealed container (`container-<id>.sc` on the file backend).
    Container(ContainerId),
}

impl StorageObject {
    /// The object's file name on the file backend.
    pub fn file_name(&self) -> String {
        match self {
            StorageObject::Journal => "journal.wal".to_string(),
            StorageObject::Container(id) => format!("container-{}.sc", id.as_u64()),
        }
    }

    /// Parses a file name back into an object (the inverse of
    /// [`file_name`](Self::file_name)); temp files and foreign names are `None`.
    pub fn from_file_name(name: &str) -> Option<StorageObject> {
        if name == "journal.wal" {
            return Some(StorageObject::Journal);
        }
        let id = name
            .strip_prefix("container-")?
            .strip_suffix(".sc")?
            .parse::<u64>()
            .ok()?;
        Some(StorageObject::Container(ContainerId::new(id)))
    }
}

impl std::fmt::Display for StorageObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.file_name())
    }
}

/// Which [`StorageBackend`] implementation a node uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum BackendKind {
    /// Volatile RAM objects, no disk accounting.
    Memory,
    /// Volatile RAM objects charged to the node's simulated [`DiskModel`] — the
    /// default, and exactly the behaviour every figure reproduction ran against.
    #[default]
    SimDisk,
    /// Real files under a per-node directory; survives a process restart.
    File,
}

impl BackendKind {
    /// Parses the config-file spelling (`memory` / `sim-disk` / `file`).
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "memory" => Some(BackendKind::Memory),
            "sim-disk" | "simdisk" | "sim_disk" => Some(BackendKind::SimDisk),
            "file" => Some(BackendKind::File),
            _ => None,
        }
    }

    /// The config-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::SimDisk => "sim-disk",
            BackendKind::File => "file",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The durable medium beneath a node's journal and container store.
///
/// Semantics every implementation must honour:
///
/// * [`append`](Self::append) returns the offset the bytes landed at and, once
///   the following [`fsync`](Self::fsync) returns, the bytes are durable — the
///   journal calls the pair on every append, which is the system's
///   acknowledgement point.
/// * [`write_object`](Self::write_object) atomically creates-or-replaces a
///   whole object: a reader never observes a half-written container.
/// * [`replace_atomic`](Self::replace_atomic) is `write_object` with the
///   explicit crash contract journal compaction needs: until the replacement is
///   durably in place, the *old* object must remain fully readable
///   (write-new / fsync / rename / fsync-dir on the file backend).
/// * [`truncate`](Self::truncate) discards a torn tail after replay.
/// * [`delete`](Self::delete) of an absent object is a no-op, not an error.
///
/// Volatile implementations return `false` from [`persistent`](Self::persistent);
/// the container store then skips materializing per-container objects (the
/// journal object alone is the simulated durable medium, exactly as before).
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// True when objects survive the process (the file backend).
    fn persistent(&self) -> bool {
        false
    }

    /// Appends `bytes` to `obj` (creating it if absent), returning the offset
    /// the bytes were written at.
    fn append(&self, obj: StorageObject, bytes: &[u8]) -> Result<u64>;

    /// Atomically creates or replaces the whole object.
    fn write_object(&self, obj: StorageObject, bytes: &[u8]) -> Result<()>;

    /// Reads the whole object; an absent object reads as empty.
    fn read_all(&self, obj: StorageObject) -> Result<Vec<u8>>;

    /// Reads `len` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the object is absent or shorter than
    /// `offset + len` — a durability bug, never a caller convenience.
    fn read_at(&self, obj: StorageObject, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Reads exactly `out.len()` bytes at `offset` into `out`.
    ///
    /// The default goes through [`read_at`](Self::read_at) and copies; backends
    /// that can fill a caller-provided buffer without the intermediate
    /// allocation (the file backend's `read_exact`, the in-RAM backends' slice
    /// copy) override it.  The restore path uses this to decode chunk payloads
    /// straight into the preallocated output buffer.
    ///
    /// # Errors
    ///
    /// Same contract as [`read_at`](Self::read_at).
    fn read_at_into(&self, obj: StorageObject, offset: u64, out: &mut [u8]) -> Result<()> {
        let bytes = self.read_at(obj, offset, out.len())?;
        out.copy_from_slice(&bytes);
        Ok(())
    }

    /// Current length of the object in bytes, `None` when absent.
    fn object_len(&self, obj: StorageObject) -> Result<Option<u64>>;

    /// Truncates the object to `len` bytes (discarding a torn tail).
    fn truncate(&self, obj: StorageObject, len: u64) -> Result<()>;

    /// Replaces the object so that a crash at any point leaves either the old
    /// or the new contents fully intact, never a mixture.
    fn replace_atomic(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        self.write_object(obj, bytes)
    }

    /// Makes previous appends to the object durable.
    fn fsync(&self, obj: StorageObject) -> Result<()>;

    /// Deletes the object; absent objects delete successfully.
    fn delete(&self, obj: StorageObject) -> Result<()>;

    /// Every object currently present, sorted for deterministic iteration.
    fn list(&self) -> Result<Vec<StorageObject>>;

    /// The simulated disk this backend's operations are charged to, if any.
    ///
    /// Callers — not backends — perform the charging, so the accounting stays
    /// at the exact call sites the deterministic scenario figures were baked
    /// against.
    fn disk(&self) -> Option<Arc<DiskModel>> {
        None
    }

    /// Re-targets the simulated-disk accounting (crash recovery re-homes the
    /// surviving medium onto the recovered node's fresh [`DiskModel`]).  A
    /// no-op on backends without one.
    fn attach_disk(&self, _disk: Arc<DiskModel>) {}
}

// ---- MemoryBackend ----

/// Volatile objects in a RAM map; no disk accounting.
#[derive(Default)]
pub struct MemoryBackend {
    objects: Mutex<HashMap<StorageObject, Vec<u8>>>,
}

impl std::fmt::Debug for MemoryBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBackend")
            .field("objects", &self.objects.lock().len())
            .finish()
    }
}

impl MemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        MemoryBackend::default()
    }

    /// Creates a backend whose journal object holds `bytes` — the crash image a
    /// fault harness hands to recovery.
    pub fn with_journal_bytes(bytes: Vec<u8>) -> Self {
        let backend = MemoryBackend::new();
        backend.objects.lock().insert(StorageObject::Journal, bytes);
        backend
    }
}

impl StorageBackend for MemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Memory
    }

    fn append(&self, obj: StorageObject, bytes: &[u8]) -> Result<u64> {
        let mut objects = self.objects.lock();
        let buf = objects.entry(obj).or_default();
        let offset = buf.len() as u64;
        buf.extend_from_slice(bytes);
        Ok(offset)
    }

    fn write_object(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        self.objects.lock().insert(obj, bytes.to_vec());
        Ok(())
    }

    fn read_all(&self, obj: StorageObject) -> Result<Vec<u8>> {
        Ok(self.objects.lock().get(&obj).cloned().unwrap_or_default())
    }

    fn read_at(&self, obj: StorageObject, offset: u64, len: usize) -> Result<Vec<u8>> {
        let objects = self.objects.lock();
        let buf = objects
            .get(&obj)
            .ok_or_else(|| StorageError::Io(format!("{}: object absent", obj)))?;
        let start = offset as usize;
        let end = start.checked_add(len).filter(|&e| e <= buf.len());
        match end {
            Some(end) => Ok(buf[start..end].to_vec()),
            None => Err(StorageError::Io(format!(
                "{}: read of {} bytes at offset {} past object end {}",
                obj,
                len,
                offset,
                buf.len()
            ))),
        }
    }

    fn read_at_into(&self, obj: StorageObject, offset: u64, out: &mut [u8]) -> Result<()> {
        let objects = self.objects.lock();
        let buf = objects
            .get(&obj)
            .ok_or_else(|| StorageError::Io(format!("{}: object absent", obj)))?;
        let start = offset as usize;
        let end = start.checked_add(out.len()).filter(|&e| e <= buf.len());
        match end {
            Some(end) => {
                out.copy_from_slice(&buf[start..end]);
                Ok(())
            }
            None => Err(StorageError::Io(format!(
                "{}: read of {} bytes at offset {} past object end {}",
                obj,
                out.len(),
                offset,
                buf.len()
            ))),
        }
    }

    fn object_len(&self, obj: StorageObject) -> Result<Option<u64>> {
        Ok(self.objects.lock().get(&obj).map(|b| b.len() as u64))
    }

    fn truncate(&self, obj: StorageObject, len: u64) -> Result<()> {
        if let Some(buf) = self.objects.lock().get_mut(&obj) {
            buf.truncate(len as usize);
        }
        Ok(())
    }

    fn fsync(&self, _obj: StorageObject) -> Result<()> {
        Ok(())
    }

    fn delete(&self, obj: StorageObject) -> Result<()> {
        self.objects.lock().remove(&obj);
        Ok(())
    }

    fn list(&self) -> Result<Vec<StorageObject>> {
        let mut out: Vec<StorageObject> = self.objects.lock().keys().copied().collect();
        out.sort_unstable();
        Ok(out)
    }
}

// ---- SimDiskBackend ----

/// Volatile objects charged to a simulated [`DiskModel`] — the pre-existing
/// "simulated durable medium", now expressed as a backend.
///
/// The model is rebindable because crash recovery builds a fresh node (and a
/// fresh `DiskModel`) around the surviving medium: [`attach_disk`] re-homes the
/// accounting so post-recovery operations are billed to the node that owns
/// them.
///
/// [`attach_disk`]: StorageBackend::attach_disk
pub struct SimDiskBackend {
    inner: MemoryBackend,
    disk: RwLock<Arc<DiskModel>>,
}

impl std::fmt::Debug for SimDiskBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDiskBackend")
            .field("inner", &self.inner)
            .finish()
    }
}

impl SimDiskBackend {
    /// Creates an empty simulated-disk backend charged to `disk`.
    pub fn new(disk: Arc<DiskModel>) -> Self {
        SimDiskBackend {
            inner: MemoryBackend::new(),
            disk: RwLock::new(disk),
        }
    }
}

impl StorageBackend for SimDiskBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SimDisk
    }

    fn append(&self, obj: StorageObject, bytes: &[u8]) -> Result<u64> {
        self.inner.append(obj, bytes)
    }

    fn write_object(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        self.inner.write_object(obj, bytes)
    }

    fn read_all(&self, obj: StorageObject) -> Result<Vec<u8>> {
        self.inner.read_all(obj)
    }

    fn read_at(&self, obj: StorageObject, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.inner.read_at(obj, offset, len)
    }

    fn read_at_into(&self, obj: StorageObject, offset: u64, out: &mut [u8]) -> Result<()> {
        self.inner.read_at_into(obj, offset, out)
    }

    fn object_len(&self, obj: StorageObject) -> Result<Option<u64>> {
        self.inner.object_len(obj)
    }

    fn truncate(&self, obj: StorageObject, len: u64) -> Result<()> {
        self.inner.truncate(obj, len)
    }

    fn fsync(&self, obj: StorageObject) -> Result<()> {
        self.inner.fsync(obj)
    }

    fn delete(&self, obj: StorageObject) -> Result<()> {
        self.inner.delete(obj)
    }

    fn list(&self) -> Result<Vec<StorageObject>> {
        self.inner.list()
    }

    fn disk(&self) -> Option<Arc<DiskModel>> {
        Some(self.disk.read().clone())
    }

    fn attach_disk(&self, disk: Arc<DiskModel>) {
        *self.disk.write() = disk;
    }
}

// ---- FileBackend ----

/// Real files in one directory per node.
///
/// Layout: `journal.wal` plus one `container-<id>.sc` per sealed container;
/// `*.tmp` files are in-flight atomic replacements and are ignored (and swept)
/// on open.  Journal appends go through one cached append handle; durability
/// comes from the explicit [`fsync`](StorageBackend::fsync) the journal issues
/// at every acknowledgement point.  Whole-object writes and replacements go
/// write-temp / fsync / rename / fsync-dir, so a crash at any point leaves
/// either the old or the new object intact — never a mixture.
pub struct FileBackend {
    root: PathBuf,
    /// Cached append handle for the journal object (the hot path).  Invalidated
    /// by truncate/replace/delete so the next append reopens at the new length.
    journal: Mutex<Option<fs::File>>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("root", &self.root)
            .finish()
    }
}

fn io_err(context: &str, err: std::io::Error) -> StorageError {
    StorageError::Io(format!("{}: {}", context, err))
}

impl FileBackend {
    /// Opens (creating if needed) the backend rooted at `root`.
    ///
    /// Leftover `*.tmp` files from an interrupted atomic replacement are swept:
    /// by construction they were never renamed into place, so they hold
    /// unacknowledged data — exactly what a crash is allowed to lose.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the directory cannot be created or
    /// scanned.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&format!("create {}", root.display()), e))?;
        for entry in
            fs::read_dir(&root).map_err(|e| io_err(&format!("scan {}", root.display()), e))?
        {
            let entry = entry.map_err(|e| io_err("scan entry", e))?;
            let name = entry.file_name();
            if name.to_string_lossy().ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(FileBackend {
            root,
            journal: Mutex::new(None),
        })
    }

    /// The directory this backend stores its objects in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path(&self, obj: StorageObject) -> PathBuf {
        self.root.join(obj.file_name())
    }

    /// Fsyncs the directory itself so renames/removals of entries are durable.
    fn fsync_dir(&self) -> Result<()> {
        let dir = fs::File::open(&self.root)
            .map_err(|e| io_err(&format!("open dir {}", self.root.display()), e))?;
        dir.sync_all()
            .map_err(|e| io_err(&format!("fsync dir {}", self.root.display()), e))
    }

    /// Writes `bytes` to a fresh temp file, fsyncs it, renames it over the
    /// object, and fsyncs the directory — the four-step atomic publish.
    fn publish_atomic(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        let target = self.path(obj);
        let tmp = self.root.join(format!("{}.tmp", obj.file_name()));
        {
            let mut file = fs::File::create(&tmp)
                .map_err(|e| io_err(&format!("create {}", tmp.display()), e))?;
            file.write_all(bytes)
                .map_err(|e| io_err(&format!("write {}", tmp.display()), e))?;
            file.sync_all()
                .map_err(|e| io_err(&format!("fsync {}", tmp.display()), e))?;
        }
        fs::rename(&tmp, &target).map_err(|e| {
            io_err(
                &format!("rename {} -> {}", tmp.display(), target.display()),
                e,
            )
        })?;
        self.fsync_dir()
    }
}

impl StorageBackend for FileBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::File
    }

    fn persistent(&self) -> bool {
        true
    }

    fn append(&self, obj: StorageObject, bytes: &[u8]) -> Result<u64> {
        let path = self.path(obj);
        let open_append = || {
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(&format!("open {}", path.display()), e))
        };
        if obj == StorageObject::Journal {
            let mut cached = self.journal.lock();
            if cached.is_none() {
                *cached = Some(open_append()?);
            }
            let file = cached.as_mut().expect("populated above");
            let offset = file
                .metadata()
                .map_err(|e| io_err(&format!("stat {}", path.display()), e))?
                .len();
            file.write_all(bytes)
                .map_err(|e| io_err(&format!("append {}", path.display()), e))?;
            Ok(offset)
        } else {
            let mut file = open_append()?;
            let offset = file
                .metadata()
                .map_err(|e| io_err(&format!("stat {}", path.display()), e))?
                .len();
            file.write_all(bytes)
                .map_err(|e| io_err(&format!("append {}", path.display()), e))?;
            file.sync_all()
                .map_err(|e| io_err(&format!("fsync {}", path.display()), e))?;
            Ok(offset)
        }
    }

    fn write_object(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        if obj == StorageObject::Journal {
            *self.journal.lock() = None;
        }
        self.publish_atomic(obj, bytes)
    }

    fn read_all(&self, obj: StorageObject) -> Result<Vec<u8>> {
        match fs::read(self.path(obj)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err(&format!("read {}", self.path(obj).display()), e)),
        }
    }

    fn read_at(&self, obj: StorageObject, offset: u64, len: usize) -> Result<Vec<u8>> {
        let path = self.path(obj);
        let mut file =
            fs::File::open(&path).map_err(|e| io_err(&format!("open {}", path.display()), e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(&format!("seek {}", path.display()), e))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf).map_err(|e| {
            io_err(
                &format!("read {} bytes at {} from {}", len, offset, path.display()),
                e,
            )
        })?;
        Ok(buf)
    }

    fn read_at_into(&self, obj: StorageObject, offset: u64, out: &mut [u8]) -> Result<()> {
        let path = self.path(obj);
        let mut file =
            fs::File::open(&path).map_err(|e| io_err(&format!("open {}", path.display()), e))?;
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| io_err(&format!("seek {}", path.display()), e))?;
        file.read_exact(out).map_err(|e| {
            io_err(
                &format!(
                    "read {} bytes at {} from {}",
                    out.len(),
                    offset,
                    path.display()
                ),
                e,
            )
        })
    }

    fn object_len(&self, obj: StorageObject) -> Result<Option<u64>> {
        match fs::metadata(self.path(obj)) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(&format!("stat {}", self.path(obj).display()), e)),
        }
    }

    fn truncate(&self, obj: StorageObject, len: u64) -> Result<()> {
        if obj == StorageObject::Journal {
            // Drop the cached append handle so the next append reopens at the
            // truncated length.
            *self.journal.lock() = None;
        }
        let path = self.path(obj);
        let file = match fs::OpenOptions::new().write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(io_err(&format!("open {}", path.display()), e)),
        };
        file.set_len(len)
            .map_err(|e| io_err(&format!("truncate {}", path.display()), e))?;
        file.sync_all()
            .map_err(|e| io_err(&format!("fsync {}", path.display()), e))
    }

    fn replace_atomic(&self, obj: StorageObject, bytes: &[u8]) -> Result<()> {
        self.write_object(obj, bytes)
    }

    fn fsync(&self, obj: StorageObject) -> Result<()> {
        if obj == StorageObject::Journal {
            if let Some(file) = self.journal.lock().as_ref() {
                return file
                    .sync_all()
                    .map_err(|e| io_err(&format!("fsync {}", self.path(obj).display()), e));
            }
        }
        match fs::File::open(self.path(obj)) {
            Ok(file) => file
                .sync_all()
                .map_err(|e| io_err(&format!("fsync {}", self.path(obj).display()), e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&format!("open {}", self.path(obj).display()), e)),
        }
    }

    fn delete(&self, obj: StorageObject) -> Result<()> {
        if obj == StorageObject::Journal {
            *self.journal.lock() = None;
        }
        match fs::remove_file(self.path(obj)) {
            Ok(()) => self.fsync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(&format!("delete {}", self.path(obj).display()), e)),
        }
    }

    fn list(&self) -> Result<Vec<StorageObject>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)
            .map_err(|e| io_err(&format!("scan {}", self.root.display()), e))?
        {
            let entry = entry.map_err(|e| io_err("scan entry", e))?;
            if let Some(obj) = StorageObject::from_file_name(&entry.file_name().to_string_lossy()) {
                out.push(obj);
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sigma-backend-{}-{}-{}",
            tag,
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn backends(tag: &str) -> Vec<(Box<dyn StorageBackend>, Option<PathBuf>)> {
        let root = temp_root(tag);
        vec![
            (Box::new(MemoryBackend::new()), None),
            (
                Box::new(SimDiskBackend::new(Arc::new(DiskModel::new(
                    crate::DiskParams::default(),
                )))),
                None,
            ),
            (Box::new(FileBackend::open(&root).unwrap()), Some(root)),
        ]
    }

    #[test]
    fn append_read_truncate_roundtrip_on_every_backend() {
        for (backend, root) in backends("rt") {
            let obj = StorageObject::Journal;
            assert_eq!(backend.object_len(obj).unwrap(), None);
            assert_eq!(backend.append(obj, b"hello ").unwrap(), 0);
            assert_eq!(backend.append(obj, b"world").unwrap(), 6);
            backend.fsync(obj).unwrap();
            assert_eq!(backend.read_all(obj).unwrap(), b"hello world");
            assert_eq!(backend.read_at(obj, 6, 5).unwrap(), b"world");
            assert!(backend.read_at(obj, 6, 6).is_err(), "read past end errors");
            let mut into = [0u8; 5];
            backend.read_at_into(obj, 6, &mut into).unwrap();
            assert_eq!(&into, b"world", "read_at_into fills the caller's buffer");
            let mut past = [0u8; 6];
            assert!(
                backend.read_at_into(obj, 6, &mut past).is_err(),
                "read_at_into past end errors"
            );
            backend.truncate(obj, 5).unwrap();
            assert_eq!(backend.read_all(obj).unwrap(), b"hello");
            assert_eq!(backend.append(obj, b"!").unwrap(), 5);
            assert_eq!(backend.read_all(obj).unwrap(), b"hello!");
            if let Some(root) = root {
                let _ = fs::remove_dir_all(root);
            }
        }
    }

    #[test]
    fn write_object_delete_and_list_on_every_backend() {
        for (backend, root) in backends("list") {
            let a = StorageObject::Container(ContainerId::new(3));
            let b = StorageObject::Container(ContainerId::new(1));
            backend.write_object(a, b"aaa").unwrap();
            backend.write_object(b, b"b").unwrap();
            backend.append(StorageObject::Journal, b"j").unwrap();
            assert_eq!(
                backend.list().unwrap(),
                vec![StorageObject::Journal, b, a],
                "sorted: journal before containers, containers by id"
            );
            assert_eq!(backend.object_len(a).unwrap(), Some(3));
            backend.write_object(a, b"replaced").unwrap();
            assert_eq!(backend.read_all(a).unwrap(), b"replaced");
            backend.delete(a).unwrap();
            backend.delete(a).unwrap(); // absent delete is a no-op
            assert_eq!(backend.object_len(a).unwrap(), None);
            assert_eq!(backend.list().unwrap(), vec![StorageObject::Journal, b]);
            if let Some(root) = root {
                let _ = fs::remove_dir_all(root);
            }
        }
    }

    #[test]
    fn file_backend_survives_reopen() {
        let root = temp_root("reopen");
        {
            let backend = FileBackend::open(&root).unwrap();
            backend.append(StorageObject::Journal, b"frames").unwrap();
            backend.fsync(StorageObject::Journal).unwrap();
            backend
                .write_object(StorageObject::Container(ContainerId::new(7)), b"payload")
                .unwrap();
        }
        let backend = FileBackend::open(&root).unwrap();
        assert_eq!(backend.read_all(StorageObject::Journal).unwrap(), b"frames");
        assert_eq!(
            backend
                .read_all(StorageObject::Container(ContainerId::new(7)))
                .unwrap(),
            b"payload"
        );
        assert_eq!(backend.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn file_backend_sweeps_stale_tmp_files_and_keeps_old_object() {
        // A crash between write-temp and rename leaves a *.tmp behind; reopening
        // must ignore and sweep it, with the old object fully intact — the
        // compaction ack-ordering contract.
        let root = temp_root("tmp");
        {
            let backend = FileBackend::open(&root).unwrap();
            backend
                .replace_atomic(StorageObject::Journal, b"old snapshot")
                .unwrap();
        }
        fs::write(root.join("journal.wal.tmp"), b"half-written new snapshot").unwrap();
        let backend = FileBackend::open(&root).unwrap();
        assert_eq!(
            backend.read_all(StorageObject::Journal).unwrap(),
            b"old snapshot"
        );
        assert!(
            !root.join("journal.wal.tmp").exists(),
            "stale temp file swept on open"
        );
        assert_eq!(backend.list().unwrap(), vec![StorageObject::Journal]);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn sim_disk_backend_rebinds_its_disk() {
        let first = Arc::new(DiskModel::new(crate::DiskParams::default()));
        let backend = SimDiskBackend::new(first.clone());
        assert!(Arc::ptr_eq(&backend.disk().unwrap(), &first));
        let second = Arc::new(DiskModel::new(crate::DiskParams::default()));
        backend.attach_disk(second.clone());
        assert!(Arc::ptr_eq(&backend.disk().unwrap(), &second));
        assert!(MemoryBackend::new().disk().is_none());
    }

    #[test]
    fn object_names_round_trip() {
        for obj in [
            StorageObject::Journal,
            StorageObject::Container(ContainerId::new(0)),
            StorageObject::Container(ContainerId::new(123456)),
        ] {
            assert_eq!(StorageObject::from_file_name(&obj.file_name()), Some(obj));
        }
        assert_eq!(StorageObject::from_file_name("journal.wal.tmp"), None);
        assert_eq!(StorageObject::from_file_name("container-x.sc"), None);
        assert_eq!(StorageObject::from_file_name("README"), None);
        assert_eq!(BackendKind::parse("file"), Some(BackendKind::File));
        assert_eq!(BackendKind::parse("sim-disk"), Some(BackendKind::SimDisk));
        assert_eq!(BackendKind::parse("memory"), Some(BackendKind::Memory));
        assert_eq!(BackendKind::parse("floppy"), None);
        assert_eq!(BackendKind::SimDisk.to_string(), "sim-disk");
    }
}
