//! Retention quickstart: generational backups, expiry and garbage collection.
//!
//! Four nightly backup generations are ingested from three client streams, then
//! the oldest two generations expire — each expiry is a `delete_generation`
//! (recipes leave the root set) followed by a `collect_garbage` mark-and-sweep
//! that drops fully-dead containers and compacts mostly-dead ones.  Every
//! surviving file is then restore-verified byte for byte.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example retention
//! ```

use sigma_dedupe::prelude::*;

fn main() {
    let config = RetentionConfig::default();
    // Print the configuration up front so every number below is reproducible
    // from the output alone.
    println!("backup lifecycle: retention churn");
    println!(
        "  workload   : {} streams x {} generations, {} KiB initial/stream, {} KiB growth/gen, {:.0}% mutation, seed {:#x}",
        config.streams,
        config.generations,
        config.initial_stream_bytes / 1024,
        config.growth_per_generation / 1024,
        config.mutation_rate * 100.0,
        config.seed,
    );
    println!(
        "  cluster    : {} nodes, {} KiB super-chunks, {} KiB containers, GC liveness threshold {:.2}",
        config.nodes,
        config.sigma.super_chunk_size / 1024,
        config.sigma.container_capacity / 1024,
        config.sigma.gc_liveness_threshold,
    );
    println!(
        "  retention  : expire the oldest {} generations",
        config.expire
    );

    let outcome = run_retention(&config);

    let mut table = TextTable::new(vec![
        "expired gen",
        "logical freed KiB",
        "dropped",
        "compacted",
        "kept partial",
        "reclaimed KiB",
        "physical after KiB",
        "live KiB",
    ]);
    for round in &outcome.rounds {
        table.add_row(vec![
            round.generation.to_string(),
            (round.logical_freed / 1024).to_string(),
            round.gc.containers_dropped.to_string(),
            round.gc.containers_compacted.to_string(),
            round.gc.containers_kept_partial.to_string(),
            (round.gc.bytes_reclaimed / 1024).to_string(),
            (round.physical_after / 1024).to_string(),
            (round.gc.live_bytes / 1024).to_string(),
        ]);
    }
    println!();
    println!("{}", table.render());

    println!(
        "physical bytes: {} KiB before expiry -> {} KiB after ({} KiB reclaimed)",
        outcome.physical_before_expiry / 1024,
        outcome.physical_after / 1024,
        outcome.reclaimed_bytes / 1024,
    );
    println!(
        "survivors: {}/{} files restored byte-identically",
        outcome.restored_intact, outcome.survivors,
    );
    // Machine-readable summary line: CI greps it and asserts reclamation > 0.
    println!("reclaimed_bytes={}", outcome.reclaimed_bytes);

    assert!(outcome.all_restored(), "a surviving file failed to restore");
    assert!(outcome.space_reclaimed(), "expiry reclaimed no space");
    assert!(outcome.never_below_live(), "GC swept live bytes");
}
