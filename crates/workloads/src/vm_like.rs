//! A virtual-machine-backup-like workload: few huge files, skewed sizes, block churn.
//!
//! The paper's VM dataset is two consecutive monthly full backups of 8 VM images
//! (313 GB, DR ≈ 4.1).  Three properties matter for the evaluation and are modelled
//! here:
//!
//! * files (disk images) are *very large* and their sizes are skewed — which is what
//!   makes Extreme Binning's file-granularity placement skew capacity (Figure 8,
//!   VM panel);
//! * consecutive full backups of the same image are mostly identical (block churn of
//!   a few percent); and
//! * images contain internal redundancy (zero blocks, shared OS files across VMs),
//!   so even the first backup deduplicates somewhat.

use crate::{ChunkSpec, DatasetKind, DatasetTrace, DeterministicRng, FileTrace, GenerationTrace};
use serde::{Deserialize, Serialize};

/// Parameters of the VM-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmLikeParams {
    /// Deterministic seed (also namespaces the fingerprints).
    pub seed: u64,
    /// Number of virtual machines.
    pub vm_count: usize,
    /// Number of full-backup generations.
    pub generations: usize,
    /// Size of the *smallest* image in bytes; sizes grow linearly up to
    /// `size_skew ×` this for the largest VM.
    pub base_image_size: u64,
    /// Ratio of the largest to the smallest image size.
    pub size_skew: f64,
    /// Chunk size in bytes.
    pub chunk_size: u32,
    /// Fraction of an image's blocks that change between consecutive backups.
    pub block_change_rate: f64,
    /// Fraction of an image's blocks drawn from a small shared pool (zero blocks,
    /// common OS files), which creates intra- and inter-image redundancy.
    pub shared_block_rate: f64,
    /// Number of distinct blocks in the shared pool.
    pub shared_pool_size: u64,
    /// Length (in blocks) of the contiguous runs in which shared and private blocks
    /// appear.  Real images contain zero-block and OS-file *regions*, not isolated
    /// shared blocks, and this locality is what similarity-based routing exploits.
    pub run_length: u64,
}

impl Default for VmLikeParams {
    fn default() -> Self {
        VmLikeParams {
            seed: 0x5eed,
            vm_count: 8,
            generations: 2,
            base_image_size: 8 << 20,
            size_skew: 6.0,
            chunk_size: 4096,
            block_change_rate: 0.03,
            shared_block_rate: 0.35,
            shared_pool_size: 400,
            run_length: 64,
        }
    }
}

/// Generates the trace described by `params`.
///
/// # Example
///
/// ```
/// use sigma_workloads::vm_like::{generate, VmLikeParams};
///
/// let trace = generate(VmLikeParams { vm_count: 3, base_image_size: 1 << 20, ..VmLikeParams::default() });
/// assert_eq!(trace.generations.len(), 2);
/// assert_eq!(trace.generations[0].files.len(), 3);
/// assert!(trace.exact_dedup_ratio() > 1.5);
/// ```
pub fn generate(params: VmLikeParams) -> DatasetTrace {
    let mut rng = DeterministicRng::new(params.seed);
    let mut next_private_chunk = params.shared_pool_size; // ids below this are the shared pool

    // Build generation 0 for every VM.
    let mut images: Vec<FileTrace> = Vec::with_capacity(params.vm_count);
    for vm in 0..params.vm_count {
        let scale = if params.vm_count > 1 {
            1.0 + (params.size_skew - 1.0) * vm as f64 / (params.vm_count - 1) as f64
        } else {
            1.0
        };
        let image_size = (params.base_image_size as f64 * scale) as u64;
        let block_count = (image_size / params.chunk_size as u64).max(1);
        let run_length = params.run_length.max(1);
        let mut chunks = Vec::with_capacity(block_count as usize);
        // Blocks are laid down in contiguous runs: a run is either a region from the
        // shared pool (zero blocks, common OS files) or a region of image-private
        // blocks.  Regions — not isolated blocks — are what real images share.
        while (chunks.len() as u64) < block_count {
            let run = run_length.min(block_count - chunks.len() as u64);
            if rng.chance(params.shared_block_rate) {
                // A contiguous slice of the shared pool, start position zipf-skewed
                // so zero-block-like regions dominate.
                let start = rng.zipf(params.shared_pool_size, 1.2);
                for offset in 0..run {
                    let id = (start + offset) % params.shared_pool_size;
                    chunks.push(ChunkSpec::from_identity(params.seed, id, params.chunk_size));
                }
            } else {
                for _ in 0..run {
                    let id = next_private_chunk;
                    next_private_chunk += 1;
                    chunks.push(ChunkSpec::from_identity(params.seed, id, params.chunk_size));
                }
            }
        }
        images.push(FileTrace {
            file_id: vm as u64,
            name: format!("vm-{:02}.img", vm),
            chunks,
        });
    }

    let mut generations = vec![GenerationTrace {
        generation: 0,
        files: images.clone(),
    }];

    for generation in 1..params.generations {
        for image in images.iter_mut() {
            for chunk in image.chunks.iter_mut() {
                if rng.chance(params.block_change_rate) {
                    let id = next_private_chunk;
                    next_private_chunk += 1;
                    *chunk = ChunkSpec::from_identity(params.seed, id, params.chunk_size);
                }
            }
        }
        generations.push(GenerationTrace {
            generation,
            files: images.clone(),
        });
    }

    DatasetTrace {
        name: "VM".to_string(),
        kind: DatasetKind::Vm,
        has_file_boundaries: true,
        generations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> VmLikeParams {
        VmLikeParams {
            vm_count: 6,
            base_image_size: 2 << 20,
            ..VmLikeParams::default()
        }
    }

    #[test]
    fn structure_matches_parameters() {
        let t = generate(small_params());
        assert_eq!(t.generations.len(), 2);
        assert_eq!(t.generations[0].files.len(), 6);
        assert!(t.has_file_boundaries);
        assert_eq!(t.kind, DatasetKind::Vm);
    }

    #[test]
    fn dedup_ratio_in_the_vm_ballpark() {
        let t = generate(small_params());
        let dr = t.exact_dedup_ratio();
        // Two nearly identical generations plus intra-image redundancy: the paper
        // reports ≈ 4.1; accept a generous band around it.
        assert!(dr > 2.5 && dr < 7.0, "dr = {}", dr);
    }

    #[test]
    fn file_sizes_are_skewed() {
        let t = generate(small_params());
        let sizes: Vec<u64> = t.generations[0]
            .files
            .iter()
            .map(|f| f.logical_bytes())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max as f64 / min as f64 > 3.0, "min {} max {}", min, max);
    }

    #[test]
    fn images_are_large_files() {
        let t = generate(small_params());
        assert!(t.generations[0]
            .files
            .iter()
            .all(|f| f.logical_bytes() >= 1 << 20));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(small_params()), generate(small_params()));
    }

    #[test]
    fn consecutive_generations_mostly_overlap() {
        let t = generate(small_params());
        let set0: std::collections::HashSet<_> = t.generations[0]
            .files
            .iter()
            .flat_map(|f| f.chunks.iter().map(|c| c.fingerprint))
            .collect();
        let gen1_chunks: Vec<_> = t.generations[1]
            .files
            .iter()
            .flat_map(|f| f.chunks.iter().map(|c| c.fingerprint))
            .collect();
        let shared = gen1_chunks.iter().filter(|fp| set0.contains(fp)).count();
        assert!(shared as f64 / gen1_chunks.len() as f64 > 0.9);
    }
}
