//! Per-tenant token-bucket rate limiting.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::RequestEnvelope;
use parking_lot::Mutex;
use sigma_core::SigmaError;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for the bucket refill.
///
/// Production uses [`SystemClock`]; tests inject a [`ManualClock`] so refill
/// behaviour is deterministic.
pub trait RateLimitClock: Send + Sync {
    /// Monotonic elapsed time since an arbitrary fixed epoch.
    fn now(&self) -> Duration;
}

/// [`Instant`]-backed clock (the default).
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl RateLimitClock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Mutex<Duration>,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        *self.now.lock() += delta;
    }
}

impl RateLimitClock for ManualClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

/// Fixed-point token scale: one token is one billion nanotokens.
///
/// The bucket accounts in integer nanotokens rather than an `f64` token
/// count.  With floating accumulation, ten 1-second refills at 0.1 tokens/s
/// summed to `0.9999999999999999` — strictly below the 1-token grant
/// threshold — so a tenant polling every second at a low rate was starved
/// forever, while a single 10-second refill was granted.  Each refill now
/// converts its elapsed nanoseconds to nanotokens with one *rounded*
/// multiplication (error ≤ half a nanotoken per refill, never compounding
/// across the grant threshold), and grants compare integers.
const NANOTOKENS_PER_TOKEN: u128 = 1_000_000_000;

/// One tenant's bucket: whole nanotokens plus the last refill instant.
#[derive(Debug)]
struct Bucket {
    nanotokens: u128,
    refreshed: Duration,
}

/// Token-bucket rate limiter, one bucket per tenant.
///
/// Every request costs one token.  A bucket starts full at `capacity` (the
/// burst allowance) and refills continuously at `refill_per_sec`.  A request
/// arriving at an empty bucket is rejected with [`SigmaError::RateLimited`]
/// (code [`ResourceExhausted`](sigma_core::ServiceCode::ResourceExhausted))
/// carrying the milliseconds until one token is available — without reaching
/// any lower layer.
///
/// # Example
///
/// ```
/// use sigma_service::middleware::{ManualClock, RateLimit};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let clock = Arc::new(ManualClock::new());
/// let limiter = RateLimit::new(2, 1.0).with_clock(clock.clone());
/// assert!(limiter.try_acquire("t").is_ok());
/// assert!(limiter.try_acquire("t").is_ok());
/// assert!(limiter.try_acquire("t").is_err(), "burst of 2 exhausted");
/// clock.advance(Duration::from_secs(1));
/// assert!(limiter.try_acquire("t").is_ok(), "refilled one token");
/// ```
pub struct RateLimit {
    capacity: u64,
    refill_per_sec: f64,
    clock: Arc<dyn RateLimitClock>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl std::fmt::Debug for RateLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimit")
            .field("capacity", &self.capacity)
            .field("refill_per_sec", &self.refill_per_sec)
            .finish_non_exhaustive()
    }
}

impl RateLimit {
    /// Creates a limiter where every tenant gets a bucket of `capacity`
    /// tokens refilling at `refill_per_sec` tokens per second
    /// (`0.0` = no refill: a hard cap of `capacity` requests, useful in
    /// tests).  Negative or non-finite refill rates are treated as `0.0`.
    pub fn new(capacity: u64, refill_per_sec: f64) -> Self {
        let refill = if refill_per_sec.is_finite() && refill_per_sec > 0.0 {
            refill_per_sec
        } else {
            0.0
        };
        RateLimit {
            capacity,
            refill_per_sec: refill,
            clock: Arc::new(SystemClock::default()),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Substitutes the time source (deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn RateLimitClock>) -> Self {
        self.clock = clock;
        self
    }

    /// The burst capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Takes one token from the tenant's bucket.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::RateLimited`] when the bucket is empty.
    pub fn try_acquire(&self, tenant: &str) -> Result<(), SigmaError> {
        let now = self.clock.now();
        let cap = u128::from(self.capacity) * NANOTOKENS_PER_TOKEN;
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            nanotokens: cap,
            refreshed: now,
        });
        // One rounded conversion per refill: elapsed nanoseconds × tokens/s
        // is nanotokens directly (both scales are 1e9), so the only error is
        // the final rounding — at most half a nanotoken, and it does not
        // accumulate multiplicatively across calls.
        let elapsed_nanos = now.saturating_sub(bucket.refreshed).as_nanos();
        let refill = (elapsed_nanos as f64 * self.refill_per_sec).round() as u128;
        bucket.nanotokens = bucket.nanotokens.saturating_add(refill).min(cap);
        bucket.refreshed = now;
        if bucket.nanotokens >= NANOTOKENS_PER_TOKEN {
            bucket.nanotokens -= NANOTOKENS_PER_TOKEN;
            Ok(())
        } else {
            let retry_after_ms = if self.refill_per_sec > 0.0 {
                let deficit_tokens =
                    (NANOTOKENS_PER_TOKEN - bucket.nanotokens) as f64 / NANOTOKENS_PER_TOKEN as f64;
                (deficit_tokens / self.refill_per_sec * 1000.0).ceil() as u64
            } else {
                0
            };
            Err(SigmaError::RateLimited {
                tenant: tenant.to_string(),
                retry_after_ms,
            })
        }
    }
}

impl Middleware for RateLimit {
    fn name(&self) -> &'static str {
        "rate-limit"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        self.try_acquire(&req.tenant)?;
        next.run(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;

    #[test]
    fn burst_then_reject_then_refill() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimit::new(3, 2.0).with_clock(clock.clone());
        for _ in 0..3 {
            assert!(limiter.try_acquire("t").is_ok());
        }
        let err = limiter.try_acquire("t").unwrap_err();
        match err {
            SigmaError::RateLimited { retry_after_ms, .. } => {
                assert_eq!(retry_after_ms, 500, "one token at 2/s is 500 ms away");
            }
            other => panic!("expected RateLimited, got {:?}", other),
        }
        clock.advance(Duration::from_millis(500));
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_err(), "only one token refilled");
    }

    #[test]
    fn refill_never_exceeds_capacity() {
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimit::new(2, 100.0).with_clock(clock.clone());
        clock.advance(Duration::from_secs(3600));
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_ok());
        assert!(limiter.try_acquire("t").is_err(), "capped at capacity 2");
    }

    #[test]
    fn sub_interval_polling_accrues_the_same_tokens_as_one_shot_elapsed() {
        // Regression: with f64 token accumulation, ten 1-second refills at
        // 0.1 tokens/s summed to 0.9999999999999999 — below the 1.0 grant
        // threshold — so a tenant polling every second at a low rate starved
        // even though 10 elapsed seconds had earned a whole token.
        let polled_clock = Arc::new(ManualClock::new());
        let polled = RateLimit::new(1, 0.1).with_clock(polled_clock.clone());
        assert!(polled.try_acquire("t").is_ok(), "initial burst token");
        let mut granted = 0;
        for _ in 0..10 {
            polled_clock.advance(Duration::from_secs(1));
            if polled.try_acquire("t").is_ok() {
                granted += 1;
            }
        }
        assert_eq!(
            granted, 1,
            "ten 1-second refills at 0.1 tokens/s must sum to exactly one token"
        );

        // The one-shot control: same tenant behaviour with a single refill.
        let oneshot_clock = Arc::new(ManualClock::new());
        let oneshot = RateLimit::new(1, 0.1).with_clock(oneshot_clock.clone());
        assert!(oneshot.try_acquire("t").is_ok());
        oneshot_clock.advance(Duration::from_secs(10));
        assert!(oneshot.try_acquire("t").is_ok(), "10 s at 0.1/s is a token");
    }

    #[test]
    fn ragged_millisecond_polling_does_not_starve_low_rates() {
        // 2000 × 5 ms at 0.2 tokens/s is exactly two tokens; per-refill
        // rounding error is bounded by half a nanotoken and must never push
        // the accrual below a whole-token boundary.
        let clock = Arc::new(ManualClock::new());
        let limiter = RateLimit::new(1, 0.2).with_clock(clock.clone());
        assert!(limiter.try_acquire("t").is_ok(), "burst token");
        let mut granted = 0;
        for _ in 0..2000 {
            clock.advance(Duration::from_millis(5));
            if limiter.try_acquire("t").is_ok() {
                granted += 1;
            }
        }
        assert_eq!(granted, 2, "10 s of 5 ms polls at 0.2/s is two tokens");
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let limiter = RateLimit::new(1, 0.0);
        assert!(limiter.try_acquire("a").is_ok());
        assert!(limiter.try_acquire("a").is_err());
        assert!(limiter.try_acquire("b").is_ok(), "b has its own bucket");
    }

    #[test]
    fn zero_refill_reports_no_retry_hint() {
        let limiter = RateLimit::new(0, 0.0);
        match limiter.try_acquire("t").unwrap_err() {
            SigmaError::RateLimited { retry_after_ms, .. } => assert_eq!(retry_after_ms, 0),
            other => panic!("expected RateLimited, got {:?}", other),
        }
    }

    #[test]
    fn pathological_refill_rates_degrade_to_zero() {
        for bad in [f64::NAN, f64::INFINITY, -5.0] {
            let limiter = RateLimit::new(1, bad);
            assert!(limiter.try_acquire("t").is_ok());
            assert!(limiter.try_acquire("t").is_err(), "rate {} acts as 0", bad);
        }
    }

    #[test]
    fn middleware_rejects_with_resource_exhausted() {
        let p = PipelineExecutor::new(
            vec![std::sync::Arc::new(RateLimit::new(1, 0.0))],
            std::sync::Arc::new(|r: RequestEnvelope| Ok(ResponseEnvelope::ok(r.request_id))),
        );
        assert!(p
            .execute(RequestEnvelope::new(1, "t", Operation::Stats))
            .is_ok());
        let resp = p.execute(RequestEnvelope::new(2, "t", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::ResourceExhausted);
    }
}
