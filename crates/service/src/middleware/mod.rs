//! The composable middleware abstraction and the six production-shaped
//! middlewares that ship with the service.
//!
//! A [`Middleware`] wraps the rest of the pipeline: it receives the request
//! and a [`Next`] handle, and decides whether to pass the request on
//! (optionally transformed), short-circuit with an error, or post-process the
//! response on the way out.  Errors returned anywhere in the chain become
//! [`ResponseEnvelope`] rejections at the pipeline
//! boundary, with the [`ServiceCode`](sigma_core::ServiceCode) derived from
//! [`SigmaError::code`](sigma_core::SigmaError::code).

mod admission;
mod auth;
mod fair_scheduler;
mod logging;
mod quota;
mod rate_limit;

pub use admission::{AdmissionControl, AdmissionPermit};
pub use auth::TokenAuth;
pub use fair_scheduler::FairScheduler;
pub use logging::{LogEntry, RequestLog};
pub use quota::TenantQuota;
pub use rate_limit::{ManualClock, RateLimit, RateLimitClock, SystemClock};

use crate::{RequestEnvelope, ResponseEnvelope};
use sigma_core::SigmaError;

/// Result of one step of the pipeline: a response, or an error the pipeline
/// boundary turns into a rejection envelope.
pub type ServiceResult = Result<ResponseEnvelope, SigmaError>;

/// The rest of the pipeline, seen from inside a middleware.
pub trait Next {
    /// Runs the remaining middlewares and the backend on `req`.
    fn run(&self, req: RequestEnvelope) -> ServiceResult;
}

/// One composable layer of the request/response pipeline.
///
/// Implementations must be `Send + Sync`: one middleware instance serves
/// every connection of every transport concurrently.
pub trait Middleware: Send + Sync {
    /// Short stable name (shown in logs and stack descriptions).
    fn name(&self) -> &'static str;

    /// Handles `req`, normally by delegating to `next.run(req)` and possibly
    /// inspecting or enriching the response on the way back out.  Returning
    /// `Err` short-circuits: no layer below (including the backend) sees the
    /// request.
    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult;
}
