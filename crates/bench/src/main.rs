//! `sigma-bench` — one-shot benchmark runner for the persisted performance
//! trajectory.
//!
//! ```text
//! sigma-bench [--quick] [--label NAME] [--out PATH]
//!             [--compare PATH] [--tolerance PCT]
//! ```
//!
//! Measures ingest (payload pipeline + linux-like trace), rebalance,
//! recovery replay, and GC reclaim throughput, writes the results as a
//! schema-versioned JSON report, and — when `--compare` names a committed
//! baseline — fails (exit 1) if any headline metric regressed more than the
//! tolerance after calibration normalization.
//!
//! A full run (no `--quick`) also executes the CI-sized suite under
//! `quick/`-prefixed metric names, so CI quick runs always compare
//! same-sized measurements against the committed file.

use sigma_bench::runner::{run, RunnerOptions};
use sigma_bench::trajectory::{compare, BenchReport};
use std::process::ExitCode;

struct Cli {
    quick: bool,
    label: String,
    out: Option<String>,
    compare: Option<String>,
    tolerance_pct: f64,
}

const USAGE: &str = "usage: sigma-bench [--quick] [--label NAME] [--out PATH] \
[--compare PATH] [--tolerance PCT]";

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        quick: false,
        label: "pr7".to_string(),
        out: None,
        compare: None,
        tolerance_pct: 15.0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or(format!("{flag} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--quick" => cli.quick = true,
            "--label" => cli.label = value("--label")?,
            "--out" => cli.out = Some(value("--out")?),
            "--compare" => cli.compare = Some(value("--compare")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                cli.tolerance_pct = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance expects a number, got {raw:?}"))?;
                if !(0.0..=100.0).contains(&cli.tolerance_pct) {
                    return Err(format!(
                        "--tolerance must be between 0 and 100, got {}",
                        cli.tolerance_pct
                    ));
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let report = run(&RunnerOptions {
        quick: cli.quick,
        label: cli.label.clone(),
    });

    println!();
    println!(
        "sigma-bench report ({} mode, label {:?})",
        report.mode, report.label
    );
    println!("calibration: {:.1} MB/s", report.calibration_mbps);
    println!(
        "single-thread ingest vs. reference chunker: {:.2}x",
        report.ingest_speedup_vs_reference
    );
    println!(
        "{:<36} {:>10}  {:<18} gated",
        "metric", "MB/s", "byte basis"
    );
    for m in &report.metrics {
        println!(
            "{:<36} {:>10.1}  {:<18} {}",
            m.name,
            m.mbps,
            m.byte_basis.as_str(),
            if m.headline { "yes" } else { "-" }
        );
    }

    if let Some(path) = &cli.out {
        if let Err(error) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }

    if let Some(path) = &cli.compare {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("failed to read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(baseline) => baseline,
            Err(error) => {
                eprintln!("failed to parse baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = compare(&baseline, &report, cli.tolerance_pct / 100.0);
        println!(
            "\ncomparison vs. {path} (tolerance {:.0}%, calibration-normalized)",
            cli.tolerance_pct
        );
        println!(
            "{:<36} {:>10} {:>10} {:>8}  verdict",
            "metric", "baseline", "current", "ratio"
        );
        for row in &outcome.rows {
            let verdict = if row.regressed {
                "REGRESSED"
            } else if row.headline {
                "ok"
            } else {
                "(not gated)"
            };
            println!(
                "{:<36} {:>10.1} {:>10.1} {:>7.2}x  {}",
                row.name, row.baseline_mbps, row.current_mbps, row.ratio, verdict
            );
        }
        if !outcome.passed() {
            eprintln!(
                "\nFAIL: {} headline metric(s) regressed beyond {:.0}%: {}",
                outcome.regressions.len(),
                cli.tolerance_pct,
                outcome.regressions.join(", ")
            );
            return ExitCode::FAILURE;
        }
        println!(
            "\nPASS: no headline metric regressed beyond {:.0}%",
            cli.tolerance_pct
        );
    }

    ExitCode::SUCCESS
}
