//! The traditional on-disk chunk fingerprint index.
//!
//! Every unique chunk stored by a node gets an entry mapping its fingerprint to the
//! container (and offset) holding it.  For a large dataset this index does not fit in
//! RAM — that is exactly the disk-bottleneck problem Σ-Dedupe's similarity index and
//! fingerprint cache are designed to avoid — so lookups against it are charged to the
//! [`DiskModel`](crate::DiskModel) as random reads.  The paper keeps this index only
//! as a fallback for fingerprints that miss in the cache and treats such misses as a
//! "relatively rare occurrence" (Section 3.3); experiments can also disable it to
//! obtain the similarity-index-only approximate deduplication mode of Figure 5(b).

use crate::{ContainerId, DiskModel};
use serde::{Deserialize, Serialize};
use sigma_hashkit::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where a unique chunk is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLocation {
    /// Container holding the chunk.
    pub container: ContainerId,
    /// Offset of the chunk within the container's data section.
    pub offset: u32,
    /// Chunk length in bytes.
    pub len: u32,
}

/// Statistics of a [`ChunkIndex`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkIndexStats {
    /// Lookup operations (each charged as one simulated random disk read).
    pub lookups: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Insert operations.
    pub inserts: u64,
    /// Current number of entries.
    pub entries: u64,
}

/// A hash-table chunk index with simulated-disk accounting.
///
/// # Example
///
/// ```
/// use sigma_storage::{ChunkIndex, ChunkLocation, ContainerId};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let index = ChunkIndex::new();
/// let fp = Sha1::fingerprint(b"unique chunk");
/// let loc = ChunkLocation { container: ContainerId::new(1), offset: 0, len: 17 };
/// assert!(index.insert(fp, loc).is_none());
/// assert_eq!(index.lookup(&fp), Some(loc));
/// ```
#[derive(Debug, Default)]
pub struct ChunkIndex {
    map: parking_lot::RwLock<HashMap<Fingerprint, ChunkLocation>>,
    disk: Option<Arc<DiskModel>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    inserts: AtomicU64,
}

impl ChunkIndex {
    /// Creates an index without disk accounting.
    pub fn new() -> Self {
        ChunkIndex::default()
    }

    /// Creates an index whose lookups are charged to `disk` as random reads and whose
    /// inserts are charged as random writes.
    pub fn with_disk(disk: Arc<DiskModel>) -> Self {
        ChunkIndex {
            disk: Some(disk),
            ..ChunkIndex::default()
        }
    }

    /// Inserts an entry, returning the previous location if the fingerprint was
    /// already present.
    pub fn insert(&self, fp: Fingerprint, location: ChunkLocation) -> Option<ChunkLocation> {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_write();
        }
        self.map.write().insert(fp, location)
    }

    /// Looks up the location of a chunk fingerprint.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ChunkLocation> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(disk) = &self.disk {
            disk.record_random_read();
        }
        let found = self.map.read().get(fp).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// True if the fingerprint is indexed (without charging a disk access or
    /// incrementing the lookup statistics — used by invariant checks in tests).
    pub fn contains_silent(&self, fp: &Fingerprint) -> bool {
        self.map.read().contains_key(fp)
    }

    /// Number of indexed chunks.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated size in bytes (entries × 40 B, the paper's index-entry estimate).
    pub fn estimated_bytes(&self) -> usize {
        self.len() * 40
    }

    /// Snapshot of the index statistics.
    pub fn stats(&self) -> ChunkIndexStats {
        ChunkIndexStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskParams;
    use sigma_hashkit::{Digest, Sha1};

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    fn loc(c: u64, offset: u32) -> ChunkLocation {
        ChunkLocation {
            container: ContainerId::new(c),
            offset,
            len: 4096,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let idx = ChunkIndex::new();
        assert!(idx.insert(fp(1), loc(1, 0)).is_none());
        assert_eq!(idx.insert(fp(1), loc(2, 0)), Some(loc(1, 0)));
        assert_eq!(idx.lookup(&fp(1)), Some(loc(2, 0)));
        assert_eq!(idx.lookup(&fp(2)), None);
        assert_eq!(idx.len(), 1);
        assert!(!idx.is_empty());
    }

    #[test]
    fn stats_and_size_estimate() {
        let idx = ChunkIndex::new();
        for i in 0..50u64 {
            idx.insert(fp(i), loc(i, 0));
        }
        for i in 0..100u64 {
            idx.lookup(&fp(i));
        }
        let s = idx.stats();
        assert_eq!(s.inserts, 50);
        assert_eq!(s.lookups, 100);
        assert_eq!(s.hits, 50);
        assert_eq!(s.entries, 50);
        assert_eq!(idx.estimated_bytes(), 50 * 40);
    }

    #[test]
    fn disk_accounting_charges_lookups_and_inserts() {
        let disk = Arc::new(DiskModel::new(DiskParams::default()));
        let idx = ChunkIndex::with_disk(disk.clone());
        idx.insert(fp(1), loc(1, 0));
        idx.lookup(&fp(1));
        idx.lookup(&fp(2));
        let d = disk.stats();
        assert_eq!(d.random_writes, 1);
        assert_eq!(d.random_reads, 2);
    }

    #[test]
    fn contains_silent_does_not_touch_stats() {
        let idx = ChunkIndex::new();
        idx.insert(fp(1), loc(1, 0));
        assert!(idx.contains_silent(&fp(1)));
        assert!(!idx.contains_silent(&fp(2)));
        assert_eq!(idx.stats().lookups, 0);
    }
}
