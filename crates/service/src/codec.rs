//! Length-prefixed binary envelope codec — the framed-TCP wire format.
//!
//! Each frame is a little-endian `u32` body length followed by the body:
//!
//! ```text
//! ┌─────────────┬──────┬─────────┬──────────────────────────────┐
//! │ len: u32 LE │ kind │ version │ body (request or response)   │
//! └─────────────┴──────┴─────────┴──────────────────────────────┘
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes; maps are `u32` count + pairs;
//! integers are little-endian; the response status travels as
//! [`ServiceCode::wire`].  The codec is hand-rolled (no serialization crate
//! on the wire) so the format is explicit, versioned, and stable across
//! builds.  Frames above [`MAX_FRAME_BYTES`] are refused on both ends so a
//! corrupt length prefix cannot trigger an unbounded allocation.

use crate::{Operation, RequestEnvelope, ResponseEnvelope};
use sigma_core::ServiceCode;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

/// Hard cap on a frame body; larger lengths are rejected as corruption.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Wire format version stamped into every frame.
pub const WIRE_VERSION: u8 = 1;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;

const OP_BACKUP: u8 = 1;
const OP_RESTORE: u8 = 2;
const OP_DELETE_FILE: u8 = 3;
const OP_DELETE_BACKUP: u8 = 4;
const OP_DELETE_GENERATION: u8 = 5;
const OP_COLLECT_GARBAGE: u8 = 6;
const OP_STATS: u8 = 7;

/// Why a frame could not be encoded or decoded.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying socket/stream failure.
    Io(io::Error),
    /// Length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The advertised body length.
        len: u32,
    },
    /// First body byte is neither request nor response.
    UnknownKind(u8),
    /// Version byte this build does not speak.
    UnsupportedVersion(u8),
    /// Opcode byte outside the known operations.
    UnknownOpcode(u8),
    /// Response status outside the [`ServiceCode`] table.
    UnknownCode(u16),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
    /// Body ended before the structure was complete, or had trailing bytes.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {}", e),
            CodecError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame body of {} bytes exceeds cap {}",
                    len, MAX_FRAME_BYTES
                )
            }
            CodecError::UnknownKind(k) => write!(f, "unknown frame kind {}", k),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported wire version {}", v),
            CodecError::UnknownOpcode(op) => write!(f, "unknown opcode {}", op),
            CodecError::UnknownCode(c) => write!(f, "unknown service code {}", c),
            CodecError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::Malformed(what) => write!(f, "malformed frame: {}", what),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// `true` when the error means the peer hung up cleanly between frames.
pub fn is_clean_eof(err: &CodecError) -> bool {
    matches!(err, CodecError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
}

// ---------------------------------------------------------------- encoding

struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    fn new(kind: u8) -> Self {
        Encoder {
            buf: vec![kind, WIRE_VERSION],
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn map(&mut self, m: &BTreeMap<String, String>) {
        self.u32(m.len() as u32);
        for (k, v) in m {
            self.string(k);
            self.string(v);
        }
    }

    fn finish(self) -> Result<Vec<u8>, CodecError> {
        if self.buf.len() > MAX_FRAME_BYTES as usize {
            return Err(CodecError::FrameTooLarge {
                len: self.buf.len() as u32,
            });
        }
        Ok(self.buf)
    }
}

/// Serializes a request body (no length prefix — [`write_frame`] adds it).
pub fn encode_request(req: &RequestEnvelope) -> Result<Vec<u8>, CodecError> {
    let mut e = Encoder::new(KIND_REQUEST);
    e.u64(req.request_id);
    e.string(&req.tenant);
    match &req.operation {
        Operation::Backup {
            file_name,
            generation,
        } => {
            e.u8(OP_BACKUP);
            e.string(file_name);
            e.u64(*generation);
        }
        Operation::Restore { file_id } => {
            e.u8(OP_RESTORE);
            e.u64(*file_id);
        }
        Operation::DeleteFile { file_id } => {
            e.u8(OP_DELETE_FILE);
            e.u64(*file_id);
        }
        Operation::DeleteBackup { session_id } => {
            e.u8(OP_DELETE_BACKUP);
            e.u64(*session_id);
        }
        Operation::DeleteGeneration { generation } => {
            e.u8(OP_DELETE_GENERATION);
            e.u64(*generation);
        }
        Operation::CollectGarbage => e.u8(OP_COLLECT_GARBAGE),
        Operation::Stats => e.u8(OP_STATS),
    }
    e.map(&req.metadata);
    e.bytes(&req.payload);
    e.finish()
}

/// Serializes a response body (no length prefix — [`write_frame`] adds it).
pub fn encode_response(resp: &ResponseEnvelope) -> Result<Vec<u8>, CodecError> {
    let mut e = Encoder::new(KIND_RESPONSE);
    e.u64(resp.request_id);
    e.u16(resp.code.wire());
    e.string(&resp.message);
    e.map(&resp.metadata);
    e.bytes(&resp.payload);
    e.finish()
}

// ---------------------------------------------------------------- decoding

struct Decoder<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(CodecError::Malformed("body truncated"))?;
        let slice = &self.body[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }

    fn map(&mut self) -> Result<BTreeMap<String, String>, CodecError> {
        let count = self.u32()?;
        let mut m = BTreeMap::new();
        for _ in 0..count {
            let k = self.string()?;
            let v = self.string()?;
            m.insert(k, v);
        }
        Ok(m)
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes after body"))
        }
    }
}

fn open_body(body: &[u8], expected_kind: u8) -> Result<Decoder<'_>, CodecError> {
    let mut d = Decoder { body, pos: 0 };
    let kind = d.u8()?;
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(CodecError::UnknownKind(kind));
    }
    if kind != expected_kind {
        return Err(CodecError::Malformed("frame kind does not match direction"));
    }
    let version = d.u8()?;
    if version != WIRE_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    Ok(d)
}

/// Deserializes a request body produced by [`encode_request`].
pub fn decode_request(body: &[u8]) -> Result<RequestEnvelope, CodecError> {
    let mut d = open_body(body, KIND_REQUEST)?;
    let request_id = d.u64()?;
    let tenant = d.string()?;
    let opcode = d.u8()?;
    let operation = match opcode {
        OP_BACKUP => Operation::Backup {
            file_name: d.string()?,
            generation: d.u64()?,
        },
        OP_RESTORE => Operation::Restore { file_id: d.u64()? },
        OP_DELETE_FILE => Operation::DeleteFile { file_id: d.u64()? },
        OP_DELETE_BACKUP => Operation::DeleteBackup {
            session_id: d.u64()?,
        },
        OP_DELETE_GENERATION => Operation::DeleteGeneration {
            generation: d.u64()?,
        },
        OP_COLLECT_GARBAGE => Operation::CollectGarbage,
        OP_STATS => Operation::Stats,
        other => return Err(CodecError::UnknownOpcode(other)),
    };
    let metadata = d.map()?;
    let payload = d.bytes()?;
    d.finish()?;
    Ok(RequestEnvelope {
        request_id,
        tenant,
        operation,
        metadata,
        payload,
    })
}

/// Deserializes a response body produced by [`encode_response`].
pub fn decode_response(body: &[u8]) -> Result<ResponseEnvelope, CodecError> {
    let mut d = open_body(body, KIND_RESPONSE)?;
    let request_id = d.u64()?;
    let wire_code = d.u16()?;
    let code = ServiceCode::from_wire(wire_code).ok_or(CodecError::UnknownCode(wire_code))?;
    let message = d.string()?;
    let metadata = d.map()?;
    let payload = d.bytes()?;
    d.finish()?;
    Ok(ResponseEnvelope {
        request_id,
        code,
        message,
        metadata,
        payload,
    })
}

// ----------------------------------------------------------------- framing

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), CodecError> {
    debug_assert!(
        body.len() <= MAX_FRAME_BYTES as usize,
        "encoder enforces cap"
    );
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame body.
///
/// A clean disconnect before the length prefix surfaces as
/// [`CodecError::Io`] with [`io::ErrorKind::UnexpectedEof`] — see
/// [`is_clean_eof`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, CodecError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(CodecError::FrameTooLarge { len });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_ops() -> Vec<Operation> {
        vec![
            Operation::Backup {
                file_name: "db.dump".into(),
                generation: 3,
            },
            Operation::Restore { file_id: 42 },
            Operation::DeleteFile { file_id: u64::MAX },
            Operation::DeleteBackup { session_id: 7 },
            Operation::DeleteGeneration { generation: 0 },
            Operation::CollectGarbage,
            Operation::Stats,
        ]
    }

    #[test]
    fn request_round_trips_for_every_operation() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let req = RequestEnvelope::new(i as u64, "tenant-α", op)
                .with_token("s3cret")
                .with_metadata("trace", "xyz")
                .with_payload(vec![0xAB; 17]);
            let body = encode_request(&req).unwrap();
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips_for_every_code() {
        for code in [
            ServiceCode::Ok,
            ServiceCode::InvalidRequest,
            ServiceCode::Unauthorized,
            ServiceCode::NotFound,
            ServiceCode::Conflict,
            ServiceCode::ResourceExhausted,
            ServiceCode::Internal,
            ServiceCode::Unavailable,
        ] {
            let resp = ResponseEnvelope {
                request_id: 9,
                code,
                message: "détail".into(),
                metadata: BTreeMap::from([("file_id".into(), "5".into())]),
                payload: vec![1, 2, 3],
            };
            let body = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn framing_round_trips_over_a_stream() {
        let req = RequestEnvelope::new(5, "t", Operation::Stats);
        let body = encode_request(&req).unwrap();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        write_frame(&mut wire, &body).unwrap();
        let mut cursor = io::Cursor::new(wire);
        for _ in 0..2 {
            let got = read_frame(&mut cursor).unwrap();
            assert_eq!(decode_request(&got).unwrap(), req);
        }
        let eof = read_frame(&mut cursor).unwrap_err();
        assert!(is_clean_eof(&eof));
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert!(matches!(err, CodecError::FrameTooLarge { .. }), "{}", err);
    }

    #[test]
    fn corruption_is_detected_not_misread() {
        let req = RequestEnvelope::new(1, "t", Operation::Restore { file_id: 8 });
        let good = encode_request(&req).unwrap();

        // Wrong kind byte.
        let mut bad = good.clone();
        bad[0] = 99;
        assert!(matches!(
            decode_request(&bad).unwrap_err(),
            CodecError::UnknownKind(99)
        ));

        // Response frame offered where a request is expected.
        let resp_body = encode_response(&ResponseEnvelope::ok(1)).unwrap();
        assert!(matches!(
            decode_request(&resp_body).unwrap_err(),
            CodecError::Malformed(_)
        ));

        // Future version.
        let mut bad = good.clone();
        bad[1] = WIRE_VERSION + 1;
        assert!(matches!(
            decode_request(&bad).unwrap_err(),
            CodecError::UnsupportedVersion(_)
        ));

        // Truncated body.
        let bad = &good[..good.len() - 1];
        assert!(matches!(
            decode_request(bad).unwrap_err(),
            CodecError::Malformed(_)
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            decode_request(&bad).unwrap_err(),
            CodecError::Malformed(_)
        ));

        // Unknown status code.
        let mut bad = resp_body.clone();
        // request_id occupies bytes [2, 10); the code is the next two.
        bad[10] = 0xFF;
        bad[11] = 0xFF;
        assert!(matches!(
            decode_response(&bad).unwrap_err(),
            CodecError::UnknownCode(0xFFFF)
        ));
    }

    /// Derives an arbitrary (possibly multi-byte-UTF-8, possibly empty)
    /// string from raw bytes.
    fn string_from(bytes: &[u8]) -> String {
        bytes
            .iter()
            .map(|&b| match b % 4 {
                0 => 'α',
                1 => '\u{1F984}',
                _ => (b'a' + (b % 26)) as char,
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_request_round_trip(
            request_id in any::<u64>(),
            tenant_raw in proptest::collection::vec(any::<u8>(), 0..32),
            op_idx in 0usize..7,
            name_raw in proptest::collection::vec(any::<u8>(), 0..64),
            num in any::<u64>(),
            meta_raw in proptest::collection::vec(any::<u8>(), 0..10),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let tenant = string_from(&tenant_raw);
            let file_name = string_from(&name_raw);
            let metadata: BTreeMap<String, String> = meta_raw
                .chunks(2)
                .map(|pair| (string_from(&pair[..1]), string_from(&pair[1..])))
                .collect();
            let operation = match op_idx {
                0 => Operation::Backup { file_name, generation: num },
                1 => Operation::Restore { file_id: num },
                2 => Operation::DeleteFile { file_id: num },
                3 => Operation::DeleteBackup { session_id: num },
                4 => Operation::DeleteGeneration { generation: num },
                5 => Operation::CollectGarbage,
                _ => Operation::Stats,
            };
            let req = RequestEnvelope { request_id, tenant, operation, metadata, payload };
            let body = encode_request(&req).unwrap();
            prop_assert_eq!(decode_request(&body).unwrap(), req);
        }

        #[test]
        fn prop_decode_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&noise);
            let _ = decode_response(&noise);
        }
    }
}
