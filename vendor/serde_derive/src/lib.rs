//! No-op derive macros for the offline `serde` shim.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing: the shim
//! traits in the `serde` shim crate carry blanket implementations, so emitting an
//! impl here would conflict. Declaring the `serde` helper attribute keeps any
//! future `#[serde(...)]` field attributes inert and accepted.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
