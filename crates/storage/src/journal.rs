//! The write-ahead journal: durable node state and deterministic crash points.
//!
//! Everything a deduplication node keeps in RAM — chunk index, similarity index,
//! container directory — is rebuildable from an append-only journal of checksummed
//! frames.  The journal models the node's durable medium: a crash destroys the
//! in-memory structures but never the journal, and
//! [`DedupNode::recover`](../../sigma_core/struct.DedupNode.html#method.recover)
//! replays the surviving frames back into a consistent node.
//!
//! # Record kinds
//!
//! | record | written when | replay effect |
//! |---|---|---|
//! | [`ContainerSeal`](JournalRecord::ContainerSeal) | an open container fills or is flushed | reinstall the sealed container and index its chunks |
//! | [`ChunkIndexFinalize`](JournalRecord::ChunkIndexFinalize) | the seal makes the container's claimed fingerprints durable | upsert the batched chunk-index entries |
//! | [`SimilarityPublish`](JournalRecord::SimilarityPublish) | a super-chunk's handprint is mapped to its container | re-insert RFP → container mappings |
//! | [`ContainerAdopt`](JournalRecord::ContainerAdopt) | the rebalancer installs a migrated container | reinstall container + index + RFPs, keyed by origin so a duplicated record cannot double-adopt |
//! | [`Tombstone`](JournalRecord::Tombstone) | a migrated container's forwarding pointer is published (always *before* the data drops) | drop the container, keep the chunk entries, record the forwarding pointer |
//! | [`StatsCheckpoint`](JournalRecord::StatsCheckpoint) | a flush acknowledges a backup session | restore the node's ingest counters |
//! | [`RecipeDelete`](JournalRecord::RecipeDelete) | the director deletes a backup whose recipe referenced this node | no structural effect (recipes are director state); records that the GC which follows replays against a post-delete history, and gives fault plans a boundary between deletion and sweep |
//! | [`GcCompact`](JournalRecord::GcCompact) | the sweep rewrites a mostly-dead container's live chunks into a fresh one | drop the victim (and its chunk entries), install the replacement, index its chunks, re-home the travelling RFPs |
//! | [`GcDrop`](JournalRecord::GcDrop) | the sweep drops a container with no live chunks | drop the container and its chunk-index/similarity entries — unlike a tombstone, nothing forwards anywhere |
//! | [`Snapshot`](JournalRecord::Snapshot) | [`Journal::compact`] folds the log | install the whole materialized state at once |
//!
//! # Frames, torn tails and crash points
//!
//! Each record is wrapped in a frame — magic, payload length, sequence number,
//! FNV-1a checksum, payload — so replay can tell a *complete* record from a torn
//! one.  Replay stops at the first truncated or corrupt frame and reports the
//! discarded suffix: a torn tail is data that was never acknowledged, so it is
//! dropped, never half-applied.
//!
//! Crash points are *journal-append boundaries*: [`Journal::arm_crash_at_seq`]
//! makes the append that would receive the given sequence number fail (optionally
//! leaving a torn frame behind, as a real power cut would) and marks the journal
//! crashed; every later append fails too.  Because appends are the only way state
//! becomes durable, this deterministically reproduces "the process died between
//! these two records" for any record boundary, including the
//! adopt-then-tombstone boundary inside a rebalance step.

use crate::{
    ChunkLocation, ChunkRecord, Container, ContainerId, ContainerMeta, DiskModel, MemoryBackend,
    SimDiskBackend, StorageBackend, StorageError, StorageObject,
};
use parking_lot::Mutex;
use sigma_hashkit::{fnv1a_64, Fingerprint};
use std::sync::Arc;

/// Magic bytes starting every journal frame (`"SJRN"`).
const FRAME_MAGIC: u32 = 0x534A_524E;

/// Fixed size of a frame header: magic + payload length + sequence + checksum.
const FRAME_HEADER: usize = 4 + 4 + 8 + 8;

/// One durable record in a node's write-ahead journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A locally filled container was sealed; carries the full container so the
    /// journal is self-sufficient as the durable medium.
    ContainerSeal {
        /// The sealed container (data + metadata sections).
        container: Container,
    },
    /// The chunk-index entries made durable by a container seal (the batched
    /// finalize of every fingerprint claimed into that container).
    ChunkIndexFinalize {
        /// Container the batch belongs to.
        container: ContainerId,
        /// `(fingerprint, location)` pairs in write order.
        entries: Vec<(Fingerprint, ChunkLocation)>,
    },
    /// Representative fingerprints of a deduplicated super-chunk were mapped to a
    /// container in the similarity index.
    SimilarityPublish {
        /// Container the handprint was mapped to.
        container: ContainerId,
        /// The representative fingerprints.
        rfps: Vec<Fingerprint>,
    },
    /// A container migrated from another node was installed here.
    ContainerAdopt {
        /// Stable ID of the node the container came from.
        origin_node: u64,
        /// The container's identifier on the origin node.
        origin_container: ContainerId,
        /// The container under its new local identifier.
        container: Container,
        /// Representative fingerprints re-homed with the container.
        rfps: Vec<Fingerprint>,
    },
    /// A migrated-away container's forwarding pointer; journaled *before* the
    /// container data is dropped, which is what keeps mid-migration crashes safe.
    Tombstone {
        /// The retired container.
        container: ContainerId,
        /// Stable ID of the node now holding the data.
        successor: u64,
    },
    /// A file recipe referencing this node was deleted by the director.
    ///
    /// Structurally a no-op on replay — recipes live in the director, not on
    /// nodes — but durable on every node the recipe named, so the record (a)
    /// witnesses that any later GC record was computed against a post-delete
    /// root set and (b) is a journal-append boundary a fault plan can kill at,
    /// deterministically reproducing "the process died between the deletion and
    /// the sweep".
    RecipeDelete {
        /// The deleted file's identifier.
        file_id: u64,
    },
    /// The garbage collector compacted a mostly-dead container: its live chunks
    /// were rewritten into `replacement` and the victim dropped.  One atomic
    /// record — a crash on either side of it leaves the node consistent (before:
    /// nothing happened; after: replay performs the whole swap).
    GcCompact {
        /// The container that was compacted away.
        victim: ContainerId,
        /// The fresh container holding exactly the victim's live chunks.
        replacement: Container,
        /// Representative fingerprints re-homed from the victim to the
        /// replacement (resemblance queries keep finding the surviving data).
        rfps: Vec<Fingerprint>,
    },
    /// The garbage collector dropped a container with no live chunks.  Unlike a
    /// [`Tombstone`](JournalRecord::Tombstone) nothing forwards anywhere: the
    /// data is unreferenced by every surviving recipe and replay removes its
    /// chunk-index and similarity entries with it.
    GcDrop {
        /// The dropped container.
        container: ContainerId,
    },
    /// Ingest counters at an acknowledgement point (end of a flush).
    StatsCheckpoint {
        /// Logical bytes ingested.
        logical_bytes: u64,
        /// Total chunks received.
        total_chunks: u64,
        /// Unique chunks stored.
        unique_chunks: u64,
        /// Super-chunks processed.
        super_chunks: u64,
    },
    /// A compaction checkpoint: the node's whole materialized state.
    Snapshot(NodeSnapshot),
}

impl JournalRecord {
    /// Short name of the record kind (for reports and debugging).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::ContainerSeal { .. } => "container-seal",
            JournalRecord::ChunkIndexFinalize { .. } => "chunk-index-finalize",
            JournalRecord::SimilarityPublish { .. } => "similarity-publish",
            JournalRecord::ContainerAdopt { .. } => "container-adopt",
            JournalRecord::Tombstone { .. } => "tombstone",
            JournalRecord::RecipeDelete { .. } => "recipe-delete",
            JournalRecord::GcCompact { .. } => "gc-compact",
            JournalRecord::GcDrop { .. } => "gc-drop",
            JournalRecord::StatsCheckpoint { .. } => "stats-checkpoint",
            JournalRecord::Snapshot(_) => "snapshot",
        }
    }
}

/// The full materialized state of a node, as written by a compaction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeSnapshot {
    /// Next container ID the store will allocate.
    pub next_container_id: u64,
    /// Sealed containers, each with the origin key it was adopted under (if any).
    pub containers: Vec<(Option<(u64, ContainerId)>, Container)>,
    /// Finalized chunk-index entries.
    pub chunk_entries: Vec<(Fingerprint, ChunkLocation)>,
    /// Similarity-index entries.
    pub similarity: Vec<(Fingerprint, ContainerId)>,
    /// Forwarding tombstones (`container → successor node`).
    pub tombstones: Vec<(ContainerId, u64)>,
    /// Logical bytes ingested.
    pub logical_bytes: u64,
    /// Total chunks received.
    pub total_chunks: u64,
    /// Unique chunks stored.
    pub unique_chunks: u64,
    /// Super-chunks processed.
    pub super_chunks: u64,
}

/// Summary of one journal replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplaySummary {
    /// Complete frames replayed.
    pub frames: u64,
    /// Bytes covered by the replayed frames.
    pub bytes_replayed: u64,
    /// Trailing bytes discarded as a torn or corrupt tail.
    pub bytes_discarded: u64,
}

/// How an armed crash manifests on the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The append persists nothing: the crash hit exactly on the record boundary.
    Clean,
    /// The append persists a prefix of the frame, as a power cut mid-write would;
    /// replay must discard it as a torn tail.
    Torn,
}

#[derive(Debug)]
struct ArmedCrash {
    at_seq: u64,
    mode: CrashMode,
}

#[derive(Debug, Default)]
struct JournalState {
    /// Length in bytes of the journal object on the backend (including any torn
    /// tail).  The bytes themselves live on the [`StorageBackend`].
    len: usize,
    /// Sequence number the next append will receive.
    next_seq: u64,
    /// End offset (and sequence) of every complete frame, in order.
    boundaries: Vec<(u64, usize)>,
    crashed: bool,
    armed: Option<ArmedCrash>,
}

/// An append-only, checksummed write-ahead journal — one per durable node.
///
/// Appends are charged to the attached [`DiskModel`] as sequential writes (a WAL
/// is the sequential-I/O structure par excellence), replay as one sequential read.
///
/// # Example
///
/// ```
/// use sigma_storage::{Journal, JournalRecord, ContainerId};
///
/// let journal = Journal::new();
/// journal
///     .append(&JournalRecord::Tombstone { container: ContainerId::new(7), successor: 2 })
///     .unwrap();
/// let (records, summary) = Journal::replay(&journal.bytes());
/// assert_eq!(records.len(), 1);
/// assert_eq!(summary.bytes_discarded, 0);
/// ```
pub struct Journal {
    state: Mutex<JournalState>,
    /// The durable medium the frames live on.  Appends and the fsync at each
    /// acknowledgement point go through it; on volatile backends the fsync is a
    /// no-op and on the file backend it is a real `fsync(2)`.
    backend: Arc<dyn StorageBackend>,
    /// Rebindable: recovery builds a fresh node (and fresh [`DiskModel`]) and
    /// re-targets the surviving journal at it via [`attach_disk`](Journal::attach_disk),
    /// so post-recovery appends keep being charged to the node that owns them.
    disk: parking_lot::RwLock<Option<Arc<DiskModel>>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Journal")
            .field("bytes", &state.len)
            .field("frames", &state.boundaries.len())
            .field("next_seq", &state.next_seq)
            .field("crashed", &state.crashed)
            .field("backend", &self.backend.kind())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// Creates an empty journal on a volatile in-memory backend, without disk
    /// accounting.
    pub fn new() -> Self {
        Journal {
            state: Mutex::new(JournalState::default()),
            backend: Arc::new(MemoryBackend::new()),
            disk: parking_lot::RwLock::new(None),
        }
    }

    /// Creates an empty journal on a simulated-disk backend whose appends and
    /// replays are charged to `disk`.
    pub fn with_disk(disk: Arc<DiskModel>) -> Self {
        Journal {
            state: Mutex::new(JournalState::default()),
            backend: Arc::new(SimDiskBackend::new(disk.clone())),
            disk: parking_lot::RwLock::new(Some(disk)),
        }
    }

    /// Creates a *fresh* journal on `backend`, truncating any journal object a
    /// previous process left there.  Disk accounting follows the backend's own
    /// [`DiskModel`](StorageBackend::disk), if it has one.
    ///
    /// Use [`open`](Self::open) instead to adopt an existing journal object —
    /// this constructor is for brand-new nodes.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the backend cannot initialize the
    /// journal object.
    pub fn with_backend(backend: Arc<dyn StorageBackend>) -> Result<Self, StorageError> {
        backend.write_object(StorageObject::Journal, &[])?;
        let disk = backend.disk();
        Ok(Journal {
            state: Mutex::new(JournalState::default()),
            backend,
            disk: parking_lot::RwLock::new(disk),
        })
    }

    /// Opens the journal object already present on `backend` — the path a node
    /// restart takes to adopt the log a previous process left behind.  An absent
    /// object opens as an empty journal.  The log is adopted verbatim, torn tail
    /// and all; run [`recover_truncating`](Self::recover_truncating) (which
    /// `DedupNode::recover` does) before appending.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the backend cannot read the object.
    pub fn open(backend: Arc<dyn StorageBackend>) -> Result<Self, StorageError> {
        let bytes = backend.read_all(StorageObject::Journal)?;
        let boundaries = scan_frames(&bytes);
        let disk = backend.disk();
        Ok(Journal {
            state: Mutex::new(JournalState {
                len: bytes.len(),
                next_seq: boundaries.last().map(|&(seq, _)| seq + 1).unwrap_or(0),
                boundaries,
                crashed: false,
                armed: None,
            }),
            backend,
            disk: parking_lot::RwLock::new(disk),
        })
    }

    /// The backend this journal's frames live on — shared with the container
    /// store when the node persists, so both planes survive (or vanish) together.
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        self.backend.clone()
    }

    /// Re-targets disk accounting at `disk`.
    ///
    /// A recovered node owns a fresh [`DiskModel`]; the journal survives the
    /// crash, so its charges must follow the new owner — otherwise every
    /// post-recovery append would be billed to the discarded node's model and
    /// vanish from the recovered node's statistics.
    pub fn attach_disk(&self, disk: Arc<DiskModel>) {
        self.backend.attach_disk(disk.clone());
        *self.disk.write() = Some(disk);
    }

    /// Reconstructs a journal from previously captured [`bytes`](Self::bytes) —
    /// the crash image a fault harness hands to recovery.  The image is seeded
    /// into a fresh in-memory backend.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let boundaries = scan_frames(&bytes);
        Journal {
            state: Mutex::new(JournalState {
                len: bytes.len(),
                next_seq: boundaries.last().map(|&(seq, _)| seq + 1).unwrap_or(0),
                boundaries,
                crashed: false,
                armed: None,
            }),
            backend: Arc::new(MemoryBackend::with_journal_bytes(bytes)),
            disk: parking_lot::RwLock::new(None),
        }
    }

    /// Appends one record, returning its sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] when an armed fault point fires on this
    /// append (the frame is dropped or torn according to the [`CrashMode`]) or
    /// when the journal already crashed; nothing after a crash becomes durable.
    pub fn append(&self, record: &JournalRecord) -> Result<u64, StorageError> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(StorageError::Crashed);
        }
        let seq = state.next_seq;
        if let Some(armed) = &state.armed {
            if armed.at_seq == seq {
                let mode = armed.mode;
                if mode == CrashMode::Torn {
                    let frame = encode_frame(seq, record);
                    // A power cut mid-write leaves a prefix of the frame behind;
                    // cutting inside the payload (past the header) exercises the
                    // checksum path rather than the short-header path alone.
                    let torn = (frame.len() / 2).max(1);
                    // The node is dead after this point either way; a backend
                    // error merely makes the simulated power cut tear earlier.
                    if self
                        .backend
                        .append(StorageObject::Journal, &frame[..torn])
                        .is_ok()
                    {
                        state.len += torn;
                    }
                }
                state.crashed = true;
                state.armed = None;
                return Err(StorageError::Crashed);
            }
        }
        let frame = encode_frame(seq, record);
        if let Some(disk) = self.disk.read().as_ref() {
            disk.record_sequential_transfer(frame.len() as u64);
        }
        // Append + fsync is the acknowledgement point: a real I/O failure here
        // means durability is gone, so the journal declares itself crashed just
        // as it does for an injected fault.
        if let Err(e) = self
            .backend
            .append(StorageObject::Journal, &frame)
            .and_then(|_| self.backend.fsync(StorageObject::Journal))
        {
            state.crashed = true;
            return Err(e);
        }
        state.len += frame.len();
        let end = state.len;
        state.boundaries.push((seq, end));
        state.next_seq = seq + 1;
        Ok(seq)
    }

    /// Appends a batch of records under one lock acquisition and one coalesced
    /// disk transfer, returning the first record's sequence number.
    ///
    /// Durability-equivalent to calling [`append`](Self::append) once per record
    /// — in particular, armed crash points keep firing at the exact per-record
    /// boundary they name: records ahead of the armed sequence number become
    /// durable (they are flushed as the prefix of the group write), the armed
    /// record crashes clean or torn according to its [`CrashMode`], and the rest
    /// of the batch is dropped.  What changes is only the cost: one journal-lock
    /// round and one sequential disk transfer for the whole group instead of one
    /// per record — the group-commit optimisation every production WAL performs.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] when the journal has already crashed or
    /// an armed fault point fires inside the batch.
    pub fn append_batch(&self, records: &[JournalRecord]) -> Result<u64, StorageError> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(StorageError::Crashed);
        }
        let first_seq = state.next_seq;
        let base = state.len;
        // Frames accumulate in a scratch buffer so the durable medium receives
        // the whole group in a single extend, mirroring the single transfer
        // charged to the disk model.
        let mut buf: Vec<u8> = Vec::new();
        let mut frames: Vec<(u64, usize)> = Vec::with_capacity(records.len());
        for (i, record) in records.iter().enumerate() {
            let seq = first_seq + i as u64;
            let armed_here = matches!(&state.armed, Some(armed) if armed.at_seq == seq);
            if armed_here {
                let mode = state.armed.take().expect("matched above").mode;
                if mode == CrashMode::Torn {
                    let frame = encode_frame(seq, record);
                    let torn = (frame.len() / 2).max(1);
                    buf.extend_from_slice(&frame[..torn]);
                }
                state.crashed = true;
                // The complete frames ahead of the crash (plus any torn prefix)
                // still reach the medium: the power cut interrupted the group
                // write partway through, it did not unwrite the prefix.
                if !buf.is_empty() {
                    if let Some(disk) = self.disk.read().as_ref() {
                        disk.record_sequential_transfer(buf.len() as u64);
                    }
                    if self.backend.append(StorageObject::Journal, &buf).is_ok() {
                        let _ = self.backend.fsync(StorageObject::Journal);
                        state.len += buf.len();
                        for (s, end) in frames {
                            state.boundaries.push((s, base + end));
                        }
                    }
                }
                state.next_seq = seq;
                return Err(StorageError::Crashed);
            }
            let frame = encode_frame(seq, record);
            buf.extend_from_slice(&frame);
            frames.push((seq, buf.len()));
        }
        if !buf.is_empty() {
            if let Some(disk) = self.disk.read().as_ref() {
                disk.record_sequential_transfer(buf.len() as u64);
            }
            if let Err(e) = self
                .backend
                .append(StorageObject::Journal, &buf)
                .and_then(|_| self.backend.fsync(StorageObject::Journal))
            {
                state.crashed = true;
                return Err(e);
            }
            state.len += buf.len();
        }
        for (s, end) in frames {
            state.boundaries.push((s, base + end));
        }
        state.next_seq = first_seq + records.len() as u64;
        Ok(first_seq)
    }

    /// Arms a deterministic crash: the append that would receive sequence number
    /// `seq` fails in the given [`CrashMode`] and the journal refuses all further
    /// appends until [`recover_truncating`](Self::recover_truncating) runs.
    pub fn arm_crash_at_seq(&self, seq: u64, mode: CrashMode) {
        self.state.lock().armed = Some(ArmedCrash { at_seq: seq, mode });
    }

    /// Disarms a previously armed crash point.
    pub fn disarm(&self) {
        self.state.lock().armed = None;
    }

    /// True once an armed crash fired; all appends fail until recovery.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Number of complete frames currently in the journal.
    pub fn frame_count(&self) -> u64 {
        self.state.lock().boundaries.len() as u64
    }

    /// Total journal size in bytes (including any torn tail).
    pub fn len_bytes(&self) -> usize {
        self.state.lock().len
    }

    /// Byte offset just past each complete frame, in order — the crash points a
    /// fault plan samples from.
    pub fn frame_boundaries(&self) -> Vec<usize> {
        self.state
            .lock()
            .boundaries
            .iter()
            .map(|&(_, end)| end)
            .collect()
    }

    /// A copy of the raw journal bytes (the durable medium's current contents).
    ///
    /// Uncharged: the fault harness uses this to capture crash images without
    /// perturbing the disk statistics.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot read the journal object (file backend only,
    /// and only on a real OS-level failure).
    pub fn bytes(&self) -> Vec<u8> {
        // Hold the state lock so the read is atomic with respect to appends.
        let _state = self.state.lock();
        self.backend
            .read_all(StorageObject::Journal)
            .expect("journal backend read failed")
    }

    /// Parses a journal byte stream into records.
    ///
    /// Replay is *lenient at the tail*: the first truncated or corrupt frame ends
    /// the replay and everything from it onward is reported as discarded.  This is
    /// the torn-tail rule — an interrupted append must disappear, not half-apply.
    pub fn replay(bytes: &[u8]) -> (Vec<JournalRecord>, ReplaySummary) {
        let mut records = Vec::new();
        let mut offset = 0usize;
        let mut frames = 0u64;
        while let Some((record, end)) = decode_frame(bytes, offset) {
            records.push(record);
            offset = end;
            frames += 1;
        }
        let summary = ReplaySummary {
            frames,
            bytes_replayed: offset as u64,
            bytes_discarded: (bytes.len() - offset) as u64,
        };
        (records, summary)
    }

    /// Replays this journal's own contents, truncating any torn tail and clearing
    /// the crashed flag — what recovery does before the journal is reused as the
    /// recovered node's write-ahead log.
    ///
    /// Charged to the disk model as one sequential read of the replayed bytes.
    /// # Panics
    ///
    /// Panics if the backend cannot read or truncate the journal object: a
    /// recovery whose truncation did not stick would re-append after a torn
    /// tail and corrupt the log, so there is no safe way to continue.
    pub fn recover_truncating(&self) -> (Vec<JournalRecord>, ReplaySummary) {
        let mut state = self.state.lock();
        let bytes = self
            .backend
            .read_all(StorageObject::Journal)
            .expect("journal backend read failed");
        let (records, summary) = Journal::replay(&bytes);
        self.backend
            .truncate(StorageObject::Journal, summary.bytes_replayed)
            .expect("journal backend truncate failed");
        state.len = summary.bytes_replayed as usize;
        state.boundaries = scan_frames(&bytes[..state.len]);
        state.next_seq = state
            .boundaries
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(0);
        state.crashed = false;
        state.armed = None;
        if let Some(disk) = self.disk.read().as_ref() {
            disk.record_sequential_transfer(summary.bytes_replayed);
        }
        (records, summary)
    }

    /// Compacts the journal to a single [`JournalRecord::Snapshot`] frame.
    ///
    /// Must be called at a quiescent point (no concurrent appends from the same
    /// node); the node-side wrapper
    /// ([`DedupNode::compact_journal`](../../sigma_core/struct.DedupNode.html#method.compact_journal))
    /// captures the state and calls this.  Sequence numbers keep counting up so a
    /// crash armed at a future boundary survives compaction.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Crashed`] if the journal has crashed, or
    /// [`StorageError::Io`] if the backend could not durably publish the
    /// replacement log — in which case the *old* log is untouched and the
    /// journal remains fully usable.
    pub fn compact(&self, snapshot: NodeSnapshot) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        if state.crashed {
            return Err(StorageError::Crashed);
        }
        let seq = state.next_seq;
        // Compaction consumes a sequence number like any append, so an armed
        // crash landing on it must fire here too — otherwise a fault plan
        // sampling this boundary would silently inject nothing.  Compaction is
        // atomic (write-new-log-then-swap via `replace_atomic`), so even a torn
        // crash leaves the *old* log intact rather than a torn snapshot frame.
        if let Some(armed) = &state.armed {
            if armed.at_seq == seq {
                state.crashed = true;
                state.armed = None;
                return Err(StorageError::Crashed);
            }
        }
        let frame = encode_frame(seq, &JournalRecord::Snapshot(snapshot));
        if let Some(disk) = self.disk.read().as_ref() {
            disk.record_sequential_transfer(frame.len() as u64);
        }
        // Ack ordering: the snapshot must be durably in place *before* the old
        // log is considered replaced.  `replace_atomic` writes the new log to
        // the side, fsyncs it, renames it over the old one and fsyncs the
        // directory — every acked record is recoverable from one log or the
        // other at every intermediate crash point.  Only after it returns does
        // the in-memory view switch over.
        self.backend
            .replace_atomic(StorageObject::Journal, &frame)?;
        state.len = frame.len();
        state.boundaries.clear();
        let end = state.len;
        state.boundaries.push((seq, end));
        state.next_seq = seq + 1;
        Ok(())
    }
}

/// Scans a byte stream for complete frames, returning `(seq, end_offset)` pairs.
fn scan_frames(bytes: &[u8]) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while let Some((seq, end)) = peek_frame(bytes, offset) {
        out.push((seq, end));
        offset = end;
    }
    out
}

/// Validates the frame at `offset` without decoding its payload.
fn peek_frame(bytes: &[u8], offset: usize) -> Option<(u64, usize)> {
    if bytes.len() < offset + FRAME_HEADER {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[offset..offset + 4].try_into().ok()?);
    if magic != FRAME_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().ok()?) as usize;
    let seq = u64::from_le_bytes(bytes[offset + 8..offset + 16].try_into().ok()?);
    let checksum = u64::from_le_bytes(bytes[offset + 16..offset + 24].try_into().ok()?);
    let start = offset + FRAME_HEADER;
    let end = start.checked_add(len)?;
    if bytes.len() < end {
        return None;
    }
    let payload = &bytes[start..end];
    if fnv1a_64(payload) != checksum {
        return None;
    }
    Some((seq, end))
}

fn encode_frame(seq: u64, record: &JournalRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn decode_frame(bytes: &[u8], offset: usize) -> Option<(JournalRecord, usize)> {
    let (_, end) = peek_frame(bytes, offset)?;
    let payload = &bytes[offset + FRAME_HEADER..end];
    let mut reader = Reader::new(payload);
    let record = decode_record(&mut reader)?;
    if !reader.is_empty() {
        // Trailing garbage inside a checksummed payload means an encoder/decoder
        // mismatch; treat the frame (and everything after it) as unreadable.
        return None;
    }
    Some((record, end))
}

// ---- record payload encoding ----
//
// A tiny hand-rolled little-endian format: the vendored serde shim is
// derive-only, so the journal defines its own wire layout (tag byte + fields).
// Stability matters only within one repository version — the journal is a
// simulation artifact, not an interchange format.

const TAG_CONTAINER_SEAL: u8 = 1;
const TAG_CHUNK_INDEX_FINALIZE: u8 = 2;
const TAG_SIMILARITY_PUBLISH: u8 = 3;
const TAG_CONTAINER_ADOPT: u8 = 4;
const TAG_TOMBSTONE: u8 = 5;
const TAG_STATS_CHECKPOINT: u8 = 6;
const TAG_SNAPSHOT: u8 = 7;
const TAG_RECIPE_DELETE: u8 = 8;
const TAG_GC_COMPACT: u8 = 9;
const TAG_GC_DROP: u8 = 10;

fn encode_record(record: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        JournalRecord::ContainerSeal { container } => {
            out.push(TAG_CONTAINER_SEAL);
            encode_container(&mut out, container);
        }
        JournalRecord::ChunkIndexFinalize { container, entries } => {
            out.push(TAG_CHUNK_INDEX_FINALIZE);
            out.extend_from_slice(&container.as_u64().to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (fp, loc) in entries {
                out.extend_from_slice(fp.as_bytes());
                out.extend_from_slice(&loc.container.as_u64().to_le_bytes());
                out.extend_from_slice(&loc.offset.to_le_bytes());
                out.extend_from_slice(&loc.len.to_le_bytes());
            }
        }
        JournalRecord::SimilarityPublish { container, rfps } => {
            out.push(TAG_SIMILARITY_PUBLISH);
            out.extend_from_slice(&container.as_u64().to_le_bytes());
            encode_fingerprints(&mut out, rfps);
        }
        JournalRecord::ContainerAdopt {
            origin_node,
            origin_container,
            container,
            rfps,
        } => {
            out.push(TAG_CONTAINER_ADOPT);
            out.extend_from_slice(&origin_node.to_le_bytes());
            out.extend_from_slice(&origin_container.as_u64().to_le_bytes());
            encode_container(&mut out, container);
            encode_fingerprints(&mut out, rfps);
        }
        JournalRecord::Tombstone {
            container,
            successor,
        } => {
            out.push(TAG_TOMBSTONE);
            out.extend_from_slice(&container.as_u64().to_le_bytes());
            out.extend_from_slice(&successor.to_le_bytes());
        }
        JournalRecord::RecipeDelete { file_id } => {
            out.push(TAG_RECIPE_DELETE);
            out.extend_from_slice(&file_id.to_le_bytes());
        }
        JournalRecord::GcCompact {
            victim,
            replacement,
            rfps,
        } => {
            out.push(TAG_GC_COMPACT);
            out.extend_from_slice(&victim.as_u64().to_le_bytes());
            encode_container(&mut out, replacement);
            encode_fingerprints(&mut out, rfps);
        }
        JournalRecord::GcDrop { container } => {
            out.push(TAG_GC_DROP);
            out.extend_from_slice(&container.as_u64().to_le_bytes());
        }
        JournalRecord::StatsCheckpoint {
            logical_bytes,
            total_chunks,
            unique_chunks,
            super_chunks,
        } => {
            out.push(TAG_STATS_CHECKPOINT);
            out.extend_from_slice(&logical_bytes.to_le_bytes());
            out.extend_from_slice(&total_chunks.to_le_bytes());
            out.extend_from_slice(&unique_chunks.to_le_bytes());
            out.extend_from_slice(&super_chunks.to_le_bytes());
        }
        JournalRecord::Snapshot(snap) => {
            out.push(TAG_SNAPSHOT);
            out.extend_from_slice(&snap.next_container_id.to_le_bytes());
            out.extend_from_slice(&(snap.containers.len() as u32).to_le_bytes());
            for (origin, container) in &snap.containers {
                match origin {
                    Some((node, cid)) => {
                        out.push(1);
                        out.extend_from_slice(&node.to_le_bytes());
                        out.extend_from_slice(&cid.as_u64().to_le_bytes());
                    }
                    None => out.push(0),
                }
                encode_container(&mut out, container);
            }
            out.extend_from_slice(&(snap.chunk_entries.len() as u32).to_le_bytes());
            for (fp, loc) in &snap.chunk_entries {
                out.extend_from_slice(fp.as_bytes());
                out.extend_from_slice(&loc.container.as_u64().to_le_bytes());
                out.extend_from_slice(&loc.offset.to_le_bytes());
                out.extend_from_slice(&loc.len.to_le_bytes());
            }
            out.extend_from_slice(&(snap.similarity.len() as u32).to_le_bytes());
            for (fp, cid) in &snap.similarity {
                out.extend_from_slice(fp.as_bytes());
                out.extend_from_slice(&cid.as_u64().to_le_bytes());
            }
            out.extend_from_slice(&(snap.tombstones.len() as u32).to_le_bytes());
            for (cid, successor) in &snap.tombstones {
                out.extend_from_slice(&cid.as_u64().to_le_bytes());
                out.extend_from_slice(&successor.to_le_bytes());
            }
            out.extend_from_slice(&snap.logical_bytes.to_le_bytes());
            out.extend_from_slice(&snap.total_chunks.to_le_bytes());
            out.extend_from_slice(&snap.unique_chunks.to_le_bytes());
            out.extend_from_slice(&snap.super_chunks.to_le_bytes());
        }
    }
    out
}

fn decode_record(r: &mut Reader<'_>) -> Option<JournalRecord> {
    match r.u8()? {
        TAG_CONTAINER_SEAL => Some(JournalRecord::ContainerSeal {
            container: decode_container(r)?,
        }),
        TAG_CHUNK_INDEX_FINALIZE => {
            let container = ContainerId::new(r.u64()?);
            let count = r.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(65_536));
            for _ in 0..count {
                let fp = r.fingerprint()?;
                let loc = ChunkLocation {
                    container: ContainerId::new(r.u64()?),
                    offset: r.u32()?,
                    len: r.u32()?,
                };
                entries.push((fp, loc));
            }
            Some(JournalRecord::ChunkIndexFinalize { container, entries })
        }
        TAG_SIMILARITY_PUBLISH => {
            let container = ContainerId::new(r.u64()?);
            let rfps = decode_fingerprints(r)?;
            Some(JournalRecord::SimilarityPublish { container, rfps })
        }
        TAG_CONTAINER_ADOPT => {
            let origin_node = r.u64()?;
            let origin_container = ContainerId::new(r.u64()?);
            let container = decode_container(r)?;
            let rfps = decode_fingerprints(r)?;
            Some(JournalRecord::ContainerAdopt {
                origin_node,
                origin_container,
                container,
                rfps,
            })
        }
        TAG_TOMBSTONE => Some(JournalRecord::Tombstone {
            container: ContainerId::new(r.u64()?),
            successor: r.u64()?,
        }),
        TAG_RECIPE_DELETE => Some(JournalRecord::RecipeDelete { file_id: r.u64()? }),
        TAG_GC_COMPACT => {
            let victim = ContainerId::new(r.u64()?);
            let replacement = decode_container(r)?;
            let rfps = decode_fingerprints(r)?;
            Some(JournalRecord::GcCompact {
                victim,
                replacement,
                rfps,
            })
        }
        TAG_GC_DROP => Some(JournalRecord::GcDrop {
            container: ContainerId::new(r.u64()?),
        }),
        TAG_STATS_CHECKPOINT => Some(JournalRecord::StatsCheckpoint {
            logical_bytes: r.u64()?,
            total_chunks: r.u64()?,
            unique_chunks: r.u64()?,
            super_chunks: r.u64()?,
        }),
        TAG_SNAPSHOT => {
            let next_container_id = r.u64()?;
            let container_count = r.u32()? as usize;
            let mut containers = Vec::with_capacity(container_count.min(65_536));
            for _ in 0..container_count {
                let origin = match r.u8()? {
                    0 => None,
                    1 => Some((r.u64()?, ContainerId::new(r.u64()?))),
                    _ => return None,
                };
                containers.push((origin, decode_container(r)?));
            }
            let entry_count = r.u32()? as usize;
            let mut chunk_entries = Vec::with_capacity(entry_count.min(65_536));
            for _ in 0..entry_count {
                let fp = r.fingerprint()?;
                let loc = ChunkLocation {
                    container: ContainerId::new(r.u64()?),
                    offset: r.u32()?,
                    len: r.u32()?,
                };
                chunk_entries.push((fp, loc));
            }
            let sim_count = r.u32()? as usize;
            let mut similarity = Vec::with_capacity(sim_count.min(65_536));
            for _ in 0..sim_count {
                similarity.push((r.fingerprint()?, ContainerId::new(r.u64()?)));
            }
            let tomb_count = r.u32()? as usize;
            let mut tombstones = Vec::with_capacity(tomb_count.min(65_536));
            for _ in 0..tomb_count {
                tombstones.push((ContainerId::new(r.u64()?), r.u64()?));
            }
            Some(JournalRecord::Snapshot(NodeSnapshot {
                next_container_id,
                containers,
                chunk_entries,
                similarity,
                tombstones,
                logical_bytes: r.u64()?,
                total_chunks: r.u64()?,
                unique_chunks: r.u64()?,
                super_chunks: r.u64()?,
            }))
        }
        _ => None,
    }
}

fn encode_container(out: &mut Vec<u8>, container: &Container) {
    out.extend_from_slice(&container.id().as_u64().to_le_bytes());
    out.extend_from_slice(&(container.data_size() as u64).to_le_bytes());
    out.extend_from_slice(&(container.data().len() as u32).to_le_bytes());
    out.extend_from_slice(container.data());
    out.extend_from_slice(&(container.meta().records.len() as u32).to_le_bytes());
    for record in &container.meta().records {
        out.extend_from_slice(record.fingerprint.as_bytes());
        out.extend_from_slice(&record.offset.to_le_bytes());
        out.extend_from_slice(&record.len.to_le_bytes());
    }
}

fn decode_container(r: &mut Reader<'_>) -> Option<Container> {
    let id = ContainerId::new(r.u64()?);
    let logical_size = r.u64()? as usize;
    let data_len = r.u32()? as usize;
    let data = r.bytes(data_len)?.to_vec();
    let record_count = r.u32()? as usize;
    let mut records = Vec::with_capacity(record_count.min(65_536));
    for _ in 0..record_count {
        records.push(ChunkRecord {
            fingerprint: r.fingerprint()?,
            offset: r.u32()?,
            len: r.u32()?,
        });
    }
    Some(Container::from_parts(
        id,
        ContainerMeta { records },
        data,
        logical_size,
    ))
}

fn encode_fingerprints(out: &mut Vec<u8>, fps: &[Fingerprint]) {
    out.extend_from_slice(&(fps.len() as u32).to_le_bytes());
    for fp in fps {
        out.extend_from_slice(fp.as_bytes());
    }
}

fn decode_fingerprints(r: &mut Reader<'_>) -> Option<Vec<Fingerprint>> {
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        out.push(r.fingerprint()?);
    }
    Some(out)
}

/// A bounds-checked little-endian byte reader.
struct Reader<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, offset: 0 }
    }

    fn is_empty(&self) -> bool {
        self.offset == self.bytes.len()
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.offset.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.offset..end];
        self.offset = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }

    fn fingerprint(&mut self) -> Option<Fingerprint> {
        Some(Fingerprint::from_digest(self.bytes(Fingerprint::LEN)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContainerBuilder;
    use sigma_hashkit::{Digest, Sha1};

    fn fp(i: u64) -> Fingerprint {
        Sha1::fingerprint(&i.to_le_bytes())
    }

    fn sample_container(id: u64) -> Container {
        let mut b = ContainerBuilder::new(ContainerId::new(id), 4096);
        for i in 0..4u64 {
            let data = vec![(id + i) as u8; 100];
            assert!(b.try_append(Sha1::fingerprint(&data), &data));
        }
        b.seal()
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::ContainerSeal {
                container: sample_container(0),
            },
            JournalRecord::ChunkIndexFinalize {
                container: ContainerId::new(0),
                entries: (0..4)
                    .map(|i| {
                        (
                            fp(i),
                            ChunkLocation {
                                container: ContainerId::new(0),
                                offset: (i * 100) as u32,
                                len: 100,
                            },
                        )
                    })
                    .collect(),
            },
            JournalRecord::SimilarityPublish {
                container: ContainerId::new(0),
                rfps: vec![fp(10), fp(11)],
            },
            JournalRecord::ContainerAdopt {
                origin_node: 3,
                origin_container: ContainerId::new(9),
                container: sample_container(1),
                rfps: vec![fp(20)],
            },
            JournalRecord::Tombstone {
                container: ContainerId::new(0),
                successor: 2,
            },
            JournalRecord::RecipeDelete { file_id: 17 },
            JournalRecord::GcCompact {
                victim: ContainerId::new(1),
                replacement: sample_container(2),
                rfps: vec![fp(30), fp(31)],
            },
            JournalRecord::GcDrop {
                container: ContainerId::new(2),
            },
            JournalRecord::StatsCheckpoint {
                logical_bytes: 1000,
                total_chunks: 8,
                unique_chunks: 8,
                super_chunks: 2,
            },
            JournalRecord::Snapshot(NodeSnapshot {
                next_container_id: 2,
                containers: vec![
                    (None, sample_container(0)),
                    (Some((3, ContainerId::new(9))), sample_container(1)),
                ],
                chunk_entries: vec![(
                    fp(1),
                    ChunkLocation {
                        container: ContainerId::new(0),
                        offset: 0,
                        len: 100,
                    },
                )],
                similarity: vec![(fp(10), ContainerId::new(0))],
                tombstones: vec![(ContainerId::new(5), 1)],
                logical_bytes: 1000,
                total_chunks: 8,
                unique_chunks: 8,
                super_chunks: 2,
            }),
        ]
    }

    #[test]
    fn every_record_kind_round_trips() {
        let journal = Journal::new();
        let records = sample_records();
        for record in &records {
            journal.append(record).unwrap();
        }
        let (replayed, summary) = Journal::replay(&journal.bytes());
        assert_eq!(replayed, records);
        assert_eq!(summary.frames, records.len() as u64);
        assert_eq!(summary.bytes_discarded, 0);
        assert_eq!(journal.frame_count(), records.len() as u64);
    }

    #[test]
    fn torn_tail_is_discarded_at_every_cut() {
        let journal = Journal::new();
        let records = sample_records();
        for record in &records {
            journal.append(record).unwrap();
        }
        let bytes = journal.bytes();
        let boundaries = journal.frame_boundaries();
        // Cutting anywhere strictly inside frame k+1 must replay exactly k+... the
        // frames whose end precedes the cut, never a partial record.
        for cut in [
            1usize,
            boundaries[0] - 1,
            boundaries[0] + 1,
            bytes.len() - 1,
        ] {
            let (replayed, summary) = Journal::replay(&bytes[..cut]);
            let expect = boundaries.iter().filter(|&&end| end <= cut).count();
            assert_eq!(replayed.len(), expect, "cut at {}", cut);
            assert_eq!(replayed.as_slice(), &records[..expect]);
            assert!(summary.bytes_discarded > 0);
        }
    }

    #[test]
    fn corrupt_frame_stops_replay() {
        let journal = Journal::new();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let mut bytes = journal.bytes();
        let boundaries = journal.frame_boundaries();
        // Flip one payload byte in the third frame: frames 0-1 replay, the rest
        // is reported as a corrupt/discarded tail.
        bytes[boundaries[1] + FRAME_HEADER + 2] ^= 0xFF;
        let (replayed, summary) = Journal::replay(&bytes);
        assert_eq!(replayed.len(), 2);
        assert_eq!(
            summary.bytes_discarded as usize,
            bytes.len() - boundaries[1]
        );
    }

    #[test]
    fn armed_clean_crash_persists_nothing_and_poisons_appends() {
        let journal = Journal::new();
        journal.append(&sample_records()[5]).unwrap();
        journal.arm_crash_at_seq(1, CrashMode::Clean);
        let before = journal.len_bytes();
        assert_eq!(
            journal.append(&sample_records()[5]),
            Err(StorageError::Crashed)
        );
        assert!(journal.crashed());
        assert_eq!(journal.len_bytes(), before, "clean crash writes nothing");
        // Everything after the crash fails too.
        assert_eq!(
            journal.append(&sample_records()[5]),
            Err(StorageError::Crashed)
        );
        // Recovery truncates (no-op here) and clears the crash.
        let (records, summary) = journal.recover_truncating();
        assert_eq!(records.len(), 1);
        assert_eq!(summary.bytes_discarded, 0);
        assert!(!journal.crashed());
        assert_eq!(journal.next_seq(), 1);
        journal.append(&sample_records()[5]).unwrap();
    }

    #[test]
    fn armed_torn_crash_leaves_a_discardable_tail() {
        let journal = Journal::new();
        journal.append(&sample_records()[0]).unwrap();
        let clean_len = journal.len_bytes();
        journal.arm_crash_at_seq(1, CrashMode::Torn);
        assert_eq!(
            journal.append(&sample_records()[0]),
            Err(StorageError::Crashed)
        );
        assert!(journal.len_bytes() > clean_len, "torn prefix persisted");
        let (records, summary) = journal.recover_truncating();
        assert_eq!(records.len(), 1, "torn frame discarded");
        assert!(summary.bytes_discarded > 0);
        assert_eq!(journal.len_bytes(), clean_len, "tail truncated for reuse");
    }

    #[test]
    fn compaction_folds_the_log_and_keeps_sequencing() {
        let journal = Journal::new();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        let long = journal.len_bytes();
        let seq_before = journal.next_seq();
        journal
            .compact(NodeSnapshot {
                next_container_id: 7,
                ..NodeSnapshot::default()
            })
            .unwrap();
        assert!(journal.len_bytes() < long, "snapshot replaces the log");
        assert_eq!(journal.frame_count(), 1);
        assert_eq!(
            journal.next_seq(),
            seq_before + 1,
            "sequence keeps counting"
        );
        let (records, _) = Journal::replay(&journal.bytes());
        assert!(matches!(records[0], JournalRecord::Snapshot(_)));
    }

    #[test]
    fn from_bytes_restores_boundaries_and_sequencing() {
        let journal = Journal::new();
        for record in sample_records().into_iter().take(3) {
            journal.append(&record).unwrap();
        }
        let reloaded = Journal::from_bytes(journal.bytes());
        assert_eq!(reloaded.frame_count(), 3);
        assert_eq!(reloaded.next_seq(), journal.next_seq());
        assert_eq!(reloaded.bytes(), journal.bytes());
    }

    #[test]
    fn append_batch_matches_sequential_appends_byte_for_byte() {
        let records = sample_records();
        let sequential = Journal::new();
        for record in &records {
            sequential.append(record).unwrap();
        }
        let batched = Journal::new();
        let first = batched.append_batch(&records).unwrap();
        assert_eq!(first, 0);
        assert_eq!(batched.bytes(), sequential.bytes());
        assert_eq!(batched.frame_boundaries(), sequential.frame_boundaries());
        assert_eq!(batched.next_seq(), sequential.next_seq());
        // Empty batches are free and consume no sequence numbers.
        let seq = batched.append_batch(&[]).unwrap();
        assert_eq!(seq, batched.next_seq());
        assert_eq!(batched.bytes(), sequential.bytes());
    }

    #[test]
    fn append_batch_charges_one_disk_transfer() {
        let disk = Arc::new(DiskModel::new(crate::DiskParams::default()));
        let journal = Journal::with_disk(disk.clone());
        journal.append_batch(&sample_records()).unwrap();
        let stats = disk.stats();
        assert_eq!(stats.sequential_ops, 1, "a group commit is one transfer");
        assert_eq!(stats.sequential_bytes as usize, journal.len_bytes());
    }

    #[test]
    fn append_batch_honors_mid_batch_crash_points() {
        let records = sample_records();
        // Clean crash on the third record: the first two frames are durable,
        // the rest of the batch vanishes.
        let journal = Journal::new();
        journal.arm_crash_at_seq(2, CrashMode::Clean);
        assert_eq!(journal.append_batch(&records), Err(StorageError::Crashed));
        assert!(journal.crashed());
        let (replayed, summary) = journal.recover_truncating();
        assert_eq!(replayed.as_slice(), &records[..2]);
        assert_eq!(summary.bytes_discarded, 0);

        // Torn crash mid-batch: same durable prefix plus a discardable tail.
        let journal = Journal::new();
        journal.arm_crash_at_seq(2, CrashMode::Torn);
        assert_eq!(journal.append_batch(&records), Err(StorageError::Crashed));
        let (replayed, summary) = journal.recover_truncating();
        assert_eq!(replayed.as_slice(), &records[..2]);
        assert!(summary.bytes_discarded > 0, "torn frame must be discarded");

        // A crash armed past the batch leaves the whole batch durable.
        let journal = Journal::new();
        journal.arm_crash_at_seq(records.len() as u64, CrashMode::Clean);
        journal.append_batch(&records).unwrap();
        assert!(!journal.crashed());
        assert_eq!(journal.frame_count(), records.len() as u64);
    }

    #[test]
    fn appends_charge_the_disk_model_sequentially() {
        let disk = Arc::new(DiskModel::new(crate::DiskParams::default()));
        let journal = Journal::with_disk(disk.clone());
        journal.append(&sample_records()[5]).unwrap();
        let stats = disk.stats();
        assert_eq!(stats.sequential_ops, 1);
        assert_eq!(stats.sequential_bytes as usize, journal.len_bytes());
        assert_eq!(stats.random_reads, 0, "a WAL never seeks");
    }
}
