//! Buffered chunking of `std::io::Read` sources.
//!
//! The backup client reads each file or backup stream through a [`ChunkStream`],
//! which buffers just enough data to guarantee that content-defined chunk boundaries
//! are identical to those that would be produced on the fully materialised stream.

use crate::{Chunk, Chunker};
use std::io::Read;

/// How many maximum-size chunks worth of data to keep buffered.
const BUFFER_CHUNKS: usize = 8;

/// An iterator of [`Chunk`]s read from an underlying reader.
///
/// # Example
///
/// ```
/// use sigma_chunking::{ChunkerParams, stream::ChunkStream};
///
/// let data = vec![9u8; 10_000];
/// let chunker = ChunkerParams::fixed(4096).build();
/// let chunks: Vec<_> = ChunkStream::new(&data[..], chunker.as_ref(), 4096)
///     .collect::<Result<_, _>>()
///     .unwrap();
/// assert_eq!(chunks.len(), 3);
/// assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10_000);
/// ```
pub struct ChunkStream<'a, R: Read> {
    reader: R,
    chunker: &'a dyn Chunker,
    /// Upper bound on a single chunk's size, used to size the refill buffer.
    max_chunk_size: usize,
    buffer: Vec<u8>,
    /// Bytes at the front of `buffer` already emitted as chunks.  Emitting a
    /// chunk only advances this cursor; the old per-chunk `drain(..take)` moved
    /// the entire remaining buffer every iteration.  The buffer is compacted
    /// once per refill instead (one memmove per ~`BUFFER_CHUNKS` chunks).
    consumed: usize,
    /// Stream offset of `buffer[consumed]`.
    buffer_offset: u64,
    eof: bool,
    errored: bool,
}

impl<'a, R: Read> ChunkStream<'a, R> {
    /// Creates a chunk stream over `reader`.
    ///
    /// `max_chunk_size` must be an upper bound on the size of any chunk the chunker
    /// can emit (e.g. the fixed size for SC, the maximum threshold for CDC/TTTD).
    ///
    /// # Panics
    ///
    /// Panics if `max_chunk_size` is zero.
    pub fn new(reader: R, chunker: &'a dyn Chunker, max_chunk_size: usize) -> Self {
        assert!(max_chunk_size > 0, "maximum chunk size must be non-zero");
        ChunkStream {
            reader,
            chunker,
            max_chunk_size,
            buffer: Vec::with_capacity(max_chunk_size * BUFFER_CHUNKS),
            consumed: 0,
            buffer_offset: 0,
            eof: false,
            errored: false,
        }
    }

    /// Unconsumed bytes currently buffered.
    fn pending(&self) -> usize {
        self.buffer.len() - self.consumed
    }

    fn refill(&mut self) -> std::io::Result<()> {
        // A first boundary computed on the pending bytes is stable under future
        // refills as long as at least one maximum-size chunk is buffered, so
        // nothing needs to be read until the pending region drops below that.
        if self.eof || self.pending() >= self.max_chunk_size {
            return Ok(());
        }
        if self.consumed > 0 {
            self.buffer.drain(..self.consumed);
            self.consumed = 0;
        }
        let target = self.max_chunk_size * BUFFER_CHUNKS;
        let mut scratch = [0u8; 16 * 1024];
        while !self.eof && self.buffer.len() < target {
            let want = scratch.len().min(target - self.buffer.len());
            let n = self.reader.read(&mut scratch[..want])?;
            if n == 0 {
                self.eof = true;
            } else {
                self.buffer.extend_from_slice(&scratch[..n]);
            }
        }
        Ok(())
    }
}

impl<R: Read> Iterator for ChunkStream<'_, R> {
    type Item = std::io::Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.errored {
            return None;
        }
        if let Err(e) = self.refill() {
            self.errored = true;
            return Some(Err(e));
        }
        let pending = &self.buffer[self.consumed..];
        if pending.is_empty() {
            return None;
        }

        // Only the first boundary is consumed per iteration: all our chunkers scan
        // left to right, so the first boundary depends only on the buffered prefix
        // and is stable under future refills (the buffer always holds at least one
        // maximum-size chunk unless we are at EOF).
        let take = self
            .chunker
            .first_boundary(pending)
            .expect("chunker returned no boundary for non-empty input");
        debug_assert!(take > 0 && take <= pending.len());

        let chunk = Chunk::new(self.buffer_offset, pending[..take].to_vec());
        self.consumed += take;
        self.buffer_offset += take as u64;
        Some(Ok(chunk))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChunkerParams;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn stream_chunks_reassemble() {
        let data = random_data(300_000, 1);
        let chunker = ChunkerParams::cdc(1024, 4096, 16 * 1024).build();
        let chunks: Vec<Chunk> = ChunkStream::new(&data[..], chunker.as_ref(), 16 * 1024)
            .collect::<Result<_, _>>()
            .unwrap();
        // Pre-reserve the known logical length: rebuilding into an uncapacitied
        // Vec both reallocates repeatedly and hides silent truncation.
        let mut rebuilt = Vec::with_capacity(data.len());
        for c in &chunks {
            assert_eq!(c.offset() as usize, rebuilt.len());
            rebuilt.extend_from_slice(c.data());
        }
        assert_eq!(
            rebuilt.len(),
            data.len(),
            "rebuilt stream length must match the logical input length"
        );
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn stream_matches_in_memory_chunking_for_static() {
        let data = random_data(100_000, 2);
        let chunker = ChunkerParams::fixed(4096).build();
        let streamed: Vec<usize> = ChunkStream::new(&data[..], chunker.as_ref(), 4096)
            .map(|c| c.unwrap().len())
            .collect();
        let in_memory: Vec<usize> = chunker.split(&data).iter().map(|c| c.len()).collect();
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn stream_matches_in_memory_chunking_for_content_defined() {
        // Regression for the consumed-cursor rewrite: streamed boundaries must be
        // byte-identical to whole-buffer chunking for every chunker family.
        let data = random_data(400_000, 9);
        for params in [
            ChunkerParams::cdc(1024, 4096, 16 * 1024),
            ChunkerParams::gear_cdc(1024, 4096, 16 * 1024),
            ChunkerParams::tttd_default(),
        ] {
            let chunker = params.build();
            let max = 32 * 1024;
            let streamed: Vec<usize> = ChunkStream::new(&data[..], chunker.as_ref(), max)
                .map(|c| c.unwrap().len())
                .collect();
            let in_memory: Vec<usize> = chunker.split(&data).iter().map(|c| c.len()).collect();
            assert_eq!(streamed, in_memory, "chunker {}", chunker.name());
        }
    }

    #[test]
    fn empty_reader_yields_nothing() {
        let chunker = ChunkerParams::fixed(4096).build();
        let mut stream = ChunkStream::new(&[][..], chunker.as_ref(), 4096);
        assert!(stream.next().is_none());
    }

    #[test]
    fn propagates_read_errors() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("boom"))
            }
        }
        let chunker = ChunkerParams::fixed(4096).build();
        let mut stream = ChunkStream::new(FailingReader, chunker.as_ref(), 4096);
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none(), "stream must fuse after an error");
    }
}
