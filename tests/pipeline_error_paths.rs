//! Error-path and edge-case coverage for the parallel ingest pipeline:
//! cache-eviction restores, empty/single-chunk streams, and the
//! `SuperChunkBuilder` drop contract.

use sigma_dedupe::prelude::*;
use std::sync::Arc;

fn tiny_cache_config() -> SigmaConfig {
    // One cached container and many small containers: every prefetch evicts the
    // previous container, so restores *must* go through the chunk index, not the
    // fingerprint cache.
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(8 * 1024)
        .cache_containers(1)
        .parallelism(4)
        .build()
        .expect("valid config")
}

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

#[test]
fn restore_survives_fingerprint_cache_eviction() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, tiny_cache_config()));
    let pipeline = IngestPipeline::new(cluster.clone());

    // 6 streams x 64 KB >> 1 cached container of 8 KB: containers are evicted
    // constantly during ingest of the duplicate generation.
    let inputs: Vec<StreamPayload> = (0..6u64)
        .map(|s| StreamPayload::new(s, format!("gen1-{s}"), pseudo_random(64 * 1024, s / 2)))
        .collect();
    let first = pipeline.backup_streams(inputs.clone()).unwrap();
    let second = pipeline
        .backup_streams(
            inputs
                .iter()
                .map(|i| {
                    StreamPayload::new(i.stream_id, format!("gen2-{}", i.stream_id), i.data.clone())
                })
                .collect(),
        )
        .unwrap();
    cluster.flush();

    let evictions: u64 = cluster
        .nodes()
        .iter()
        .map(|n| n.stats().cache.evictions)
        .sum();
    assert!(
        evictions > 0,
        "the test must actually exercise cache eviction"
    );

    // Every file — including those whose containers were long evicted from the
    // fingerprint cache — restores byte-identically: eviction affects only the
    // in-RAM prefetch cache, never the containers or the chunk index.
    for (report, input) in first.iter().chain(second.iter()).zip(inputs.iter().cycle()) {
        assert_eq!(cluster.restore_file(report.file_id).unwrap(), input.data);
    }
}

#[test]
fn empty_and_single_chunk_streams_mixed_into_a_batch() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, tiny_cache_config()));
    let pipeline = IngestPipeline::new(cluster.clone());
    let reports = pipeline
        .backup_streams(vec![
            StreamPayload::new(0, "empty", Vec::new()),
            StreamPayload::new(1, "single-chunk", vec![7u8; 512]),
            StreamPayload::new(2, "exactly-one-chunker-unit", vec![8u8; 1024]),
            StreamPayload::new(3, "bulk", pseudo_random(32 * 1024, 99)),
        ])
        .unwrap();
    cluster.flush();

    assert_eq!(reports[0].logical_bytes, 0);
    assert_eq!(reports[0].chunks, 0);
    assert_eq!(reports[0].super_chunks, 0);
    assert_eq!(reports[0].bandwidth_saving(), 0.0);
    assert_eq!(cluster.restore_file(reports[0].file_id).unwrap(), b"");

    assert_eq!(reports[1].chunks, 1);
    assert_eq!(
        reports[1].super_chunks, 1,
        "a lone undersized chunk still ships"
    );
    assert_eq!(
        cluster.restore_file(reports[1].file_id).unwrap(),
        vec![7u8; 512]
    );
    assert_eq!(reports[2].chunks, 1);
    assert_eq!(
        cluster.restore_file(reports[2].file_id).unwrap(),
        vec![8u8; 1024]
    );
    assert_eq!(
        cluster.restore_file(reports[3].file_id).unwrap(),
        pseudo_random(32 * 1024, 99)
    );
}

#[test]
fn restore_of_unknown_file_is_an_error_through_the_pipeline_cluster() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, tiny_cache_config()));
    let pipeline = IngestPipeline::new(cluster.clone());
    pipeline
        .backup_stream(0, "present", vec![1u8; 2048])
        .unwrap();
    assert!(matches!(
        cluster.restore_file(12345),
        Err(SigmaError::FileNotFound(12345))
    ));
}

#[test]
fn super_chunk_builder_drop_discards_pending_chunks() {
    // The builder cannot emit from Drop; the documented contract is that pending
    // chunks are silently discarded.  Pin both halves down: (a) what finish()
    // would have returned is lost on drop, (b) a finished builder drops empty.
    let descriptor = |i: u64| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 1024);

    let mut builder = SuperChunkBuilder::new(1 << 20);
    for i in 0..5 {
        assert!(builder.push_descriptor(descriptor(i)).is_none());
    }
    assert_eq!(builder.pending_chunk_count(), 5);
    assert_eq!(builder.pending_bytes(), 5 * 1024);
    assert!(!builder.is_empty());
    drop(builder); // no panic, pending chunks gone

    let mut builder = SuperChunkBuilder::new(1 << 20);
    for i in 0..5 {
        builder.push_descriptor(descriptor(i));
    }
    let last = builder.finish().expect("pending chunks flush");
    assert_eq!(last.chunk_count(), 5);
    assert!(builder.is_empty());
    assert_eq!(builder.pending_chunk_count(), 0);
    drop(builder); // nothing left to lose
}

#[test]
fn serial_client_flushes_its_builder_so_no_tail_is_lost() {
    // Regression guard for the drop contract at the call sites that matter: a
    // backup whose size is not a multiple of the super-chunk size still stores
    // its undersized tail (the client calls finish(), never relying on drop).
    let config = SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .build()
        .unwrap();
    let cluster = Arc::new(DedupCluster::with_similarity_router(1, config));
    let client = BackupClient::new(cluster.clone(), 0);
    // 9.5 super-chunks worth of data: the last half-full super-chunk is the tail.
    let data = pseudo_random(38 * 1024, 5);
    let report = client.backup_bytes("tail", &data).unwrap();
    assert_eq!(report.logical_bytes, data.len() as u64);
    assert_eq!(report.super_chunks, 10, "9 full + 1 undersized tail");
    cluster.flush();
    assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);
}
