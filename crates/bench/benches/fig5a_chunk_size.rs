//! Figure 5(a): single-node deduplication efficiency vs. chunk size (SC vs. CDC).

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::{DedupNode, SigmaConfig, SuperChunk};
use sigma_hashkit::FingerprintAlgorithm;
use sigma_simulation::experiments::fig5a;
use sigma_workloads::payload::random_bytes;

fn report() {
    sigma_bench::banner(
        "Figure 5(a)",
        "single-node deduplication efficiency (bytes saved per second) vs. chunk size",
    );
    let rows = fig5a::run(&fig5a::Fig5aParams {
        version_size: 8 << 20,
        versions: 4,
        chunk_sizes: vec![1024, 2048, 4096, 8192, 16384, 32768, 65536],
    });
    sigma_bench::print_table(
        "bytes saved per second, SC vs. CDC on versioned payload workloads",
        &fig5a::render(&rows),
    );
}

fn bench_node_dedup(c: &mut Criterion) {
    report();
    let config = SigmaConfig::default();
    let chunks: Vec<Vec<u8>> = random_bytes(1 << 20, 7)
        .chunks(4096)
        .map(|c| c.to_vec())
        .collect();
    let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
    let handprint = sc.handprint(8);
    c.bench_function("fig5a/dedup_1MiB_super_chunk_all_duplicates", |b| {
        let node = DedupNode::new(0, &config);
        node.process_super_chunk(0, &sc, &handprint).unwrap();
        b.iter(|| node.process_super_chunk(0, &sc, &handprint).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_node_dedup
}
criterion_main!(benches);
