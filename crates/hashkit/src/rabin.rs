//! Rabin fingerprinting: a rolling hash over GF(2) polynomials.
//!
//! Content-defined chunking (CDC) — including the TTTD variant used by the paper —
//! slides a fixed-size window over the data stream and declares a chunk boundary
//! whenever the Rabin fingerprint of the window matches a divisor condition.  This
//! module implements the classic table-driven Rabin fingerprint (as popularised by
//! LBFS) with an explicit sliding window.

use crate::RollingHash;

/// A degree-53 irreducible polynomial over GF(2), the classic LBFS choice.
///
/// The top set bit encodes the leading coefficient (x^53).
pub const DEFAULT_IRREDUCIBLE_POLY: u64 = 0x003D_A335_8B4D_C173;

/// Default sliding-window width in bytes.
pub const DEFAULT_WINDOW_SIZE: usize = 48;

/// Parameters for a [`RabinHasher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RabinParams {
    /// The irreducible polynomial (with its leading coefficient bit set).
    pub poly: u64,
    /// Sliding-window width in bytes.
    pub window_size: usize,
}

impl Default for RabinParams {
    fn default() -> Self {
        RabinParams {
            poly: DEFAULT_IRREDUCIBLE_POLY,
            window_size: DEFAULT_WINDOW_SIZE,
        }
    }
}

/// Degree of a GF(2) polynomial represented as a bit mask.
fn degree(poly: u64) -> u32 {
    63 - poly.leading_zeros()
}

/// Reduces a 128-bit GF(2) polynomial modulo `poly`.
fn polymod128(mut value: u128, poly: u64) -> u64 {
    let deg = degree(poly);
    let poly128 = poly as u128;
    let mut bit = 127u32;
    loop {
        if value >> bit & 1 == 1 && bit >= deg {
            value ^= poly128 << (bit - deg);
        }
        if bit == 0 {
            break;
        }
        bit -= 1;
    }
    value as u64
}

/// Carry-less multiplication of two GF(2) polynomials (result up to 127 bits).
fn polymul(a: u64, b: u64) -> u128 {
    let mut result = 0u128;
    let a = a as u128;
    for i in 0..64 {
        if b >> i & 1 == 1 {
            result ^= a << i;
        }
    }
    result
}

/// Multiplies two polynomials modulo `poly`.
fn polymulmod(a: u64, b: u64, poly: u64) -> u64 {
    polymod128(polymul(a, b), poly)
}

/// A table-driven Rabin rolling hash with an explicit byte window.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{RabinHasher, RabinParams, RollingHash};
///
/// let mut h = RabinHasher::new(RabinParams::default());
/// let data = b"some streaming data that is longer than the window .....";
/// for &b in data.iter() {
///     h.roll(b);
/// }
/// let v = h.value();
/// assert_ne!(v, 0);
/// ```
#[derive(Debug, Clone)]
pub struct RabinHasher {
    params: RabinParams,
    /// Degree of the polynomial.
    deg: u32,
    /// Mask keeping values below 2^deg.
    mask: u64,
    /// Shift extracting the byte that overflows past the degree when appending.
    shift: u32,
    /// Append table: cancels the overflowing byte and adds its reduced equivalent.
    append_table: [u64; 256],
    /// Remove table: contribution of the outgoing (oldest) window byte.
    remove_table: [u64; 256],
    /// `j * x^deg mod P` — the pure reduction of an overflowing byte.
    r1_table: [u64; 256],
    /// `j * x^(deg+8) mod P` — reduction of a byte overflowing two positions up.
    r2_table: [u64; 256],
    /// `j * x^(8W) mod P` — an outgoing byte's contribution advanced one step.
    remove_shift_table: [u64; 256],
    window: Vec<u8>,
    window_pos: usize,
    window_filled: usize,
    hash: u64,
}

impl RabinHasher {
    /// Creates a new hasher with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial degree is less than 9 (the table method needs at
    /// least one full byte of headroom) or the window size is zero.
    pub fn new(params: RabinParams) -> Self {
        let deg = degree(params.poly);
        assert!(
            (9..=56).contains(&deg),
            "polynomial degree must be between 9 and 56"
        );
        assert!(params.window_size > 0, "window size must be non-zero");

        let shift = deg - 8;
        let mask = (1u64 << deg) - 1;

        // x^deg mod P
        let x_deg_mod = polymod128(1u128 << deg, params.poly);
        let mut append_table = [0u64; 256];
        for (j, entry) in append_table.iter_mut().enumerate() {
            // (j * x^deg) mod P, together with the bits j << deg that the append
            // operation must cancel.
            *entry = polymulmod(j as u64, x_deg_mod, params.poly) | ((j as u64) << deg);
        }

        // The outgoing byte of a full window contributes b * x^(8*(W-1)); precompute
        // x^(8*(W-1)) mod P and multiply per byte value.
        let mut x_out = 1u64;
        let x8 = polymod128(1u128 << 8, params.poly);
        for _ in 0..(params.window_size - 1) {
            x_out = polymulmod(x_out, x8, params.poly);
        }
        let mut remove_table = [0u64; 256];
        for (j, entry) in remove_table.iter_mut().enumerate() {
            *entry = polymulmod(j as u64, x_out, params.poly);
        }

        // Tables for the two-byte-per-step scan: pure reductions of a byte
        // overflowing at x^deg and x^(deg+8), plus the outgoing byte's
        // contribution advanced by one append (x^(8(W-1)) * x^8 = x^(8W)).
        let x_deg8_mod = polymulmod(x_deg_mod, x8, params.poly);
        let x_out_shifted = polymulmod(x_out, x8, params.poly);
        let mut r1_table = [0u64; 256];
        let mut r2_table = [0u64; 256];
        let mut remove_shift_table = [0u64; 256];
        for j in 0..256usize {
            r1_table[j] = polymulmod(j as u64, x_deg_mod, params.poly);
            r2_table[j] = polymulmod(j as u64, x_deg8_mod, params.poly);
            remove_shift_table[j] = polymulmod(j as u64, x_out_shifted, params.poly);
        }

        RabinHasher {
            deg,
            mask,
            shift,
            append_table,
            remove_table,
            r1_table,
            r2_table,
            remove_shift_table,
            window: vec![0u8; params.window_size],
            window_pos: 0,
            window_filled: 0,
            hash: 0,
            params,
        }
    }

    /// Creates a hasher with the default polynomial and window size.
    pub fn with_defaults() -> Self {
        Self::new(RabinParams::default())
    }

    /// The parameters this hasher was created with.
    pub fn params(&self) -> RabinParams {
        self.params
    }

    /// Polynomial degree.
    pub fn poly_degree(&self) -> u32 {
        self.deg
    }

    #[inline]
    fn append_byte(&self, hash: u64, byte: u8) -> u64 {
        let top = (hash >> self.shift) as usize & 0xff;
        (((hash << 8) | byte as u64) ^ self.append_table[top]) & self.mask
    }

    /// Streams the rolling hash over `data` from a reset state, calling
    /// `test(p, hash)` for every 1-based prefix length `p >= first_check`, and
    /// returns the first `p` for which `test` returns `true`.
    ///
    /// Bit-identical to rolling every byte of `data` through a freshly reset
    /// hasher and testing `value()` at each qualifying prefix length, but the
    /// hot loop avoids all the per-byte overhead of [`RollingHash::roll`]:
    ///
    /// * **skip-ahead** — the hash is a function of the last `window_size` bytes
    ///   only, so feeding starts at `first_check - window_size` instead of 0
    ///   (the bytes below the minimum chunk size are never even read);
    /// * **no ring buffer** — the outgoing window byte is read straight from the
    ///   input slice, so there is no window `Vec`, no write-back, and no
    ///   per-byte `% window_len` division;
    /// * **two-byte stride** — the steady-state loop advances two bytes per
    ///   iteration, computing both the intermediate and the two-step hash
    ///   straight from the previous state via independent table lookups
    ///   (GF(2) linearity), so the serial load-to-load append chain of the
    ///   per-byte formulation is cut in half.
    ///
    /// The hasher's own window state is untouched; `scan` only borrows the
    /// precomputed tables.
    pub fn scan<F>(&self, data: &[u8], first_check: usize, mut test: F) -> Option<usize>
    where
        F: FnMut(usize, u64) -> bool,
    {
        let w = self.window.len();
        let n = data.len();
        let first = first_check.max(1);
        if first > n {
            return None;
        }
        let feed_start = first.saturating_sub(w);

        // Window warm-up: append without removal.  Positions below `first` are
        // carried silently; the last warm-up byte can already be a candidate.
        let warm_end = (feed_start + w).min(n);
        let mut hash = 0u64;
        let mut p = feed_start;
        for &b in &data[feed_start..warm_end] {
            hash = self.append_byte(hash, b);
            p += 1;
            if p >= first && test(p, hash) {
                return Some(p);
            }
        }
        if warm_end < feed_start + w {
            return None;
        }

        // Steady state: the window is full, the outgoing byte comes straight from
        // the slice `w` positions back.
        let incoming = &data[warm_end..];
        let outgoing = &data[warm_end - w..n - w];

        if self.deg >= 17 {
            // Two bytes per iteration with *no* serial append chain between
            // them.  Both the intermediate hash `h1` and the two-step hash
            // `h2` are computed directly from the previous state `g` — the
            // per-byte formulation's loop-carried chain (table load whose
            // index depends on the hash just produced) is replaced by one
            // level of independent lookups per two bytes.  Algebra (all
            // GF(2)-linear, so removals and appends distribute):
            //   h1 = append(g, in1)
            //      = (g & low8) << 8 | in1          ^ r1[g >> (deg-8)]
            //   h2 = append(append(g, in1) ^ rm[out2], in2)
            //      = (g & low16) << 16 | in1:in2    ^ r2[g >> (deg-8)]
            //        ^ r1[(g >> (deg-16)) & 0xff]   ^ rm_shift[out2]
            let low8 = (1u64 << (self.deg - 8)) - 1;
            let low16 = (1u64 << (self.deg - 16)) - 1;
            let top = self.deg - 8;
            let mid = self.deg - 16;
            let mut pairs_in = incoming.chunks_exact(2);
            let mut pairs_out = outgoing.chunks_exact(2);
            for (inc, out) in (&mut pairs_in).zip(&mut pairs_out) {
                let g = hash ^ self.remove_table[out[0] as usize];
                let gt = (g >> top) as usize;
                let h1 = (((g & low8) << 8) | inc[0] as u64) ^ self.r1_table[gt];
                let h2 = (((g & low16) << 16) | ((inc[0] as u64) << 8) | inc[1] as u64)
                    ^ self.r2_table[gt]
                    ^ self.r1_table[(g >> mid) as usize & 0xff]
                    ^ self.remove_shift_table[out[1] as usize];
                hash = h2;
                if test(p + 1, h1) {
                    return Some(p + 1);
                }
                if test(p + 2, h2) {
                    return Some(p + 2);
                }
                p += 2;
            }
            for (&new, &old) in pairs_in.remainder().iter().zip(pairs_out.remainder()) {
                hash ^= self.remove_table[old as usize];
                hash = self.append_byte(hash, new);
                p += 1;
                if test(p, hash) {
                    return Some(p);
                }
            }
            return None;
        }

        // Narrow polynomials (deg < 17): plain rolling step.
        for (&new, &old) in incoming.iter().zip(outgoing) {
            hash ^= self.remove_table[old as usize];
            hash = self.append_byte(hash, new);
            p += 1;
            if test(p, hash) {
                return Some(p);
            }
        }
        None
    }
}

impl Default for RabinHasher {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl RollingHash for RabinHasher {
    fn reset(&mut self) {
        self.hash = 0;
        self.window_pos = 0;
        self.window_filled = 0;
        self.window.iter_mut().for_each(|b| *b = 0);
    }

    fn roll(&mut self, byte: u8) -> u64 {
        if self.window_filled == self.window.len() {
            let outgoing = self.window[self.window_pos];
            self.hash ^= self.remove_table[outgoing as usize];
        } else {
            self.window_filled += 1;
        }
        self.window[self.window_pos] = byte;
        self.window_pos += 1;
        if self.window_pos == self.window.len() {
            self.window_pos = 0;
        }
        self.hash = self.append_byte(self.hash, byte);
        self.hash
    }

    fn value(&self) -> u64 {
        self.hash
    }

    fn window_size(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fingerprint_of(data: &[u8], params: RabinParams) -> u64 {
        let mut h = RabinHasher::new(params);
        for &b in data {
            h.roll(b);
        }
        h.value()
    }

    #[test]
    fn window_only_depends_on_last_w_bytes() {
        let params = RabinParams {
            window_size: 16,
            ..RabinParams::default()
        };
        let tail: Vec<u8> = (0..16u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();

        let mut prefix_a = vec![1u8; 100];
        prefix_a.extend_from_slice(&tail);
        let mut prefix_b = vec![250u8; 7];
        prefix_b.extend_from_slice(&tail);

        assert_eq!(
            fingerprint_of(&prefix_a, params),
            fingerprint_of(&prefix_b, params),
            "hash must be a function of the window contents only"
        );
    }

    #[test]
    fn different_windows_hash_differently() {
        let params = RabinParams::default();
        let a = fingerprint_of(b"abcdefghabcdefghabcdefghabcdefghabcdefghabcdefgh", params);
        let b = fingerprint_of(b"abcdefghabcdefghabcdefghabcdefghabcdefghabcdefgX", params);
        assert_ne!(a, b);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut h = RabinHasher::with_defaults();
        for &b in b"some data".iter() {
            h.roll(b);
        }
        h.reset();
        assert_eq!(h.value(), 0);
        let v1 = {
            for &b in b"replay".iter() {
                h.roll(b);
            }
            h.value()
        };
        let mut fresh = RabinHasher::with_defaults();
        for &b in b"replay".iter() {
            fresh.roll(b);
        }
        assert_eq!(v1, fresh.value());
    }

    #[test]
    fn value_stays_below_degree() {
        let mut h = RabinHasher::with_defaults();
        let limit = 1u64 << h.poly_degree();
        for i in 0..10_000u32 {
            let v = h.roll((i % 251) as u8);
            assert!(v < limit);
        }
    }

    #[test]
    fn polymod_reduces_below_poly_degree() {
        let poly = DEFAULT_IRREDUCIBLE_POLY;
        let deg = degree(poly);
        for v in [0u128, 1, 0xdeadbeef, u64::MAX as u128, u128::MAX / 3] {
            assert!(polymod128(v, poly) < (1u64 << deg));
        }
    }

    #[test]
    fn polymul_matches_schoolbook_for_small_inputs() {
        // (x+1)*(x+1) = x^2 + 1 over GF(2)
        assert_eq!(polymul(0b11, 0b11), 0b101);
        // x * x^2 = x^3
        assert_eq!(polymul(0b10, 0b100), 0b1000);
    }

    proptest! {
        #[test]
        fn prop_window_locality(
            prefix_a in proptest::collection::vec(any::<u8>(), 0..200),
            prefix_b in proptest::collection::vec(any::<u8>(), 0..200),
            tail in proptest::collection::vec(any::<u8>(), 48..128),
        ) {
            let params = RabinParams::default();
            let mut a = prefix_a.clone();
            a.extend_from_slice(&tail);
            let mut b = prefix_b.clone();
            b.extend_from_slice(&tail);
            prop_assert_eq!(fingerprint_of(&a, params), fingerprint_of(&b, params));
        }

        #[test]
        fn prop_value_bounded(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut h = RabinHasher::with_defaults();
            let limit = 1u64 << h.poly_degree();
            for &byte in &data {
                prop_assert!(h.roll(byte) < limit);
            }
        }

        #[test]
        fn prop_scan_matches_scalar_roll(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            first_check in 0usize..300,
            mask_bits in 1u32..10,
        ) {
            let params = RabinParams { window_size: 48, ..RabinParams::default() };
            let hasher = RabinHasher::new(params);
            let mask = (1u64 << mask_bits) - 1;

            // Scalar reference: roll every byte from a reset state, test every
            // prefix length >= first_check.
            let mut scalar = RabinHasher::new(params);
            let mut expected = None;
            for (i, &b) in data.iter().enumerate() {
                let h = scalar.roll(b);
                if i + 1 >= first_check.max(1) && h & mask == mask {
                    expected = Some(i + 1);
                    break;
                }
            }

            let got = hasher.scan(&data, first_check, |_, h| h & mask == mask);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn prop_scan_small_window_partial_fill(
            data in proptest::collection::vec(any::<u8>(), 0..80),
            first_check in 0usize..20,
        ) {
            // first_check below the window size exercises the partial-window
            // warm-up path (positions tested before the window is full).
            let params = RabinParams { window_size: 32, ..RabinParams::default() };
            let hasher = RabinHasher::new(params);
            let mask = 0x7u64;

            let mut scalar = RabinHasher::new(params);
            let mut expected = None;
            for (i, &b) in data.iter().enumerate() {
                let h = scalar.roll(b);
                if i + 1 >= first_check.max(1) && h & mask == mask {
                    expected = Some(i + 1);
                    break;
                }
            }

            let got = hasher.scan(&data, first_check, |_, h| h & mask == mask);
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn scan_reports_positions_in_order_and_at_least_first_check() {
        let hasher = RabinHasher::with_defaults();
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut seen = Vec::new();
        let got = hasher.scan(&data, 100, |p, _| {
            seen.push(p);
            false
        });
        assert_eq!(got, None);
        assert_eq!(seen.first(), Some(&100));
        assert_eq!(seen.last(), Some(&data.len()));
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn scan_first_check_past_end_returns_none() {
        let hasher = RabinHasher::with_defaults();
        let data = vec![7u8; 64];
        assert_eq!(hasher.scan(&data, 65, |_, _| true), None);
        assert_eq!(hasher.scan(&data, 64, |_, _| true), Some(64));
    }
}
