//! Data chunking for the Σ-Dedupe deduplication framework.
//!
//! The backup client's *data partitioning* module (Figure 2 of the paper) splits each
//! data stream into chunks before fingerprinting.  The paper evaluates two families
//! of chunkers:
//!
//! * **Static chunking (SC)** — fixed-size chunks; negligible CPU cost.  The paper's
//!   prototype settles on SC with 4 KB chunks for the cluster experiments
//!   (Section 4.3, Figure 5(a)).
//! * **Content-defined chunking (CDC)** — chunk boundaries are declared where a
//!   rolling hash of a sliding window satisfies a divisor condition, so insertions
//!   and deletions do not shift every subsequent boundary.  The paper uses the
//!   Two-Threshold Two-Divisor (TTTD) variant for the resemblance study of
//!   Section 2.2 and Rabin-based CDC for the throughput study of Figure 4(a).
//!
//! This crate implements all three chunkers behind one [`Chunker`] trait, plus a
//! buffering [`stream::ChunkStream`] adapter for `std::io::Read` sources.
//!
//! # Example
//!
//! ```
//! use sigma_chunking::{Chunker, ChunkerParams};
//!
//! let data = vec![0u8; 64 * 1024];
//! let chunker = ChunkerParams::fixed(4096).build();
//! let chunks = chunker.split(&data);
//! assert_eq!(chunks.len(), 16);
//! assert!(chunks.iter().all(|c| c.len() == 4096));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdc;
mod chunk;
mod fixed;
mod gear_cdc;
mod params;
pub mod reference;
pub mod stream;
mod tttd;

pub use cdc::CdcChunker;
pub use chunk::{Chunk, ChunkSpan};
pub use fixed::StaticChunker;
pub use gear_cdc::GearCdcChunker;
pub use params::{ChunkerParams, ChunkingMethod};
pub use tttd::{TttdChunker, TttdParams};

/// A chunking algorithm: splits a byte buffer into consecutive chunks.
///
/// Implementations must return boundaries that tile the input exactly: the last
/// boundary equals `data.len()` and boundaries are strictly increasing.
pub trait Chunker: Send + Sync {
    /// Returns the *end offsets* of every chunk in `data`.
    ///
    /// For non-empty input the returned vector is non-empty, strictly increasing and
    /// ends with `data.len()`.  For empty input it is empty.
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize>;

    /// The average (target) chunk size in bytes, used for capacity planning.
    fn average_chunk_size(&self) -> usize;

    /// A short human-readable name for reports (e.g. `"sc-4096"`).
    fn name(&self) -> String;

    /// Returns the end offset of just the *first* chunk of `data`, or `None`
    /// for empty input.
    ///
    /// Semantically equivalent to `chunk_boundaries(data).first().copied()`
    /// (the provided default), but every chunker in this crate scans left to
    /// right and overrides this to stop at the first cut — the
    /// [`stream::ChunkStream`] hot path calls it once per emitted chunk, and
    /// rescanning the whole buffer per chunk would be quadratic.
    fn first_boundary(&self, data: &[u8]) -> Option<usize> {
        self.chunk_boundaries(data).first().copied()
    }

    /// Splits `data` into owned [`Chunk`]s (convenience wrapper over
    /// [`chunk_boundaries`](Chunker::chunk_boundaries)).
    fn split(&self, data: &[u8]) -> Vec<Chunk> {
        let boundaries = self.chunk_boundaries(data);
        let mut chunks = Vec::with_capacity(boundaries.len());
        let mut start = 0usize;
        for end in boundaries {
            chunks.push(Chunk::new(start as u64, data[start..end].to_vec()));
            start = end;
        }
        chunks
    }
}

/// Validates the invariants promised by [`Chunker::chunk_boundaries`].
///
/// Exposed so that tests in dependent crates (and property tests here) can check any
/// chunker implementation uniformly.
///
/// # Errors
///
/// Returns a human-readable description of the violated invariant.
pub fn validate_boundaries(data_len: usize, boundaries: &[usize]) -> Result<(), String> {
    if data_len == 0 {
        if boundaries.is_empty() {
            return Ok(());
        }
        return Err("boundaries must be empty for empty input".to_string());
    }
    if boundaries.is_empty() {
        return Err("boundaries must not be empty for non-empty input".to_string());
    }
    let mut prev = 0usize;
    for (i, &b) in boundaries.iter().enumerate() {
        let ok = if i == 0 { b > 0 } else { b > prev };
        if !ok {
            return Err(format!(
                "boundary {} at offset {} is not strictly increasing (previous {})",
                i, b, prev
            ));
        }
        prev = b;
    }
    if *boundaries.last().expect("non-empty") != data_len {
        return Err(format!(
            "last boundary {} does not equal data length {}",
            boundaries.last().unwrap(),
            data_len
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_boundaries() {
        assert!(validate_boundaries(10, &[4, 7, 10]).is_ok());
        assert!(validate_boundaries(0, &[]).is_ok());
    }

    #[test]
    fn validate_rejects_bad_boundaries() {
        assert!(validate_boundaries(10, &[]).is_err());
        assert!(validate_boundaries(10, &[4, 4, 10]).is_err());
        assert!(validate_boundaries(10, &[4, 7, 9]).is_err());
        assert!(validate_boundaries(0, &[1]).is_err());
        assert!(validate_boundaries(10, &[0, 5, 10]).is_err());
    }

    #[test]
    fn split_reassembles_to_original() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for params in [
            ChunkerParams::fixed(512),
            ChunkerParams::cdc(256, 1024, 4096),
            ChunkerParams::tttd_default(),
        ] {
            let chunker = params.build();
            let chunks = chunker.split(&data);
            let mut rebuilt = Vec::new();
            for c in &chunks {
                assert_eq!(c.offset() as usize, rebuilt.len());
                rebuilt.extend_from_slice(c.data());
            }
            assert_eq!(rebuilt, data, "chunker {}", chunker.name());
        }
    }
}
