//! Real-file persistence: back a file tree up into a file-backed cluster,
//! throw away every in-memory handle (simulating a process exit), re-open the
//! nodes from nothing but their on-disk directories, and restore byte-exactly.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example persistent_restart
//! ```
//!
//! The storage directory defaults to a scratch path under the system temp dir;
//! set `SIGMA_STORAGE_DIR` to persist somewhere durable and re-run to watch
//! the second process pick the same state back up.

use sigma_dedupe::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

const NODES: usize = 2;

fn storage_root() -> PathBuf {
    std::env::var_os("SIGMA_STORAGE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("sigma-persistent-restart-{}", std::process::id()))
        })
}

fn config(root: &std::path::Path) -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .file_storage(root) // BackendKind::File + durability on
        .build()
        .expect("valid example config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = storage_root();
    let config = config(&root);
    println!("storage root: {}", root.display());

    // ---- "process one": ingest and exit -------------------------------------
    // The recipes are the client-side catalog a real backup application keeps;
    // everything else lives only in the node directories after this block.
    let (recipes, originals): (Vec<Arc<FileRecipe>>, HashMap<u64, Vec<u8>>) = {
        let cluster = Arc::new(DedupCluster::with_similarity_router(NODES, config.clone()));
        let client = BackupClient::new(cluster.clone(), 1);
        let shared = random_bytes(1 << 20, 77);
        let tree = vec![
            ("src/main.rs".to_string(), random_bytes(64 * 1024, 1)),
            ("assets/video.bin".to_string(), random_bytes(3 << 20, 2)),
            ("assets/logo.png".to_string(), shared.clone()),
            ("docs/logo-copy.png".to_string(), shared),
        ];
        let mut originals = HashMap::new();
        for (name, data) in tree {
            let report = client.backup_bytes(&name, &data)?;
            println!(
                "backed up {:<20} {:>9} logical, {:>9} transferred",
                name,
                human_bytes(report.logical_bytes),
                human_bytes(report.transferred_bytes)
            );
            originals.insert(report.file_id, data);
        }
        cluster.flush();
        (cluster.director().recipes(), originals)
        // cluster, nodes, journals: all dropped here.
    };

    // ---- "process two": recover from the directories ------------------------
    let mut nodes: HashMap<usize, DedupNode> = HashMap::new();
    for id in 0..NODES {
        let (node, report) = DedupNode::recover_from_dir(id, &config)?;
        println!(
            "node {} recovered: {} replayed, {} containers, {} objects verified",
            id,
            human_bytes(report.bytes_replayed),
            report.containers_recovered,
            report.backend_objects_verified
        );
        node.verify_consistency()
            .map_err(|e| format!("node {} inconsistent after restart: {}", id, e))?;
        nodes.insert(id, node);
    }

    // Reassemble every file from its recipe against the recovered nodes.
    for recipe in &recipes {
        let mut restored = Vec::with_capacity(recipe.size as usize);
        for entry in &recipe.chunks {
            restored.extend_from_slice(&nodes[&entry.node].read_chunk(&entry.fingerprint)?);
        }
        assert_eq!(
            &restored, &originals[&recipe.file_id],
            "{} must survive the restart byte-identically",
            recipe.name
        );
        println!(
            "restored {:<20} bit-exact ({})",
            recipe.name,
            human_bytes(recipe.size)
        );
    }
    println!(
        "persistent_restart: restart OK, {} files bit-exact",
        recipes.len()
    );

    if std::env::var_os("SIGMA_STORAGE_DIR").is_none() {
        drop(nodes);
        std::fs::remove_dir_all(&root)?;
        println!("removed scratch directory (set SIGMA_STORAGE_DIR to keep state)");
    }
    Ok(())
}
