//! Framed-TCP transport acceptance: a backup/restore round trip through the
//! full default stack over a loopback socket is byte-identical to the same
//! requests through the in-process transport, and service-level rejections
//! (unauthorized, over-quota) travel the wire with their correct codes while
//! leaving cluster accounting untouched.

use sigma_dedupe::prelude::*;
use std::sync::Arc;

const TOKEN: &str = "s3cret";

fn service_fixture(budget: u64) -> (Arc<DedupCluster>, Arc<ServiceStack>, TcpService) {
    let config = SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(32 * 1024)
        .build()
        .expect("valid config");
    let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
    let stack = Arc::new(
        ServiceBuilder::default_stack(
            TokenAuth::new().tenant("acme", TOKEN),
            TenantQuota::new().budget("acme", budget),
            RateLimit::new(1000, 1000.0),
        )
        .build(cluster.clone()),
    );
    let service = TcpService::bind("127.0.0.1:0", stack.clone()).expect("bind loopback");
    (cluster, stack, service)
}

fn backup_req(id: u64, name: &str, payload: Vec<u8>) -> RequestEnvelope {
    RequestEnvelope::new(
        id,
        "acme",
        Operation::Backup {
            file_name: name.into(),
            generation: 0,
        },
    )
    .with_payload(payload)
    .with_token(TOKEN)
}

#[test]
fn tcp_round_trip_matches_in_process_transport() {
    let (_cluster, stack, mut service) = service_fixture(4 << 20);
    let mut client = TcpClient::connect(service.local_addr()).expect("connect");

    let payload: Vec<u8> = (0..150_000usize).map(|i| (i * 131 % 251) as u8).collect();

    // Same logical content backed up once over each transport (distinct file
    // names, so both ingest the same bytes independently).
    let wire_backup = client
        .call(&backup_req(1, "wire.bin", payload.clone()))
        .unwrap();
    assert!(wire_backup.is_ok(), "{}", wire_backup.message);
    let local_backup = stack.call(backup_req(2, "local.bin", payload.clone()));
    assert!(local_backup.is_ok(), "{}", local_backup.message);

    let wire_id = wire_backup
        .metadata_u64(sigma_dedupe::service::backend::FILE_ID_KEY)
        .unwrap();
    let local_id = local_backup
        .metadata_u64(sigma_dedupe::service::backend::FILE_ID_KEY)
        .unwrap();

    // Restore each file over the *other* transport: every combination must be
    // byte-identical to the original payload.
    let wire_restore = client
        .call(
            &RequestEnvelope::new(3, "acme", Operation::Restore { file_id: local_id })
                .with_token(TOKEN),
        )
        .unwrap();
    let local_restore = stack.call(
        RequestEnvelope::new(4, "acme", Operation::Restore { file_id: wire_id }).with_token(TOKEN),
    );
    assert_eq!(wire_restore.payload, payload, "TCP restore of local backup");
    assert_eq!(
        local_restore.payload, payload,
        "local restore of TCP backup"
    );
    assert_eq!(
        wire_restore.payload, local_restore.payload,
        "transports agree byte-for-byte"
    );

    // The logging layer saw all four requests regardless of transport.
    let log = stack.log().expect("default stack logs");
    assert_eq!(log.len(), 4);
    service.shutdown();
}

#[test]
fn unauthorized_and_over_quota_reject_over_the_wire() {
    let (cluster, _stack, mut service) = service_fixture(10_000);
    let mut client = TcpClient::connect(service.local_addr()).expect("connect");

    // Seed a small legitimate backup, then snapshot accounting.
    let ok = client
        .call(&backup_req(1, "seed.bin", vec![7u8; 4_000]))
        .unwrap();
    assert!(ok.is_ok(), "{}", ok.message);
    cluster.flush();
    let logical_before = cluster.logical_bytes();
    let physical_before = cluster.physical_bytes();

    // Wrong token: Unauthorized, before any other layer.
    let resp = client
        .call(&backup_req(2, "x.bin", vec![1u8; 100]).with_metadata(AUTH_TOKEN_KEY, "wrong"))
        .unwrap();
    assert_eq!(resp.code, ServiceCode::Unauthorized);
    assert!(!resp.message.is_empty(), "rejection carries a message");

    // Over budget: ResourceExhausted, before the backend.
    let resp = client
        .call(&backup_req(3, "big.bin", vec![2u8; 60_000]))
        .unwrap();
    assert_eq!(resp.code, ServiceCode::ResourceExhausted);

    // Unknown file for this tenant: NotFound travels the wire too.
    let resp = client
        .call(
            &RequestEnvelope::new(4, "acme", Operation::Restore { file_id: 123_456 })
                .with_token(TOKEN),
        )
        .unwrap();
    assert_eq!(resp.code, ServiceCode::NotFound);

    // None of the rejected requests moved cluster accounting.
    cluster.flush();
    assert_eq!(cluster.logical_bytes(), logical_before);
    assert_eq!(cluster.physical_bytes(), physical_before);

    // The connection is still healthy after three rejections.
    let stats = client
        .call(&RequestEnvelope::new(5, "acme", Operation::Stats).with_token(TOKEN))
        .unwrap();
    assert!(stats.is_ok(), "{}", stats.message);
    service.shutdown();
}
