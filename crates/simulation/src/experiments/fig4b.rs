//! Figure 4(b): parallel similarity-index lookup vs. lock granularity.
//!
//! The similarity index is shared by all data-stream threads of a node, so its lock
//! striping granularity determines how well lookups scale.  The paper sweeps the
//! number of locks from 1 to 64 Ki for 1–16 streams and finds that throughput rises
//! until about 1024 locks and that 8 streams (the hardware thread count) performs
//! best.

use serde::{Deserialize, Serialize};
use sigma_hashkit::{Digest, Sha1};
use sigma_metrics::report::TextTable;
use sigma_metrics::Stopwatch;
use sigma_storage::{ContainerId, SimilarityIndex};
use std::sync::Arc;

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4bRow {
    /// Number of lock stripes.
    pub locks: usize,
    /// Number of concurrent lookup streams (threads).
    pub streams: usize,
    /// Aggregate lookups per second.
    pub lookups_per_sec: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4bParams {
    /// Entries preloaded into the index.
    pub preload_entries: usize,
    /// Lookups performed per stream.
    pub lookups_per_stream: usize,
    /// Lock counts to sweep.
    pub lock_counts: Vec<usize>,
    /// Stream counts to sweep.
    pub stream_counts: Vec<usize>,
}

impl Default for Fig4bParams {
    fn default() -> Self {
        Fig4bParams {
            preload_entries: 200_000,
            lookups_per_stream: 500_000,
            lock_counts: vec![1, 4, 16, 64, 256, 1024, 4096, 16384, 65536],
            stream_counts: vec![1, 2, 4, 8, 16],
        }
    }
}

/// Runs the experiment.
pub fn run(params: &Fig4bParams) -> Vec<Fig4bRow> {
    let mut rows = Vec::new();
    for &locks in &params.lock_counts {
        for &streams in &params.stream_counts {
            rows.push(Fig4bRow {
                locks,
                streams,
                lookups_per_sec: measure(locks, streams, params),
            });
        }
    }
    rows
}

/// Measures one `(locks, streams)` point.
pub fn measure(locks: usize, streams: usize, params: &Fig4bParams) -> f64 {
    let index = Arc::new(SimilarityIndex::new(locks));
    let keys: Vec<_> = (0..params.preload_entries as u64)
        .map(|i| Sha1::fingerprint(&i.to_le_bytes()))
        .collect();
    for (i, key) in keys.iter().enumerate() {
        index.insert(*key, ContainerId::new(i as u64));
    }

    let total_lookups = (streams * params.lookups_per_stream) as u64;
    let stopwatch = Stopwatch::start();
    std::thread::scope(|scope| {
        for stream in 0..streams {
            let index = index.clone();
            let keys = &keys;
            scope.spawn(move || {
                let mut state = (stream as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..params.lookups_per_stream {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = &keys[(state % keys.len() as u64) as usize];
                    std::hint::black_box(index.lookup(key));
                }
            });
        }
    });
    let elapsed = stopwatch.elapsed().as_secs_f64();
    if elapsed <= 0.0 {
        0.0
    } else {
        total_lookups as f64 / elapsed
    }
}

/// Renders the figure (lock counts as rows, stream counts as columns).
pub fn render(rows: &[Fig4bRow]) -> String {
    let mut locks: Vec<usize> = rows.iter().map(|r| r.locks).collect();
    locks.sort_unstable();
    locks.dedup();
    let mut streams: Vec<usize> = rows.iter().map(|r| r.streams).collect();
    streams.sort_unstable();
    streams.dedup();

    let mut headers = vec!["locks".to_string()];
    headers.extend(streams.iter().map(|s| format!("{} streams", s)));
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for l in locks {
        let mut cells = vec![l.to_string()];
        for &s in &streams {
            let value = rows
                .iter()
                .find(|r| r.locks == l && r.streams == s)
                .map(|r| format!("{:.2} Mops/s", r.lookups_per_sec / 1e6))
                .unwrap_or_default();
            cells.push(value);
        }
        table.add_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig4bParams {
        Fig4bParams {
            preload_entries: 5_000,
            lookups_per_stream: 20_000,
            lock_counts: vec![1, 64],
            stream_counts: vec![1, 4],
        }
    }

    #[test]
    fn produces_all_combinations_with_positive_throughput() {
        let rows = run(&tiny_params());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.lookups_per_sec > 0.0));
    }

    #[test]
    fn striping_helps_concurrent_lookups() {
        // Take the crate's CPU-heavy-test turnstile: a tenant storm running
        // in parallel would steal the cores this comparison measures.
        let _turn = crate::test_support::cpu_heavy_test_turn();
        // With 4 threads, 64 locks should not be slower than a single global lock by
        // any meaningful margin (it is usually much faster; allow noise).
        let params = Fig4bParams {
            preload_entries: 20_000,
            lookups_per_stream: 150_000,
            ..tiny_params()
        };
        let single = measure(1, 4, &params);
        let striped = measure(64, 4, &params);
        assert!(
            striped > single * 0.8,
            "striped {} vs single {}",
            striped,
            single
        );
    }

    #[test]
    fn render_shows_mops() {
        let text = render(&run(&tiny_params()));
        assert!(text.contains("Mops/s"));
        assert!(text.contains("locks"));
    }
}
