//! The pipeline executor: envelopes flowing through the middleware stack into
//! a backend.
//!
//! ```text
//! RequestEnvelope → middleware[0] → middleware[1] → … → Backend
//!                                                          │
//! ResponseEnvelope ← middleware[0] ← middleware[1] ← … ←───┘
//! ```
//!
//! The executor owns an ordered middleware stack and a [`Backend`].  Each
//! middleware sees the request on the way in and the response on the way out;
//! an `Err` anywhere short-circuits the layers below it and is converted into
//! a rejection [`ResponseEnvelope`] exactly once, at the executor boundary.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::{RequestEnvelope, ResponseEnvelope};
use std::sync::Arc;

/// The innermost handler of a pipeline — the thing the middleware stack
/// guards.  [`BackupService`](crate::BackupService) is the production
/// backend; tests substitute their own.
pub trait Backend: Send + Sync {
    /// Executes the request against the underlying system.
    fn call(&self, req: RequestEnvelope) -> ServiceResult;
}

impl<F> Backend for F
where
    F: Fn(RequestEnvelope) -> ServiceResult + Send + Sync,
{
    fn call(&self, req: RequestEnvelope) -> ServiceResult {
        self(req)
    }
}

/// An ordered middleware stack in front of a backend.
pub struct PipelineExecutor {
    middlewares: Vec<Arc<dyn Middleware>>,
    backend: Arc<dyn Backend>,
}

/// One suffix of the middleware stack plus the backend — the [`Next`] handle
/// a middleware calls to run everything below itself.
struct Chain<'a> {
    rest: &'a [Arc<dyn Middleware>],
    backend: &'a dyn Backend,
}

impl Next for Chain<'_> {
    fn run(&self, req: RequestEnvelope) -> ServiceResult {
        match self.rest.split_first() {
            Some((mw, rest)) => mw.handle(
                req,
                &Chain {
                    rest,
                    backend: self.backend,
                },
            ),
            None => self.backend.call(req),
        }
    }
}

impl PipelineExecutor {
    /// Builds an executor from an ordered stack (outermost first) and a
    /// backend.
    pub fn new(middlewares: Vec<Arc<dyn Middleware>>, backend: Arc<dyn Backend>) -> Self {
        PipelineExecutor {
            middlewares,
            backend,
        }
    }

    /// Names of the stacked middlewares, outermost first (for logs and
    /// `Debug`).
    pub fn stack(&self) -> Vec<&'static str> {
        self.middlewares.iter().map(|m| m.name()).collect()
    }

    /// Runs one request through the full stack.  Never panics on user error:
    /// any `Err` from a middleware or the backend becomes a rejection
    /// envelope whose code derives from
    /// [`SigmaError::code`](sigma_core::SigmaError::code).
    pub fn execute(&self, req: RequestEnvelope) -> ResponseEnvelope {
        let request_id = req.request_id;
        let chain = Chain {
            rest: &self.middlewares,
            backend: self.backend.as_ref(),
        };
        chain
            .run(req)
            .unwrap_or_else(|err| ResponseEnvelope::rejection(request_id, &err))
    }
}

impl std::fmt::Debug for PipelineExecutor {
    /// Shows the stack shape, not the (unprintable) trait objects.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineExecutor")
            .field("stack", &self.stack())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;
    use sigma_core::{ServiceCode, SigmaError};

    fn req(id: u64) -> RequestEnvelope {
        RequestEnvelope::new(id, "t", Operation::Stats)
    }

    fn echo_backend() -> Arc<dyn Backend> {
        Arc::new(|r: RequestEnvelope| {
            Ok(ResponseEnvelope::ok(r.request_id).with_metadata("backend", "echo"))
        })
    }

    /// Tags requests on the way in and responses on the way out, recording
    /// call order in a shared log.
    struct Tag {
        label: &'static str,
        log: Arc<parking_lot::Mutex<Vec<String>>>,
    }

    impl Middleware for Tag {
        fn name(&self) -> &'static str {
            self.label
        }
        fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
            self.log.lock().push(format!("{}>in", self.label));
            let resp = next.run(req)?;
            self.log.lock().push(format!("{}>out", self.label));
            Ok(resp.with_metadata(self.label, "seen"))
        }
    }

    struct Reject;
    impl Middleware for Reject {
        fn name(&self) -> &'static str {
            "reject"
        }
        fn handle(&self, req: RequestEnvelope, _next: &dyn Next) -> ServiceResult {
            Err(SigmaError::Unauthorized { tenant: req.tenant })
        }
    }

    #[test]
    fn empty_stack_reaches_the_backend() {
        let pipeline = PipelineExecutor::new(vec![], echo_backend());
        let resp = pipeline.execute(req(5));
        assert_eq!(resp.request_id, 5);
        assert_eq!(resp.metadata["backend"], "echo");
        assert!(pipeline.stack().is_empty());
    }

    #[test]
    fn middlewares_run_outermost_first_and_unwind_in_reverse() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pipeline = PipelineExecutor::new(
            vec![
                Arc::new(Tag {
                    label: "outer",
                    log: log.clone(),
                }),
                Arc::new(Tag {
                    label: "inner",
                    log: log.clone(),
                }),
            ],
            echo_backend(),
        );
        let resp = pipeline.execute(req(1));
        assert!(resp.is_ok());
        assert_eq!(resp.metadata["outer"], "seen");
        assert_eq!(resp.metadata["inner"], "seen");
        assert_eq!(
            *log.lock(),
            vec!["outer>in", "inner>in", "inner>out", "outer>out"]
        );
        assert_eq!(pipeline.stack(), vec!["outer", "inner"]);
    }

    #[test]
    fn rejection_short_circuits_lower_layers() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let pipeline = PipelineExecutor::new(
            vec![
                Arc::new(Tag {
                    label: "outer",
                    log: log.clone(),
                }),
                Arc::new(Reject),
                Arc::new(Tag {
                    label: "never",
                    log: log.clone(),
                }),
            ],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult { panic!("backend must not run") }),
        );
        let resp = pipeline.execute(req(9));
        assert_eq!(resp.request_id, 9);
        assert_eq!(resp.code, ServiceCode::Unauthorized);
        assert_eq!(*log.lock(), vec!["outer>in"], "inner layers never ran");
    }

    #[test]
    fn debug_shows_the_stack() {
        let pipeline = PipelineExecutor::new(vec![Arc::new(Reject)], echo_backend());
        let dbg = format!("{:?}", pipeline);
        assert!(dbg.contains("reject"), "{}", dbg);
    }
}
