//! Property tests pinning the planned restore pipeline to the serial
//! reference path.
//!
//! `DedupCluster::restore_file` now plans per-container batched reads, serves
//! repeats from the container read cache, and fans groups out across workers;
//! `DedupCluster::restore_file_reference` remains the serial per-chunk
//! arbiter.  These properties assert the two are **byte-identical** —
//!
//! * across the in-memory, simulated-disk and real-file backends,
//! * at `restore_parallelism` ∈ {1, 2, 4},
//! * after every individual `Rebalancer::step` of a node-removal drain and
//!   through multi-hop tombstone chains,
//! * and after a mark-and-sweep GC has compacted containers —
//!
//! and that the pipeline's report keeps the perf contract the batching exists
//! for: one assembly copy per logical byte (`bytes_copied == logical_bytes`,
//! the double-copy regression guard) and read amplification that drops below
//! 1.0 when the read cache serves a repeat restore.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const PARALLELISMS: [usize; 3] = [1, 2, 4];

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

/// Small super-chunks and containers so a few KB of payload spans several
/// containers (several pipeline groups), on the requested backend.
fn config_for(kind: BackendKind, root: Option<&std::path::Path>) -> SigmaConfig {
    let mut builder = SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .gc_liveness_threshold(1.0)
        .storage_backend(kind);
    if kind == BackendKind::File {
        builder = builder.durability(true);
        if let Some(root) = root {
            builder = builder.storage_root(root);
        }
    }
    builder.build().expect("valid test config")
}

/// Builds one stream's payload by concatenating blocks from a shared pool, so
/// streams overlap (cluster-wide duplicates, repeat container visits).
fn compose(blocks: &[Vec<u8>], picks: &[usize]) -> Vec<u8> {
    let mut data = Vec::new();
    for &pick in picks {
        data.extend_from_slice(&blocks[pick % blocks.len()]);
    }
    data
}

fn backup_all(cluster: &Arc<DedupCluster>, datas: &[Vec<u8>]) -> Vec<(u64, Vec<u8>)> {
    let mut files = Vec::new();
    for (stream, data) in datas.iter().enumerate() {
        let client = BackupClient::new(cluster.clone(), stream as u64);
        let report = client
            .backup_bytes(&format!("stream-{stream}"), data)
            .expect("payload backup cannot fail");
        files.push((report.file_id, data.clone()));
    }
    cluster.flush();
    files
}

/// Every file: reference output == expected bytes, and the pipelined restore
/// at every parallelism reproduces it exactly.
fn assert_pipeline_matches_reference(cluster: &DedupCluster, files: &[(u64, Vec<u8>)]) {
    for (file_id, expected) in files {
        let reference = cluster
            .restore_file_reference(*file_id)
            .unwrap_or_else(|e| panic!("file {file_id} failed the reference restore: {e}"));
        assert_eq!(&reference, expected, "reference corrupted file {file_id}");
        for workers in PARALLELISMS {
            let (piped, report) = cluster
                .restore_file_pipelined(*file_id, workers)
                .unwrap_or_else(|e| {
                    panic!("file {file_id} failed the pipelined restore (x{workers}): {e}")
                });
            assert_eq!(
                &piped, expected,
                "pipelined restore (x{workers}) corrupted file {file_id}"
            );
            assert_eq!(report.logical_bytes, expected.len() as u64);
            assert_eq!(report.chunks_read as usize, chunk_count(cluster, *file_id));
        }
    }
}

fn chunk_count(cluster: &DedupCluster, file_id: u64) -> usize {
    cluster
        .director()
        .recipe(file_id)
        .expect("recipe exists")
        .chunks
        .len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-identity on every backend at every parallelism, steady state.
    #[test]
    fn pipelined_restore_matches_reference_on_every_backend(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..768),
            1..5,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 1..24),
            1..4,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions.iter().map(|p| compose(&blocks, p)).collect();
        for kind in [BackendKind::Memory, BackendKind::SimDisk, BackendKind::File] {
            let root = (kind == BackendKind::File).then(|| scratch_dir("restore-eq"));
            let config = config_for(kind, root.as_deref());
            let cluster = Arc::new(DedupCluster::with_similarity_router(3, config));
            let files = backup_all(&cluster, &datas);
            assert_pipeline_matches_reference(&cluster, &files);
            if let Some(root) = root {
                let _ = std::fs::remove_dir_all(root);
            }
        }
    }

    /// Byte-identity after *each individual* container migration of a drain,
    /// and through the multi-hop tombstone chains repeated removals leave.
    #[test]
    fn pipelined_restore_matches_reference_mid_rebalance(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..768),
            1..4,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..6, 1..16),
            1..3,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions.iter().map(|p| compose(&blocks, p)).collect();
        let config = config_for(BackendKind::SimDisk, None);
        let cluster = Arc::new(DedupCluster::with_similarity_router(3, config));
        let files = backup_all(&cluster, &datas);

        let mut rebalancer = cluster.begin_remove_node(0).expect("3-node cluster");
        while rebalancer.step().expect("no faults in this test").is_some() {
            assert_pipeline_matches_reference(&cluster, &files);
        }
        rebalancer.run().expect("no faults in this test");
        assert_pipeline_matches_reference(&cluster, &files);

        // Second removal: chunks first written to node 0 may now sit behind a
        // 0 -> 1 -> 2 forwarding chain; the planner must follow every hop.
        cluster.remove_node(1).expect("2 nodes active");
        prop_assert_eq!(cluster.node_count(), 1);
        assert_pipeline_matches_reference(&cluster, &files);
    }

    /// Byte-identity after deletions and a mark-and-sweep GC have compacted
    /// containers (records relocated, read-cache entries invalidated).
    #[test]
    fn pipelined_restore_matches_reference_after_gc_compaction(
        blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 64..768),
            1..4,
        ),
        compositions in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 1..16),
            2..4,
        ),
    ) {
        let datas: Vec<Vec<u8>> = compositions.iter().map(|p| compose(&blocks, p)).collect();
        let config = config_for(BackendKind::SimDisk, None);
        let cluster = Arc::new(DedupCluster::with_similarity_router(2, config));
        let files = backup_all(&cluster, &datas);

        // Warm the read cache on the survivors, delete the first file, sweep.
        assert_pipeline_matches_reference(&cluster, &files);
        cluster.delete_file(files[0].0).expect("file exists");
        cluster.collect_garbage().expect("no faults in this test");
        assert_pipeline_matches_reference(&cluster, &files[1..]);
    }
}

/// The double-copy regression guard (deterministic, not property-based): on
/// the happy path every logical byte is written into the output exactly once,
/// even serially — the `Vec`-per-chunk + `extend_from_slice` second copy of
/// the reference path is gone.
#[test]
fn happy_path_copies_each_byte_exactly_once() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        2,
        config_for(BackendKind::SimDisk, None),
    ));
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
    let client = BackupClient::new(cluster.clone(), 0);
    let report = client.backup_bytes("copy-once.bin", &data).unwrap();
    cluster.flush();
    for workers in PARALLELISMS {
        let (restored, restore) = cluster
            .restore_file_pipelined(report.file_id, workers)
            .unwrap();
        assert_eq!(restored, data);
        assert_eq!(
            restore.bytes_copied,
            data.len() as u64,
            "restore (x{workers}) copied bytes more than once"
        );
        assert_eq!(restore.serial_fallback_chunks, 0, "no fallback expected");
    }
}

/// On a persistent backend a repeat restore is served by the container read
/// cache: hits are counted and read amplification drops below 1.
#[test]
fn repeat_restore_on_file_backend_hits_the_read_cache() {
    let root = scratch_dir("restore-cache");
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        2,
        config_for(BackendKind::File, Some(&root)),
    ));
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 239) as u8).collect();
    let client = BackupClient::new(cluster.clone(), 0);
    let report = client.backup_bytes("cached.bin", &data).unwrap();
    cluster.flush();

    let (cold, first) = cluster.restore_file_pipelined(report.file_id, 2).unwrap();
    assert_eq!(cold, data);
    assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
    assert!(
        first.backend_bytes_read > 0,
        "cold restore reads the medium"
    );

    let (warm, second) = cluster.restore_file_pipelined(report.file_id, 2).unwrap();
    assert_eq!(warm, data);
    assert!(second.cache_hits > 0, "repeat restore must hit the cache");
    assert!(
        second.backend_bytes_read < first.backend_bytes_read,
        "cache hits must reduce backend reads: {} !< {}",
        second.backend_bytes_read,
        first.backend_bytes_read
    );
    assert!(second.read_amplification() < 1.0);

    let _ = std::fs::remove_dir_all(root);
}
