//! Global admission control: bounded in-flight work with typed shedding.
//!
//! The fair scheduler below it *queues* admitted work; this layer bounds how
//! much work may be queued-or-running at all.  Beyond the bound the service
//! degrades by shedding — a typed [`SigmaError::Overloaded`] rejection (wire
//! code 503) carrying a deterministic retry-after hint — instead of letting
//! queues, memory and latency grow without limit.

use crate::middleware::{Middleware, Next, ServiceResult};
use crate::RequestEnvelope;
use parking_lot::Mutex;
use sigma_core::SigmaError;
use std::sync::atomic::{AtomicU64, Ordering};

/// In-flight totals, updated under one small lock so the two bounds are
/// checked and reserved atomically (two racing requests cannot both squeeze
/// into the last admission slot).
#[derive(Debug, Default)]
struct InFlight {
    requests: u64,
    payload_bytes: u64,
}

/// Bounds the service's total in-flight work — requests *and* payload bytes —
/// across all tenants, shedding the excess with
/// [`SigmaError::Overloaded`] (code
/// [`Unavailable`](sigma_core::ServiceCode::Unavailable), wire 503).
///
/// A request is "in flight" from the moment this layer admits it until its
/// response (or error) travels back out — which includes time spent parked in
/// the [`FairScheduler`](crate::middleware::FairScheduler) below.  Admission
/// is therefore the backpressure valve: the scheduler orders admitted work
/// fairly, this layer caps how much of it can exist at once.
///
/// The retry-after hint is deterministic — a pure function of the configured
/// base and how saturated the in-flight byte budget is when the request is
/// shed — so identical overload states hand every client identical hints and
/// tests can pin exact values.
///
/// # Example
///
/// ```
/// use sigma_service::middleware::AdmissionControl;
///
/// let admission = AdmissionControl::new(2, 1 << 20);
/// let _a = admission.try_admit(100).unwrap();
/// let _b = admission.try_admit(100).unwrap();
/// assert!(admission.try_admit(100).is_err(), "request slots exhausted");
/// drop(_a);
/// assert!(admission.try_admit(100).is_ok(), "slot freed on completion");
/// ```
#[derive(Debug)]
pub struct AdmissionControl {
    max_inflight_requests: u64,
    max_inflight_bytes: u64,
    retry_after_base_ms: u64,
    inflight: Mutex<InFlight>,
    shed: AtomicU64,
    admitted: AtomicU64,
}

impl AdmissionControl {
    /// Default retry-after base when the request arrives at an idle byte
    /// budget (milliseconds).
    pub const DEFAULT_RETRY_AFTER_MS: u64 = 10;

    /// Creates a layer admitting at most `max_inflight_requests` concurrent
    /// requests carrying at most `max_inflight_bytes` total payload bytes.
    /// Both bounds are clamped to at least 1 so a sole request on an idle
    /// service is always admissible (a zero bound would deadlock every
    /// caller, never protect anything).
    pub fn new(max_inflight_requests: u64, max_inflight_bytes: u64) -> Self {
        AdmissionControl {
            max_inflight_requests: max_inflight_requests.max(1),
            max_inflight_bytes: max_inflight_bytes.max(1),
            retry_after_base_ms: Self::DEFAULT_RETRY_AFTER_MS,
            inflight: Mutex::new(InFlight::default()),
            shed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Replaces the retry-after base (milliseconds).  0 is allowed: hints
    /// become 0 and clients retry at their own cadence.
    pub fn with_retry_after_ms(mut self, base_ms: u64) -> Self {
        self.retry_after_base_ms = base_ms;
        self
    }

    /// The request-count bound.
    pub fn max_inflight_requests(&self) -> u64 {
        self.max_inflight_requests
    }

    /// The payload-byte bound.
    pub fn max_inflight_bytes(&self) -> u64 {
        self.max_inflight_bytes
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Requests admitted so far.
    pub fn admitted_count(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Currently in-flight (requests, payload bytes).
    pub fn inflight(&self) -> (u64, u64) {
        let f = self.inflight.lock();
        (f.requests, f.payload_bytes)
    }

    /// Deterministic shed hint: the base scaled by byte-budget saturation.
    ///
    /// `base × (1 + (inflight + requested) / limit)` — an idle budget hints
    /// `≈ base`, a budget at its ceiling hints `≈ 2×base`, a single oversized
    /// request scales proportionally.  Same state, same hint, every time.
    fn retry_hint(&self, inflight_bytes: u64, requested: u64) -> u64 {
        let would_be = inflight_bytes.saturating_add(requested);
        self.retry_after_base_ms.saturating_add(
            self.retry_after_base_ms.saturating_mul(would_be) / self.max_inflight_bytes,
        )
    }

    /// Tries to reserve one request slot plus `payload_bytes` of the byte
    /// budget, returning a guard that releases both when dropped.
    ///
    /// A request larger than the whole byte budget is still admissible when
    /// it is alone in flight — the bound caps *aggregate* work, and a bound
    /// that could never admit some request would turn that request into a
    /// permanent failure instead of backpressure.
    ///
    /// # Errors
    ///
    /// Returns [`SigmaError::Overloaded`] when either bound would be
    /// exceeded.
    pub fn try_admit(&self, payload_bytes: u64) -> Result<AdmissionPermit<'_>, SigmaError> {
        let mut inflight = self.inflight.lock();
        let over_requests = inflight.requests >= self.max_inflight_requests;
        let over_bytes = inflight.payload_bytes.saturating_add(payload_bytes)
            > self.max_inflight_bytes
            && inflight.requests > 0;
        if over_requests || over_bytes {
            let hint = self.retry_hint(inflight.payload_bytes, payload_bytes);
            let snapshot = inflight.payload_bytes;
            drop(inflight);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SigmaError::Overloaded {
                inflight_bytes: snapshot,
                limit_bytes: self.max_inflight_bytes,
                retry_after_ms: hint,
            });
        }
        inflight.requests += 1;
        inflight.payload_bytes += payload_bytes;
        drop(inflight);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit {
            control: self,
            payload_bytes,
        })
    }
}

/// RAII receipt for one admitted request; releases its slot and bytes on
/// drop, on every exit path (response, error, panic unwinding through the
/// stack).
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    control: &'a AdmissionControl,
    payload_bytes: u64,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut inflight = self.control.inflight.lock();
        inflight.requests = inflight.requests.saturating_sub(1);
        inflight.payload_bytes = inflight.payload_bytes.saturating_sub(self.payload_bytes);
    }
}

impl Middleware for AdmissionControl {
    fn name(&self) -> &'static str {
        "admission"
    }

    fn handle(&self, req: RequestEnvelope, next: &dyn Next) -> ServiceResult {
        let _permit = self.try_admit(req.payload.len() as u64)?;
        next.run(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Operation, PipelineExecutor, ResponseEnvelope};
    use sigma_core::ServiceCode;
    use std::sync::mpsc;
    use std::sync::Arc;

    #[test]
    fn sheds_beyond_request_bound_with_unavailable() {
        let admission = AdmissionControl::new(1, 1 << 20);
        let held = admission.try_admit(10).unwrap();
        let err = admission.try_admit(10).unwrap_err();
        match err {
            SigmaError::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms >= AdmissionControl::DEFAULT_RETRY_AFTER_MS);
            }
            other => panic!("expected Overloaded, got {:?}", other),
        }
        assert_eq!(err.code(), ServiceCode::Unavailable);
        assert_eq!(admission.shed_count(), 1);
        drop(held);
        assert!(admission.try_admit(10).is_ok());
    }

    #[test]
    fn sheds_beyond_byte_bound_but_admits_oversize_when_alone() {
        let admission = AdmissionControl::new(10, 1000);
        // An oversized request on an idle service is admitted: the bound caps
        // aggregate work, not single-request size.
        let big = admission.try_admit(5000).unwrap();
        // But nothing else fits beside it.
        assert!(admission.try_admit(1).is_err());
        drop(big);
        let a = admission.try_admit(600).unwrap();
        assert!(admission.try_admit(600).is_err(), "would exceed 1000");
        let b = admission.try_admit(400).unwrap();
        assert_eq!(admission.inflight(), (2, 1000));
        drop(a);
        drop(b);
        assert_eq!(admission.inflight(), (0, 0));
    }

    #[test]
    fn retry_hint_is_deterministic_and_scales_with_saturation() {
        let admission = AdmissionControl::new(1, 1000).with_retry_after_ms(20);
        let held = admission.try_admit(1000).unwrap();
        let hint_of = |requested| match admission.try_admit(requested).unwrap_err() {
            SigmaError::Overloaded { retry_after_ms, .. } => retry_after_ms,
            other => panic!("expected Overloaded, got {:?}", other),
        };
        // base 20, inflight 1000/1000: 20 + 20*(1000+r)/1000.
        assert_eq!(hint_of(0), 40);
        assert_eq!(hint_of(0), 40, "same state, same hint");
        assert_eq!(hint_of(1000), 60, "deeper overload, larger hint");
        drop(held);
    }

    #[test]
    fn permits_release_on_error_paths_too() {
        let admission = Arc::new(AdmissionControl::new(1, 100));
        let p = PipelineExecutor::new(
            vec![admission.clone()],
            Arc::new(|_r: RequestEnvelope| -> ServiceResult { Err(SigmaError::FileNotFound(1)) }),
        );
        let resp = p.execute(RequestEnvelope::new(1, "t", Operation::Stats));
        assert_eq!(resp.code, ServiceCode::NotFound);
        assert_eq!(admission.inflight(), (0, 0), "slot released after error");
        assert_eq!(admission.admitted_count(), 1);
    }

    #[test]
    fn middleware_sheds_concurrent_excess_and_recovers() {
        let admission = Arc::new(AdmissionControl::new(2, 1 << 20));
        let (enter_tx, enter_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        let p = Arc::new(PipelineExecutor::new(
            vec![admission.clone()],
            Arc::new({
                let release_rx = release_rx.clone();
                move |r: RequestEnvelope| {
                    enter_tx.send(()).unwrap();
                    release_rx.lock().recv().unwrap();
                    Ok(ResponseEnvelope::ok(r.request_id))
                }
            }),
        ));
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let p = p.clone();
                std::thread::spawn(move || {
                    p.execute(RequestEnvelope::new(i, "t", Operation::Stats))
                })
            })
            .collect();
        enter_rx.recv().unwrap();
        enter_rx.recv().unwrap();
        // Both slots occupied: a third request is shed immediately.
        let shed = p.execute(RequestEnvelope::new(9, "t", Operation::Stats));
        assert_eq!(shed.code, ServiceCode::Unavailable);
        assert!(shed.message.contains("retry after"));
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for w in workers {
            assert!(w.join().unwrap().is_ok());
        }
        // Capacity restored.
        let (req_inflight, _) = admission.inflight();
        assert_eq!(req_inflight, 0);
    }
}
