//! Trace data model shared by all workload generators.

use serde::{Deserialize, Serialize};
use sigma_hashkit::{Digest, Fingerprint, Sha1};
use std::collections::HashMap;

/// Fingerprint and size of one chunk in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkSpec {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// The chunk's length in bytes.
    pub len: u32,
}

impl ChunkSpec {
    /// Creates a spec from an abstract chunk identity.
    ///
    /// The fingerprint is the SHA-1 of `(namespace, chunk_id)`, so equal identities
    /// always yield equal fingerprints (duplicates) and distinct identities collide
    /// with cryptographic improbability — exactly the behaviour of hashing real
    /// content without having to synthesise it.
    pub fn from_identity(namespace: u64, chunk_id: u64, len: u32) -> Self {
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&namespace.to_le_bytes());
        key[8..].copy_from_slice(&chunk_id.to_le_bytes());
        ChunkSpec {
            fingerprint: Sha1::fingerprint(&key),
            len,
        }
    }
}

/// The dataset a trace models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Linux kernel source snapshots (many small files, many versions).
    Linux,
    /// Virtual-machine full backups (few huge files, skewed sizes).
    Vm,
    /// FIU mail-server trace (no file boundaries, high redundancy).
    Mail,
    /// FIU web-server trace (no file boundaries, low redundancy).
    Web,
    /// A generic synthetic workload.
    Synthetic,
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DatasetKind::Linux => "Linux",
            DatasetKind::Vm => "VM",
            DatasetKind::Mail => "Mail",
            DatasetKind::Web => "Web",
            DatasetKind::Synthetic => "Synthetic",
        };
        f.write_str(s)
    }
}

/// Scale factor for preset workloads: how much logical data to generate.
///
/// The paper's datasets are tens to hundreds of gigabytes; these presets shrink them
/// to laptop-friendly sizes while preserving redundancy structure.  What matters for
/// the reproduced figures is the *shape* (ratios, scaling behaviour), not absolute
/// volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Roughly 16 MB logical — unit tests.
    Tiny,
    /// Roughly 128 MB logical — quick experiments.
    Small,
    /// Roughly 512 MB logical — the default for benches.
    Medium,
    /// Roughly 2 GB logical — large cluster sweeps.
    Large,
}

impl Scale {
    /// Approximate logical bytes this scale aims for.
    pub fn target_logical_bytes(&self) -> u64 {
        match self {
            Scale::Tiny => 16 << 20,
            Scale::Small => 128 << 20,
            Scale::Medium => 512 << 20,
            Scale::Large => 2 << 30,
        }
    }
}

/// One file in a trace generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileTrace {
    /// A dataset-unique file identifier (stable across generations so that the same
    /// logical file keeps its identity).
    pub file_id: u64,
    /// Human-readable file name.
    pub name: String,
    /// The file's chunks in order.
    pub chunks: Vec<ChunkSpec>,
}

impl FileTrace {
    /// Logical size of the file in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.len as u64).sum()
    }
}

/// One backup generation (all files backed up in one session).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GenerationTrace {
    /// Generation index (0 = first full backup).
    pub generation: usize,
    /// The files of this generation.
    pub files: Vec<FileTrace>,
}

impl GenerationTrace {
    /// Logical size of the generation in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.logical_bytes()).sum()
    }

    /// Number of chunks across all files.
    pub fn chunk_count(&self) -> u64 {
        self.files.iter().map(|f| f.chunks.len() as u64).sum()
    }
}

/// A complete multi-generation workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetTrace {
    /// Workload name for reports (e.g. `"Linux"`).
    pub name: String,
    /// Which paper dataset this models.
    pub kind: DatasetKind,
    /// Whether file boundaries are meaningful (the FIU traces have none, which is
    /// why Extreme Binning cannot run on them).
    pub has_file_boundaries: bool,
    /// The backup generations in chronological order.
    pub generations: Vec<GenerationTrace>,
}

impl DatasetTrace {
    /// Total logical bytes across all generations.
    pub fn logical_bytes(&self) -> u64 {
        self.generations.iter().map(|g| g.logical_bytes()).sum()
    }

    /// Total number of chunks across all generations.
    pub fn chunk_count(&self) -> u64 {
        self.generations.iter().map(|g| g.chunk_count()).sum()
    }

    /// Bytes that an *exact*, global (single-node) deduplication would store: the sum
    /// of sizes over distinct fingerprints.
    pub fn exact_unique_bytes(&self) -> u64 {
        let mut seen: HashMap<Fingerprint, u32> = HashMap::new();
        for g in &self.generations {
            for f in &g.files {
                for c in &f.chunks {
                    seen.entry(c.fingerprint).or_insert(c.len);
                }
            }
        }
        seen.values().map(|&len| len as u64).sum()
    }

    /// The exact (single-node) deduplication ratio of the trace.
    pub fn exact_dedup_ratio(&self) -> f64 {
        let unique = self.exact_unique_bytes();
        if unique == 0 {
            1.0
        } else {
            self.logical_bytes() as f64 / unique as f64
        }
    }

    /// Iterates over `(generation, file)` pairs in backup order.
    pub fn iter_files(&self) -> impl Iterator<Item = (usize, &FileTrace)> + '_ {
        self.generations
            .iter()
            .flat_map(|g| g.files.iter().map(move |f| (g.generation, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64, chunk_ids: &[u64]) -> FileTrace {
        FileTrace {
            file_id: id,
            name: format!("file-{}", id),
            chunks: chunk_ids
                .iter()
                .map(|&c| ChunkSpec::from_identity(1, c, 4096))
                .collect(),
        }
    }

    #[test]
    fn chunk_spec_identity_is_deterministic() {
        let a = ChunkSpec::from_identity(1, 42, 4096);
        let b = ChunkSpec::from_identity(1, 42, 4096);
        let c = ChunkSpec::from_identity(2, 42, 4096);
        assert_eq!(a, b);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn dataset_accounting() {
        let trace = DatasetTrace {
            name: "test".into(),
            kind: DatasetKind::Synthetic,
            has_file_boundaries: true,
            generations: vec![
                GenerationTrace {
                    generation: 0,
                    files: vec![file(1, &[1, 2, 3]), file(2, &[4, 5])],
                },
                GenerationTrace {
                    generation: 1,
                    files: vec![file(1, &[1, 2, 3]), file(2, &[4, 6])],
                },
            ],
        };
        assert_eq!(trace.chunk_count(), 10);
        assert_eq!(trace.logical_bytes(), 10 * 4096);
        // Unique ids: 1..6 => 6 chunks.
        assert_eq!(trace.exact_unique_bytes(), 6 * 4096);
        assert!((trace.exact_dedup_ratio() - 10.0 / 6.0).abs() < 1e-9);
        assert_eq!(trace.iter_files().count(), 4);
    }

    #[test]
    fn scale_targets_are_monotonic() {
        assert!(Scale::Tiny.target_logical_bytes() < Scale::Small.target_logical_bytes());
        assert!(Scale::Small.target_logical_bytes() < Scale::Medium.target_logical_bytes());
        assert!(Scale::Medium.target_logical_bytes() < Scale::Large.target_logical_bytes());
    }

    #[test]
    fn dataset_kind_display() {
        assert_eq!(DatasetKind::Linux.to_string(), "Linux");
        assert_eq!(DatasetKind::Mail.to_string(), "Mail");
    }
}
