//! # Σ-Dedupe service layer
//!
//! A typed, transport-agnostic front door for the dedup cluster: every
//! operation travels as a [`RequestEnvelope`], flows through a composable
//! [`Middleware`] pipeline (token auth → admission control → tenant quota →
//! rate limiting → fair scheduling → request logging), reaches the
//! [`BackupService`] backend that owns the
//! [`DedupCluster`](sigma_core::DedupCluster), and comes back as a
//! [`ResponseEnvelope`] whose [`ServiceCode`] derives from
//! [`SigmaError::code`](sigma_core::SigmaError::code) in exactly one place.
//!
//! ```text
//!            in-process            framed TCP
//!          ServiceStack::call    TcpClient ──frames──▶ TcpService
//!                   │                                       │
//!                   ▼                                       ▼
//!            RequestEnvelope ──▶ auth ─▶ admission ─▶ quota ─▶ rate-limit
//!                                             │ 503 shed           │
//!                                             ▼                    ▼
//!                                        (rejection)        fair-scheduler
//!                                                        DRR per-tenant queues
//!                                                                  │
//!                                                                  ▼
//!            ResponseEnvelope ◀─────────────── logging ◀── BackupService
//! ```
//!
//! The admission and fair-scheduler layers are the multi-tenant
//! heavy-traffic additions: admission bounds how much work may exist at once
//! (shedding the excess with a typed 503 and a deterministic retry-after
//! hint), the deficit-round-robin scheduler divides execution *fairly* among
//! tenants so one hot tenant cannot starve the rest, and the backend keeps
//! per-tenant accounting ([`sigma_metrics::TenantStatsReport`], surfaced
//! through the `Stats` operation).
//!
//! Two transports share the pipeline byte-for-byte: the in-process
//! [`ServiceStack::call`] used by tests and embedders, and the framed-TCP
//! pair [`TcpService`]/[`TcpClient`] whose wire format lives in [`codec`].
//! Stacks assemble either in code ([`ServiceBuilder`]) or from declarative
//! text ([`ServiceConfig`]).
//!
//! ## Quick start
//!
//! ```
//! use sigma_core::{DedupCluster, SigmaConfig};
//! use sigma_service::middleware::{RateLimit, TenantQuota, TokenAuth};
//! use sigma_service::{Operation, RequestEnvelope, ServiceBuilder};
//! use std::sync::Arc;
//!
//! let cluster = Arc::new(DedupCluster::with_similarity_router(2, SigmaConfig::default()));
//! let stack = ServiceBuilder::default_stack(
//!     TokenAuth::new().tenant("acme", "s3cret"),
//!     TenantQuota::new().budget("acme", 1 << 30),
//!     RateLimit::new(100, 50.0),
//! )
//! .build(cluster);
//!
//! let backup = stack.call(
//!     RequestEnvelope::new(1, "acme", Operation::Backup { file_name: "db".into(), generation: 0 })
//!         .with_payload(b"hello world".to_vec())
//!         .with_token("s3cret"),
//! );
//! assert!(backup.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod builder;
pub mod codec;
mod config;
mod envelope;
pub mod middleware;
mod pipeline;
mod tcp;

pub use backend::BackupService;
pub use builder::{ServiceBuilder, ServiceStack};
pub use config::{
    AdmissionConfig, FairSchedulerConfig, RateLimitConfig, ServiceConfig, StorageConfig,
};
pub use envelope::{Operation, RequestEnvelope, ResponseEnvelope, AUTH_TOKEN_KEY};
pub use middleware::{Middleware, Next, ServiceResult};
pub use pipeline::{Backend, PipelineExecutor};
pub use tcp::{TcpClient, TcpService};

// Re-exported so envelope consumers don't need a direct sigma-core
// dependency to inspect response codes.
pub use sigma_core::ServiceCode;
