//! Inter-node data routing.
//!
//! The routing scheme decides, for every super-chunk a backup client produces, which
//! deduplication node should receive it.  The paper's contribution is the
//! **similarity-based stateful routing** of Algorithm 1 ([`SimilarityRouter`]); the
//! baseline schemes it is compared against (stateless DHT routing, stateful
//! broadcast routing, Extreme Binning, chunk-level DHT) implement the same
//! [`DataRouter`] trait in the `sigma-baselines` crate.

use crate::{DedupNode, Handprint, SuperChunk};
use std::sync::Arc;

/// Everything a router may inspect when placing one super-chunk.
#[derive(Clone)]
pub struct RoutingContext<'a> {
    /// The super-chunk being routed (fingerprints and sizes; payloads optional).
    pub super_chunk: &'a SuperChunk,
    /// The super-chunk's handprint (already computed by the backup client).
    pub handprint: &'a Handprint,
    /// Identifier of the file this super-chunk belongs to, when file boundaries are
    /// known.  File-similarity schemes (Extreme Binning) require it.
    pub file_id: Option<u64>,
    /// The deduplication nodes; stateful schemes may query their state.
    pub nodes: &'a [Arc<DedupNode>],
}

impl std::fmt::Debug for RoutingContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingContext")
            .field("chunks", &self.super_chunk.chunk_count())
            .field("handprint", &self.handprint.size())
            .field("file_id", &self.file_id)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// The outcome of a routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingDecision {
    /// Index of the node that should receive the super-chunk.
    pub target: usize,
    /// Chunk-fingerprint lookup messages incurred *before* routing (e.g. handprint
    /// queries sent to candidate nodes).  The paper's Figure 7 overhead metric is
    /// the sum of these pre-routing lookups and the per-chunk lookups at the target.
    pub prerouting_lookup_messages: u64,
    /// Remote nodes contacted before routing (informational).
    pub nodes_contacted: u64,
}

impl RoutingDecision {
    /// A decision that contacted no remote node before routing (stateless schemes).
    pub fn stateless(target: usize) -> Self {
        RoutingDecision {
            target,
            prerouting_lookup_messages: 0,
            nodes_contacted: 0,
        }
    }
}

/// A data-routing scheme for cluster deduplication.
///
/// Implementations must be cheap to call once per super-chunk and thread-safe.
pub trait DataRouter: Send + Sync {
    /// Short scheme name used in reports (e.g. `"sigma"`, `"stateless"`).
    fn name(&self) -> String;

    /// Chooses the destination node for one super-chunk.
    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision;

    /// True when the scheme can only route with file-boundary information
    /// (file-similarity schemes such as Extreme Binning).
    fn requires_file_boundaries(&self) -> bool {
        false
    }
}

/// Σ-Dedupe's similarity-based stateful routing (Algorithm 1).
///
/// 1. The k representative fingerprints of the super-chunk select at most k
///    *candidate* nodes (`rfp mod N`).
/// 2. Each candidate is asked how many of the representative fingerprints it already
///    stores in its similarity index (its resemblance `r_i`); this costs
///    `handprint size` fingerprint lookups per candidate.
/// 3. Each resemblance is discounted by the candidate's *relative storage usage*
///    `w_i = usage_i / average usage` (capacity-aware load balancing; can be
///    disabled to measure its effect).
/// 4. The candidate with the maximal `r_i / w_i` wins; ties (including the common
///    all-zero-resemblance case for never-seen data) go to the least-loaded
///    candidate, which is what the discounting degenerates to when `r_i = 0`.
///
/// # Example
///
/// ```
/// use sigma_core::{DataRouter, DedupCluster, SigmaConfig, SimilarityRouter};
///
/// let router = SimilarityRouter::new(true);
/// assert_eq!(router.name(), "sigma");
/// // Routers are usually handed to a cluster rather than called directly:
/// let cluster = DedupCluster::new(8, SigmaConfig::default(), Box::new(router));
/// assert_eq!(cluster.node_count(), 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimilarityRouter {
    capacity_balancing: bool,
}

impl SimilarityRouter {
    /// Creates the router; `capacity_balancing` enables step 3 of Algorithm 1.
    pub fn new(capacity_balancing: bool) -> Self {
        SimilarityRouter { capacity_balancing }
    }

    /// Whether capacity-aware load balancing is enabled.
    pub fn capacity_balancing(&self) -> bool {
        self.capacity_balancing
    }
}

impl DataRouter for SimilarityRouter {
    fn name(&self) -> String {
        if self.capacity_balancing {
            "sigma".to_string()
        } else {
            "sigma-nobalance".to_string()
        }
    }

    fn route(&self, ctx: &RoutingContext<'_>) -> RoutingDecision {
        let node_count = ctx.nodes.len();
        assert!(node_count > 0, "cannot route in an empty cluster");
        if ctx.handprint.is_empty() {
            return RoutingDecision::stateless(0);
        }

        // Step 1: candidate selection.
        let candidates = ctx.handprint.candidate_nodes(node_count);

        // Step 2: resemblance query at each candidate: one message per candidate,
        // each carrying `handprint.size()` representative-fingerprint lookups.
        let resemblances: Vec<usize> = candidates
            .iter()
            .map(|&c| ctx.nodes[c].resemblance_count(ctx.handprint))
            .collect();
        let prerouting_lookup_messages = (candidates.len() * ctx.handprint.size()) as u64;

        // Step 3: discount by relative storage usage.
        let usages: Vec<f64> = candidates
            .iter()
            .map(|&c| ctx.nodes[c].storage_usage() as f64)
            .collect();
        let avg_usage = usages.iter().sum::<f64>() / usages.len() as f64;

        // Step 4: pick the best candidate.
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, (&r, &usage)) in resemblances.iter().zip(&usages).enumerate() {
            let score = if self.capacity_balancing && avg_usage > 0.0 {
                let w = (usage / avg_usage).max(f64::MIN_POSITIVE);
                r as f64 / w
            } else {
                r as f64
            };
            // Tie-break towards the less-loaded candidate.
            let better = score > best_score || (score == best_score && usage < usages[best]);
            if better {
                best = i;
                best_score = score;
            }
        }

        RoutingDecision {
            target: candidates[best],
            prerouting_lookup_messages,
            nodes_contacted: candidates.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChunkDescriptor, SigmaConfig};
    use sigma_hashkit::{Digest, Sha1};

    fn nodes(n: usize) -> Vec<Arc<DedupNode>> {
        let config = SigmaConfig::default();
        (0..n)
            .map(|i| Arc::new(DedupNode::new(i, &config)))
            .collect()
    }

    fn super_chunk(ids: std::ops::Range<u64>) -> SuperChunk {
        SuperChunk::from_descriptors(
            0,
            ids.map(|i| ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
                .collect(),
        )
    }

    fn ctx<'a>(
        sc: &'a SuperChunk,
        hp: &'a Handprint,
        nodes: &'a [Arc<DedupNode>],
    ) -> RoutingContext<'a> {
        RoutingContext {
            super_chunk: sc,
            handprint: hp,
            file_id: None,
            nodes,
        }
    }

    #[test]
    fn routes_to_candidate_set() {
        let nodes = nodes(16);
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let router = SimilarityRouter::new(true);
        let decision = router.route(&ctx(&sc, &hp, &nodes));
        let candidates = hp.candidate_nodes(16);
        assert!(candidates.contains(&decision.target));
        assert_eq!(
            decision.prerouting_lookup_messages,
            (candidates.len() * hp.size()) as u64
        );
        assert_eq!(decision.nodes_contacted, candidates.len() as u64);
    }

    #[test]
    fn similar_super_chunks_are_routed_to_the_same_node() {
        let nodes = nodes(32);
        let router = SimilarityRouter::new(true);
        let sc = super_chunk(0..256);
        let hp = sc.handprint(8);
        let first = router.route(&ctx(&sc, &hp, &nodes));
        // Process the super-chunk at the chosen node so its similarity index learns it.
        nodes[first.target]
            .process_super_chunk(0, &sc, &hp)
            .unwrap();

        // A near-identical super-chunk (7/8 of the same chunks) must follow it.
        let similar = super_chunk(32..288);
        let hp2 = similar.handprint(8);
        let second = router.route(&ctx(&similar, &hp2, &nodes));
        assert_eq!(second.target, first.target);
    }

    #[test]
    fn capacity_balancing_steers_new_data_to_empty_nodes() {
        let nodes = nodes(4);
        // Fill node candidates unevenly: put a lot of data on one node.
        let filler = super_chunk(10_000..10_256);
        let hp_filler = filler.handprint(8);
        let heavy = hp_filler.candidate_nodes(4)[0];
        for _ in 0..4 {
            nodes[heavy]
                .process_super_chunk(0, &filler, &hp_filler)
                .unwrap();
        }

        // Route brand-new (zero-resemblance) data repeatedly; with balancing the
        // heavy node must not receive a disproportionate share.
        let router = SimilarityRouter::new(true);
        let mut to_heavy = 0usize;
        let mut total = 0usize;
        for g in 0..64u64 {
            let sc = super_chunk(g * 1000 + 20_000..g * 1000 + 20_032);
            let hp = sc.handprint(8);
            let d = router.route(&ctx(&sc, &hp, &nodes));
            let candidates = hp.candidate_nodes(4);
            if candidates.contains(&heavy) && candidates.len() > 1 {
                total += 1;
                if d.target == heavy {
                    to_heavy += 1;
                }
            }
        }
        assert!(
            to_heavy * 2 < total,
            "heavily-loaded node won {}/{} contested decisions",
            to_heavy,
            total
        );
    }

    #[test]
    fn empty_handprint_defaults_to_node_zero() {
        let nodes = nodes(4);
        let sc = SuperChunk::from_descriptors(0, Vec::new());
        let hp = sc.handprint(8);
        let router = SimilarityRouter::new(true);
        assert_eq!(router.route(&ctx(&sc, &hp, &nodes)).target, 0);
    }

    #[test]
    fn single_node_cluster_always_routes_to_it() {
        let nodes = nodes(1);
        let router = SimilarityRouter::new(true);
        for g in 0..8u64 {
            let sc = super_chunk(g * 100..g * 100 + 32);
            let hp = sc.handprint(8);
            assert_eq!(router.route(&ctx(&sc, &hp, &nodes)).target, 0);
        }
    }

    #[test]
    fn names_distinguish_balancing_mode() {
        assert_eq!(SimilarityRouter::new(true).name(), "sigma");
        assert_eq!(SimilarityRouter::new(false).name(), "sigma-nobalance");
        assert!(SimilarityRouter::new(true).capacity_balancing());
        assert!(!SimilarityRouter::default().capacity_balancing());
        assert!(!SimilarityRouter::new(true).requires_file_boundaries());
    }
}
