//! Property tests for the backup lifecycle: generational expiry, garbage
//! collection, and GC crash recovery.
//!
//! Three properties:
//!
//! * **retention churn** — for random scenario shapes (generations, expiry
//!   depth, streams, mutation rates), expiring k of n generations leaves every
//!   surviving file restoring byte-identically, strictly shrinks physical bytes
//!   versus the no-GC baseline, and never sweeps below the bytes the mark phase
//!   proved live.
//! * **GC crash boundaries** — on a durable cluster, kill a node at *every*
//!   journal append the delete + mark-and-sweep window performs (recipe-delete
//!   audit records, GC drops and GC compactions alike, torn and clean);
//!   recovery plus one re-run of the sweep must converge to exactly the
//!   fault-free end state: same physical bytes, survivors intact, deleted data
//!   not resurrected, `verify_consistency` green on every node.
//! * **lifecycle edge cases** — unknown/double deletes and delete-then-restore
//!   fail with clean `SigmaError`s; GC on an empty cluster is a no-op.
//!
//! `SIGMA_FAULT_SEED` perturbs the workload seeds, so the CI seed matrix
//! explores different workloads with the same deterministic harness.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Extra seed from the environment so a CI matrix varies the workloads.
fn env_seed() -> u64 {
    std::env::var("SIGMA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property of the backup lifecycle: expiring k of n
    /// generations leaves every survivor byte-identical and never sweeps live
    /// bytes, at *any* liveness threshold; at the maximal-reclaim threshold
    /// (1.0 — compact any container with a single dead byte) physical bytes
    /// strictly decrease versus the no-GC baseline.
    #[test]
    fn retention_churn_reclaims_space_and_preserves_survivors(
        generations in 2usize..5,
        expire_frac in 1usize..4,
        streams in 1usize..4,
        mutation in 0.1f64..0.4,
        threshold in 0.0f64..1.0,
    ) {
        let expire = expire_frac.min(generations - 1);
        let config_at = |threshold: f64| RetentionConfig {
            streams,
            generations,
            expire,
            mutation_rate: mutation,
            seed: 0x9E7E ^ env_seed().wrapping_mul(0x2545_F491),
            sigma: SigmaConfig::builder()
                .super_chunk_size(64 * 1024)
                .container_capacity(128 * 1024)
                .gc_liveness_threshold(threshold)
                .build()
                .unwrap(),
            ..RetentionConfig::default()
        };

        // Invariants hold at any sampled threshold: survivors intact, sweeps
        // monotone, never below the proven-live bytes, exact accounting.
        let outcome = run_retention(&config_at(threshold));
        prop_assert!(
            outcome.all_restored(),
            "only {}/{} survivors restored byte-identically",
            outcome.restored_intact,
            outcome.survivors
        );
        prop_assert!(outcome.never_below_live(), "GC swept live bytes");
        prop_assert!(outcome.physical_after <= outcome.physical_before_expiry);
        prop_assert_eq!(
            outcome.physical_after,
            outcome.physical_before_expiry
                - outcome.rounds.iter().map(|r| r.gc.bytes_reclaimed).sum::<u64>(),
            "reclaimed bytes must account exactly for the shrinkage"
        );

        // The same workload under the maximal-reclaim threshold: expiry must
        // strictly shrink physical storage versus the no-GC run (which holds
        // `physical_before_expiry` forever).
        let aggressive = run_retention(&config_at(1.0));
        prop_assert!(
            aggressive.space_reclaimed(),
            "expiring {}/{} generations reclaimed nothing ({} -> {})",
            expire,
            generations,
            aggressive.physical_before_expiry,
            aggressive.physical_after
        );
        prop_assert!(aggressive.all_restored());
        prop_assert!(aggressive.never_below_live());
        // A lower threshold can only reclaim less, never more.
        prop_assert!(outcome.reclaimed_bytes <= aggressive.reclaimed_bytes);
    }
}

// ---- GC crash boundaries ----

fn durable_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(4 * 1024)
        .chunker(ChunkerParams::fixed(512))
        .container_capacity(8 * 1024)
        .cache_containers(4)
        .durability(true)
        // Maximal reclaim: every container with a dead byte is compacted, so
        // the crash sweep exercises GcCompact *and* GcDrop records on every run.
        .gc_liveness_threshold(1.0)
        .build()
        .expect("valid test config")
}

/// Ground truth per file: `(generation, payload)`.
type Expected = HashMap<u64, (u64, Vec<u8>)>;

/// Three generations from two streams on a durable 3-node cluster, flushed
/// (acknowledged) per wave; returns the cluster and per-file ground truth.
fn generational_cluster(case: u64) -> (Arc<DedupCluster>, Expected) {
    let cluster = Arc::new(DedupCluster::with_similarity_router(3, durable_config()));
    let datasets: Vec<Vec<(String, Vec<u8>)>> = (0..2u64)
        .map(|stream| {
            generational_payloads(GenerationalPayloadParams {
                seed: case
                    .wrapping_mul(0x9E37)
                    .wrapping_add(stream)
                    .wrapping_add(env_seed().wrapping_mul(0x2545_F491)),
                generations: 3,
                initial_size: 32 * 1024,
                mutation_rate: 0.5,
                growth_per_generation: 2 * 1024,
            })
        })
        .collect();
    let mut expected = HashMap::new();
    for generation in 0..3u64 {
        for (stream, dataset) in datasets.iter().enumerate() {
            let client = BackupClient::with_generation(cluster.clone(), stream as u64, generation);
            let (name, data) = &dataset[generation as usize];
            let report = client
                .backup_bytes(name, data)
                .expect("payload backup cannot fail");
            expected.insert(report.file_id, (generation, data.clone()));
        }
        cluster.try_flush().expect("no fault armed yet");
    }
    (cluster, expected)
}

fn assert_lifecycle_state(cluster: &DedupCluster, expected: &Expected) {
    for (file_id, (generation, data)) in expected {
        if *generation == 0 {
            assert!(
                matches!(
                    cluster.restore_file(*file_id),
                    Err(SigmaError::FileNotFound(_))
                ),
                "deleted file {} must stay deleted",
                file_id
            );
        } else {
            assert_eq!(
                &cluster
                    .restore_file(*file_id)
                    .unwrap_or_else(|e| panic!("file {} failed to restore: {}", file_id, e)),
                data,
                "file {} corrupted",
                file_id
            );
        }
    }
    for id in 0..3 {
        cluster
            .node_by_id(id)
            .unwrap()
            .verify_consistency()
            .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Killing a node at every journal append inside the delete + sweep window
    /// converges, after recovery and one re-run, to the fault-free end state:
    /// deleted data cannot resurrect, live chunks cannot be lost.
    #[test]
    fn gc_crashed_at_any_record_boundary_converges(case in 0u64..1000) {
        // Fault-free baseline: what the lifecycle must always end at, plus the
        // journal-sequence window the delete + sweep spans on each node.
        let (physical_expected, spans) = {
            let (cluster, expected) = generational_cluster(case);
            let before: Vec<u64> = (0..3)
                .map(|id| cluster.node_by_id(id).unwrap().journal().unwrap().next_seq())
                .collect();
            cluster.delete_generation(0).expect("generation exists");
            let report = cluster.collect_garbage().expect("no fault armed");
            prop_assert!(report.bytes_reclaimed > 0, "scenario must have garbage");
            assert_lifecycle_state(&cluster, &expected);
            let spans: Vec<(u64, u64)> = (0..3)
                .map(|id| {
                    let after = cluster.node_by_id(id).unwrap().journal().unwrap().next_seq();
                    (before[id], after)
                })
                .collect();
            (cluster.stats().physical_bytes, spans)
        };

        for (victim, &(start, end)) in spans.iter().enumerate() {
            for seq in start..end {
                let mode = if (seq + case) % 2 == 0 { CrashMode::Torn } else { CrashMode::Clean };
                let (cluster, expected) = generational_cluster(case);
                let journal = cluster.node_by_id(victim).unwrap().journal().unwrap().clone();
                journal.arm_crash_at_seq(seq, mode);

                // The deletion itself is director state and always succeeds;
                // the armed append fires either on a RecipeDelete audit record
                // (swallowed, by design) or on a GC record (surfaced).
                cluster.delete_generation(0).expect("generation exists");
                match cluster.collect_garbage() {
                    Ok(_) => {
                        prop_assert!(
                            !cluster.crashed_nodes().is_empty() || journal.next_seq() <= seq,
                            "armed seq {} on node {} never fired", seq, victim
                        );
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(
                                e,
                                SigmaError::Storage(StorageError::Crashed)
                            ),
                            "sweep failed for a non-crash reason: {}", e
                        );
                    }
                }
                if !cluster.crashed_nodes().is_empty() {
                    cluster.restart_node(victim).expect("recoverable");
                }
                // One re-run finishes whatever the crash interrupted; completed
                // drops/compactions are simply absent from the new mark.
                cluster.collect_garbage().expect("retried sweep cannot crash again");

                prop_assert_eq!(
                    cluster.stats().physical_bytes,
                    physical_expected,
                    "victim {} seq {} ({:?}): lifecycle did not converge",
                    victim, seq, mode
                );
                assert_lifecycle_state(&cluster, &expected);
            }
        }
    }
}

// ---- lifecycle edge cases (façade level) ----

#[test]
fn lifecycle_edge_cases_fail_cleanly() {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        2,
        SigmaConfig::builder()
            .super_chunk_size(64 * 1024)
            .container_capacity(64 * 1024)
            .build()
            .unwrap(),
    ));
    // Unknown IDs.
    assert!(matches!(
        cluster.delete_file(404),
        Err(SigmaError::FileNotFound(404))
    ));
    assert!(matches!(
        cluster.delete_backup(404),
        Err(SigmaError::BackupNotFound(404))
    ));
    // Empty-cluster GC is a no-op.
    let report = cluster.collect_garbage().unwrap();
    assert_eq!(report.bytes_reclaimed, 0);
    assert_eq!(report.containers_scanned, 0);

    let client = BackupClient::new(cluster.clone(), 0);
    let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let report = client.backup_bytes("once.bin", &data).unwrap();
    cluster.flush();
    assert_eq!(cluster.restore_file(report.file_id).unwrap(), data);

    assert!(cluster.delete_file(report.file_id).is_ok());
    // Double delete and delete-then-restore: clean errors, not panics.
    assert!(matches!(
        cluster.delete_file(report.file_id),
        Err(SigmaError::FileNotFound(_))
    ));
    assert!(matches!(
        cluster.restore_file(report.file_id),
        Err(SigmaError::FileNotFound(_))
    ));
    // The orphaned chunks are garbage now; a sweep leaves an empty cluster,
    // and sweeping the empty cluster again is a no-op.
    cluster.collect_garbage().unwrap();
    assert_eq!(cluster.stats().physical_bytes, 0);
    let report = cluster.collect_garbage().unwrap();
    assert_eq!(report.bytes_reclaimed, 0);
}

#[test]
fn deleting_one_generation_of_shared_history_keeps_the_rest_restorable() {
    // Generations share most chunks; expiring the oldest must reclaim only the
    // delta that no later generation references.
    let (cluster, expected) = generational_cluster(7);
    let before = cluster.stats().physical_bytes;
    cluster.delete_generation(0).unwrap();
    let report = cluster.collect_garbage().unwrap();
    assert!(report.bytes_reclaimed > 0);
    assert!(
        report.live_bytes > 0,
        "later generations keep shared chunks live"
    );
    assert!(cluster.stats().physical_bytes >= report.live_bytes);
    assert_eq!(
        cluster.stats().physical_bytes,
        before - report.bytes_reclaimed
    );
    assert_lifecycle_state(&cluster, &expected);
}
