//! Trace-driven cluster-deduplication simulation and the paper's experiments.
//!
//! The paper evaluates Σ-Dedupe with a real single-node prototype plus trace-driven
//! simulation of the cluster (Section 4).  This crate is the equivalent harness:
//!
//! * [`runner`] — drives a [`sigma_workloads::DatasetTrace`] through a
//!   [`sigma_core::DedupCluster`] with any routing scheme and collects the paper's
//!   metrics (cluster DR, storage skew, fingerprint-lookup messages, NEDR).
//! * [`experiments`] — one module per table/figure of the paper; each produces the
//!   rows/series of that figure and can render them as a text table.  The
//!   `sigma-bench` crate invokes these from `cargo bench`, and the examples print
//!   selected ones.
//! * [`churn`] — the elastic-membership scenario the paper's static clusters
//!   cannot express: backup, add a node (with rebalancing), back up more, remove
//!   a node, then restore everything and verify byte identity and physical-byte
//!   conservation.
//! * [`crash_churn`] — the same story under *unplanned* failure: a deterministic
//!   [`FaultPlan`](crash_churn::FaultPlan) kills a node at a sampled
//!   journal-record boundary (including mid-rebalance), the node is recovered
//!   from its write-ahead journal, and every acknowledged byte must restore
//!   identically afterwards.
//! * [`retention_churn`] — the backup lifecycle: N generations ingested, the
//!   oldest expired one by one (delete + mark-and-sweep garbage collection),
//!   survivors restore-verified, and physical bytes asserted to actually shrink
//!   while never dropping below the proven-live bytes.
//! * [`tenant_storm`] — the multi-tenant heavy-traffic scenario: a
//!   thousand-plus concurrent clients across a hundred tenants drive the full
//!   service stack (auth → admission → quota → rate-limit → fair-scheduler),
//!   a hot tenant tries to hog the cluster, a subset of tenants churns
//!   (delete + GC, optionally through a supervised node crash), and the run
//!   scores scheduler fairness (Jain index) plus byte-level tenant isolation.
//!
//! # Example
//!
//! ```
//! use sigma_simulation::runner::{run_cluster, SimulationConfig};
//! use sigma_core::SimilarityRouter;
//! use sigma_workloads::{presets, Scale};
//!
//! let dataset = presets::web_dataset(Scale::Tiny);
//! let summary = run_cluster(
//!     &dataset,
//!     Box::new(SimilarityRouter::new(true)),
//!     &SimulationConfig { node_count: 4, ..SimulationConfig::default() },
//! );
//! assert_eq!(summary.nodes, 4);
//! assert!(summary.dedup_ratio >= 1.0);
//! assert!(summary.nedr() <= 1.0 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod crash_churn;
pub mod experiments;
pub mod retention_churn;
pub mod runner;
pub mod tenant_storm;

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes this crate's CPU-heavy, timing-sensitive tests (the tenant
    /// storms and fig4b's striping comparison): each spawns enough worker
    /// threads to saturate the host, so two running at once oversubscribe the
    /// CPU and turn the other's throughput or fairness assertion into noise.
    pub(crate) fn cpu_heavy_test_turn() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
