//! Basic content-defined chunking (CDC) driven by a Rabin rolling hash.

use crate::Chunker;
use sigma_hashkit::{RabinHasher, RabinParams};

/// Rabin-based content-defined chunker with minimum/average/maximum chunk sizes.
///
/// A chunk boundary is declared at the first position `p >= min_size` where the
/// rolling hash `h` of the trailing window satisfies `h % divisor == divisor - 1`
/// (with `divisor` derived from the requested average size), or at `max_size` if no
/// such position is found.  Boundaries therefore move with the *content*, which is
/// what lets CDC re-detect duplicate regions after insertions or deletions — the
/// property the paper relies on for the Linux and VM datasets (Table 2 lists both
/// CDC and SC deduplication ratios).
///
/// # Example
///
/// ```
/// use sigma_chunking::{CdcChunker, Chunker};
///
/// let chunker = CdcChunker::new(1024, 4096, 16 * 1024);
/// let data: Vec<u8> = (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
/// let boundaries = chunker.chunk_boundaries(&data);
/// assert_eq!(*boundaries.last().unwrap(), data.len());
/// ```
#[derive(Debug, Clone)]
pub struct CdcChunker {
    min_size: usize,
    avg_size: usize,
    max_size: usize,
    divisor: u64,
    hasher_template: RabinHasher,
}

impl CdcChunker {
    /// Creates a CDC chunker with the given minimum, average and maximum chunk sizes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_size <= avg_size <= max_size`.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        Self::with_rabin_params(min_size, avg_size, max_size, RabinParams::default())
    }

    /// Creates a CDC chunker with explicit Rabin-hash parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_size <= avg_size <= max_size`.
    pub fn with_rabin_params(
        min_size: usize,
        avg_size: usize,
        max_size: usize,
        rabin: RabinParams,
    ) -> Self {
        assert!(min_size > 0, "minimum chunk size must be non-zero");
        assert!(
            min_size <= avg_size && avg_size <= max_size,
            "chunk size parameters must satisfy min <= avg <= max"
        );
        // Use the next power of two of the average size as the divisor so that the
        // boundary condition fires with probability ~1/avg per byte.
        let divisor = (avg_size.next_power_of_two() as u64).max(2);
        CdcChunker {
            min_size,
            avg_size,
            max_size,
            divisor,
            hasher_template: RabinHasher::new(rabin),
        }
    }

    /// Creates the paper's default CDC configuration: 4 KB average chunk size with a
    /// 1 KB minimum and 16 KB maximum.
    pub fn with_average_4k() -> Self {
        CdcChunker::new(1024, 4096, 16 * 1024)
    }

    /// Minimum chunk size in bytes.
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Maximum chunk size in bytes.
    pub fn max_size(&self) -> usize {
        self.max_size
    }
}

impl CdcChunker {
    /// Length of the next chunk starting at the beginning of `data`.
    ///
    /// The divisor is a power of two, so `h % divisor == divisor - 1` is tested as
    /// `h & mask == mask` with `mask = divisor - 1`; the [`RabinHasher::scan`]
    /// skip-ahead never even reads the bytes below `min_size - window`.  The
    /// per-call `hasher_template.clone()` of the old implementation (a ~9 KB copy
    /// of both lookup tables per `chunk_boundaries` call) is gone: `scan` borrows
    /// the template's tables and keeps its hash state in a register.
    #[inline]
    fn next_cut(&self, data: &[u8]) -> usize {
        let limit = data.len().min(self.max_size);
        let mask = self.divisor - 1;
        self.hasher_template
            .scan(&data[..limit], self.min_size, |_, h| h & mask == mask)
            .unwrap_or(limit)
    }
}

impl Chunker for CdcChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut boundaries = Vec::with_capacity(data.len() / self.avg_size + 1);
        let mut chunk_start = 0usize;
        while chunk_start < data.len() {
            let cut = self.next_cut(&data[chunk_start..]);
            chunk_start += cut;
            boundaries.push(chunk_start);
        }
        boundaries
    }

    fn first_boundary(&self, data: &[u8]) -> Option<usize> {
        if data.is_empty() {
            None
        } else {
            Some(self.next_cut(data))
        }
    }

    fn average_chunk_size(&self) -> usize {
        self.avg_size
    }

    fn name(&self) -> String {
        format!("cdc-{}", self.avg_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_boundaries;
    use proptest::prelude::*;

    /// Deterministic pseudo-random data (content-defined boundaries need entropy).
    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn boundaries_are_valid() {
        let data = random_data(200_000, 7);
        let c = CdcChunker::with_average_4k();
        let b = c.chunk_boundaries(&data);
        validate_boundaries(data.len(), &b).unwrap();
    }

    #[test]
    fn chunk_sizes_respect_min_and_max() {
        let data = random_data(300_000, 42);
        let c = CdcChunker::new(1024, 4096, 16 * 1024);
        let b = c.chunk_boundaries(&data);
        let mut start = 0usize;
        for (i, &end) in b.iter().enumerate() {
            let len = end - start;
            assert!(len <= c.max_size(), "chunk {} too large: {}", i, len);
            // The final chunk may be smaller than the minimum.
            if i + 1 != b.len() {
                assert!(len >= c.min_size(), "chunk {} too small: {}", i, len);
            }
            start = end;
        }
    }

    #[test]
    fn average_size_is_in_the_right_ballpark() {
        let data = random_data(2_000_000, 3);
        let c = CdcChunker::new(1024, 4096, 16 * 1024);
        let b = c.chunk_boundaries(&data);
        let avg = data.len() / b.len();
        // Expected average is avg_size + min_size-ish; allow a generous band.
        assert!(
            (2048..=12_288).contains(&avg),
            "unexpected average chunk size {}",
            avg
        );
    }

    #[test]
    fn boundaries_resynchronize_after_insertion() {
        // The defining CDC property: inserting bytes near the front only perturbs
        // boundaries locally; most chunks (as content) are unchanged.
        let original = random_data(500_000, 11);
        let mut shifted = original.clone();
        // Insert 100 bytes at offset 1000.
        let insert = random_data(100, 99);
        shifted.splice(1000..1000, insert.iter().copied());

        let c = CdcChunker::new(1024, 4096, 16 * 1024);
        let chunks_a: std::collections::HashSet<Vec<u8>> = c
            .split(&original)
            .into_iter()
            .map(|ch| ch.into_data())
            .collect();
        let chunks_b: Vec<Vec<u8>> = c
            .split(&shifted)
            .into_iter()
            .map(|ch| ch.into_data())
            .collect();

        let shared = chunks_b.iter().filter(|ch| chunks_a.contains(*ch)).count();
        let ratio = shared as f64 / chunks_b.len() as f64;
        assert!(
            ratio > 0.9,
            "expected >90% of chunks to survive an insertion, got {:.2}",
            ratio
        );
    }

    #[test]
    fn static_like_behavior_on_zero_entropy_data() {
        // All-zero data never satisfies the divisor condition (hash is constant), so
        // every chunk is exactly max_size.
        let data = vec![0u8; 100_000];
        let c = CdcChunker::new(1024, 4096, 16 * 1024);
        let b = c.chunk_boundaries(&data);
        let mut start = 0usize;
        for &end in &b[..b.len() - 1] {
            let len = end - start;
            assert!(len == c.max_size() || len == c.min_size());
            start = end;
        }
    }

    #[test]
    #[should_panic(expected = "min <= avg <= max")]
    fn bad_parameters_panic() {
        CdcChunker::new(4096, 1024, 16 * 1024);
    }

    #[test]
    fn boundaries_identical_to_scalar_reference() {
        // Regression for the scan/skip-ahead rewrite (and the removal of the
        // per-call hasher_template.clone()): boundaries must be byte-identical
        // to the original per-byte implementation, including configurations
        // where min_size is below the Rabin window (partial-window testing).
        for (min, avg, max) in [
            (1024, 4096, 16 * 1024),
            (256, 1024, 4096),
            (5, 10, 20),
            (48, 64, 128),
            (2048, 2048, 2048),
        ] {
            let optimized = CdcChunker::new(min, avg, max);
            let reference = crate::reference::ReferenceCdcChunker::new(min, avg, max);
            for seed in [3u64, 7, 11] {
                let data = random_data(150_000, seed);
                assert_eq!(
                    optimized.chunk_boundaries(&data),
                    reference.chunk_boundaries(&data),
                    "cdc({},{},{}) seed {}",
                    min,
                    avg,
                    max,
                    seed
                );
            }
        }
    }

    #[test]
    fn first_boundary_matches_full_scan() {
        let data = random_data(100_000, 19);
        let c = CdcChunker::with_average_4k();
        assert_eq!(
            c.first_boundary(&data),
            c.chunk_boundaries(&data).first().copied()
        );
        assert_eq!(c.first_boundary(&[]), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_boundaries_valid(seed in any::<u64>(), len in 0usize..60_000) {
            let data = random_data(len, seed);
            let c = CdcChunker::new(256, 1024, 4096);
            let b = c.chunk_boundaries(&data);
            prop_assert!(validate_boundaries(len, &b).is_ok());
        }

        #[test]
        fn prop_chunking_is_deterministic(seed in any::<u64>()) {
            let data = random_data(20_000, seed);
            let c = CdcChunker::new(256, 1024, 4096);
            prop_assert_eq!(c.chunk_boundaries(&data), c.chunk_boundaries(&data));
        }
    }
}
