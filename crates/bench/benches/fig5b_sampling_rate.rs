//! Figure 5(b): deduplication ratio vs. handprint sampling rate and super-chunk size.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_core::{DedupNode, SigmaConfig, SuperChunk};
use sigma_hashkit::{Digest, Sha1};
use sigma_simulation::experiments::fig5b;
use sigma_workloads::Scale;

fn report() {
    sigma_bench::banner(
        "Figure 5(b)",
        "similarity-index-only deduplication ratio vs. handprint sampling rate",
    );
    let rows = fig5b::run(&fig5b::Fig5bParams {
        scale: Scale::Small,
        super_chunk_sizes: vec![512 << 10, 1 << 20, 2 << 20, 4 << 20],
        sampling_denominators: vec![8, 16, 32, 64, 128, 256, 512],
    });
    sigma_bench::print_table(
        "deduplication ratio normalized to exact deduplication (Linux-like workload)",
        &fig5b::render(&rows),
    );
}

fn bench_resemblance_query(c: &mut Criterion) {
    report();
    let config = SigmaConfig::default();
    let node = DedupNode::new(0, &config);
    let sc = SuperChunk::from_descriptors(
        0,
        (0..256u64)
            .map(|i| sigma_core::ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096))
            .collect(),
    );
    let handprint = sc.handprint(8);
    node.process_super_chunk(0, &sc, &handprint).unwrap();
    c.bench_function("fig5b/resemblance_query_handprint_8", |b| {
        b.iter(|| node.resemblance_count(&handprint))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_resemblance_query
}
criterion_main!(benches);
