//! Runtime-selectable chunker configuration.

use crate::{CdcChunker, Chunker, GearCdcChunker, StaticChunker, TttdChunker, TttdParams};
use serde::{Deserialize, Serialize};

/// The chunking family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChunkingMethod {
    /// Static (fixed-size) chunking.
    Static,
    /// Basic content-defined chunking with a Rabin rolling hash.
    Cdc,
    /// Content-defined chunking with the cheaper gear rolling hash.
    GearCdc,
    /// Two-Threshold Two-Divisor content-defined chunking.
    Tttd,
}

impl std::fmt::Display for ChunkingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChunkingMethod::Static => "SC",
            ChunkingMethod::Cdc => "CDC",
            ChunkingMethod::GearCdc => "GearCDC",
            ChunkingMethod::Tttd => "TTTD",
        };
        f.write_str(s)
    }
}

/// A serializable description of a chunker, buildable into a boxed [`Chunker`].
///
/// This is the type higher layers (backup clients, experiments, benches) store in
/// their configuration, because trait objects cannot be serialized or compared.
///
/// # Example
///
/// ```
/// use sigma_chunking::{Chunker, ChunkerParams, ChunkingMethod};
///
/// let params = ChunkerParams::cdc(1024, 4096, 16 * 1024);
/// assert_eq!(params.method(), ChunkingMethod::Cdc);
/// let chunker = params.build();
/// assert_eq!(chunker.average_chunk_size(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkerParams {
    /// Fixed-size chunking with the given chunk size.
    Fixed {
        /// Chunk size in bytes.
        chunk_size: usize,
    },
    /// Basic CDC with minimum / average / maximum chunk sizes.
    Cdc {
        /// Minimum chunk size in bytes.
        min_size: usize,
        /// Target average chunk size in bytes.
        avg_size: usize,
        /// Maximum chunk size in bytes.
        max_size: usize,
    },
    /// Gear-hash CDC with minimum / average / maximum chunk sizes.
    GearCdc {
        /// Minimum chunk size in bytes.
        min_size: usize,
        /// Target average chunk size in bytes.
        avg_size: usize,
        /// Maximum chunk size in bytes.
        max_size: usize,
    },
    /// TTTD chunking.
    Tttd(TttdParams),
}

impl ChunkerParams {
    /// Fixed-size chunking with `chunk_size` bytes per chunk.
    pub fn fixed(chunk_size: usize) -> Self {
        ChunkerParams::Fixed { chunk_size }
    }

    /// Basic CDC chunking.
    pub fn cdc(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        ChunkerParams::Cdc {
            min_size,
            avg_size,
            max_size,
        }
    }

    /// CDC with an average chunk size of `avg` and conventional min/max of
    /// `avg / 4` and `avg * 4`.
    pub fn cdc_with_average(avg: usize) -> Self {
        ChunkerParams::Cdc {
            min_size: (avg / 4).max(1),
            avg_size: avg,
            max_size: avg * 4,
        }
    }

    /// Gear-hash CDC chunking.
    pub fn gear_cdc(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        ChunkerParams::GearCdc {
            min_size,
            avg_size,
            max_size,
        }
    }

    /// Gear CDC with an average chunk size of `avg` and conventional min/max of
    /// `avg / 4` and `avg * 4`.
    pub fn gear_with_average(avg: usize) -> Self {
        ChunkerParams::GearCdc {
            min_size: (avg / 4).max(1),
            avg_size: avg,
            max_size: avg * 4,
        }
    }

    /// TTTD chunking with the paper's default thresholds (1K/2K/4K/32K).
    pub fn tttd_default() -> Self {
        ChunkerParams::Tttd(TttdParams::default())
    }

    /// The paper's default for cluster experiments: static chunking with 4 KB chunks.
    pub fn paper_default() -> Self {
        ChunkerParams::fixed(4096)
    }

    /// Which chunking family this configuration selects.
    pub fn method(&self) -> ChunkingMethod {
        match self {
            ChunkerParams::Fixed { .. } => ChunkingMethod::Static,
            ChunkerParams::Cdc { .. } => ChunkingMethod::Cdc,
            ChunkerParams::GearCdc { .. } => ChunkingMethod::GearCdc,
            ChunkerParams::Tttd(_) => ChunkingMethod::Tttd,
        }
    }

    /// Target average chunk size in bytes.
    pub fn average_chunk_size(&self) -> usize {
        match self {
            ChunkerParams::Fixed { chunk_size } => *chunk_size,
            ChunkerParams::Cdc { avg_size, .. } => *avg_size,
            ChunkerParams::GearCdc { avg_size, .. } => *avg_size,
            ChunkerParams::Tttd(p) => p.major_mean,
        }
    }

    /// Builds the configured chunker.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are internally inconsistent (e.g. zero chunk size,
    /// `min > max`); use [`validate`](ChunkerParams::validate) first to check.
    pub fn build(&self) -> Box<dyn Chunker> {
        match *self {
            ChunkerParams::Fixed { chunk_size } => Box::new(StaticChunker::new(chunk_size)),
            ChunkerParams::Cdc {
                min_size,
                avg_size,
                max_size,
            } => Box::new(CdcChunker::new(min_size, avg_size, max_size)),
            ChunkerParams::GearCdc {
                min_size,
                avg_size,
                max_size,
            } => Box::new(GearCdcChunker::new(min_size, avg_size, max_size)),
            ChunkerParams::Tttd(p) => Box::new(TttdChunker::new(p)),
        }
    }

    /// Checks the parameters without building a chunker: every size must be
    /// non-zero and CDC sizes must satisfy `min ≤ avg ≤ max`.
    ///
    /// Called by `SigmaConfig::build`, so an inconsistent chunker is rejected at
    /// configuration time with a field-naming error (mirroring
    /// `DiskParams::validate`) rather than panicking mid-backup.
    ///
    /// # Errors
    ///
    /// Returns a description naming the offending field and value.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ChunkerParams::Fixed { chunk_size } => {
                if *chunk_size == 0 {
                    Err("chunker chunk_size = 0 must be non-zero".to_string())
                } else {
                    Ok(())
                }
            }
            ChunkerParams::Cdc {
                min_size,
                avg_size,
                max_size,
            }
            | ChunkerParams::GearCdc {
                min_size,
                avg_size,
                max_size,
            } => {
                for (field, value) in [
                    ("min_size", *min_size),
                    ("avg_size", *avg_size),
                    ("max_size", *max_size),
                ] {
                    if value == 0 {
                        return Err(format!("chunker {} = 0 must be non-zero", field));
                    }
                }
                if min_size > avg_size {
                    return Err(format!(
                        "chunker min_size = {} exceeds avg_size = {} (need min ≤ avg ≤ max)",
                        min_size, avg_size
                    ));
                }
                if avg_size > max_size {
                    return Err(format!(
                        "chunker avg_size = {} exceeds max_size = {} (need min ≤ avg ≤ max)",
                        avg_size, max_size
                    ));
                }
                Ok(())
            }
            ChunkerParams::Tttd(p) => p.validate(),
        }
    }
}

impl Default for ChunkerParams {
    fn default() -> Self {
        ChunkerParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_4k_static() {
        let p = ChunkerParams::default();
        assert_eq!(p.method(), ChunkingMethod::Static);
        assert_eq!(p.average_chunk_size(), 4096);
    }

    #[test]
    fn cdc_with_average_derives_min_max() {
        let p = ChunkerParams::cdc_with_average(8192);
        match p {
            ChunkerParams::Cdc {
                min_size,
                avg_size,
                max_size,
            } => {
                assert_eq!(min_size, 2048);
                assert_eq!(avg_size, 8192);
                assert_eq!(max_size, 32768);
            }
            _ => panic!("expected CDC"),
        }
    }

    #[test]
    fn validate_catches_errors() {
        assert!(ChunkerParams::fixed(0).validate().is_err());
        assert!(ChunkerParams::cdc(0, 10, 20).validate().is_err());
        assert!(ChunkerParams::cdc(30, 10, 20).validate().is_err());
        assert!(ChunkerParams::cdc(5, 10, 20).validate().is_ok());
        assert!(ChunkerParams::tttd_default().validate().is_ok());
    }

    #[test]
    fn validate_names_the_offending_field_and_value() {
        let err = ChunkerParams::fixed(0).validate().unwrap_err();
        assert!(err.contains("chunk_size"), "got: {}", err);
        for (params, field) in [
            (ChunkerParams::cdc(0, 10, 20), "min_size"),
            (ChunkerParams::cdc(1, 0, 20), "avg_size"),
            (ChunkerParams::cdc(1, 10, 0), "max_size"),
            (ChunkerParams::cdc(11, 10, 20), "min_size = 11"),
            (ChunkerParams::cdc(1, 21, 20), "avg_size = 21"),
        ] {
            let err = params.validate().unwrap_err();
            assert!(err.contains(field), "expected {:?} in: {}", field, err);
        }
    }

    #[test]
    fn validate_accepts_ordering_boundaries() {
        // min == avg == max is the degenerate-but-legal boundary.
        assert!(ChunkerParams::cdc(10, 10, 10).validate().is_ok());
        assert!(ChunkerParams::cdc(10, 10, 20).validate().is_ok());
        assert!(ChunkerParams::cdc(5, 20, 20).validate().is_ok());
        assert!(ChunkerParams::cdc(1, 1, usize::MAX).validate().is_ok());
        // One past each boundary fails.
        assert!(ChunkerParams::cdc(11, 10, 10).validate().is_err());
        assert!(ChunkerParams::cdc(10, 11, 10).validate().is_err());
    }

    #[test]
    fn build_produces_matching_chunkers() {
        assert_eq!(ChunkerParams::fixed(2048).build().name(), "sc-2048");
        assert_eq!(
            ChunkerParams::cdc(512, 2048, 8192).build().name(),
            "cdc-2048"
        );
        assert!(ChunkerParams::tttd_default()
            .build()
            .name()
            .starts_with("tttd-"));
    }

    #[test]
    fn method_display() {
        assert_eq!(ChunkingMethod::Static.to_string(), "SC");
        assert_eq!(ChunkingMethod::Cdc.to_string(), "CDC");
        assert_eq!(ChunkingMethod::GearCdc.to_string(), "GearCDC");
        assert_eq!(ChunkingMethod::Tttd.to_string(), "TTTD");
    }

    #[test]
    fn gear_cdc_params_build_and_validate() {
        let p = ChunkerParams::gear_with_average(4096);
        assert_eq!(p.method(), ChunkingMethod::GearCdc);
        assert_eq!(p.average_chunk_size(), 4096);
        assert!(p.validate().is_ok());
        assert_eq!(p.build().name(), "gear-4096");
        assert!(ChunkerParams::gear_cdc(0, 10, 20).validate().is_err());
        assert!(ChunkerParams::gear_cdc(30, 10, 20).validate().is_err());
        assert!(ChunkerParams::gear_cdc(5, 10, 5).validate().is_err());
    }

    #[test]
    fn built_chunkers_report_requested_average() {
        for avg in [1024usize, 4096, 8192] {
            assert_eq!(
                ChunkerParams::cdc_with_average(avg)
                    .build()
                    .average_chunk_size(),
                avg
            );
            assert_eq!(ChunkerParams::fixed(avg).build().average_chunk_size(), avg);
        }
    }
}
