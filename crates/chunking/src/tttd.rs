//! Two-Threshold Two-Divisor (TTTD) content-defined chunking.
//!
//! TTTD (Eshghi & Tang, HP Labs TR 2005) improves on basic CDC by adding a *backup
//! divisor*: while scanning for a boundary with the main divisor, every position that
//! satisfies the (easier) backup-divisor condition is remembered; if the maximum
//! chunk size is reached without a main-divisor match, the most recent backup match
//! is used instead of cutting blindly at the maximum.  This tightens the chunk-size
//! distribution and improves deduplication.
//!
//! The paper uses TTTD with thresholds 1 KB / 2 KB / 4 KB / 32 KB (minimum, minor
//! mean, major mean, maximum) for the super-chunk resemblance study of Section 2.2.

use crate::Chunker;
use serde::{Deserialize, Serialize};
use sigma_hashkit::{RabinHasher, RabinParams};

/// Parameters of the TTTD chunker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TttdParams {
    /// Minimum chunk size (boundaries are never declared earlier).
    pub min_size: usize,
    /// Minor mean: the expected spacing of the *backup* divisor condition.
    pub minor_mean: usize,
    /// Major mean: the expected spacing of the *main* divisor condition.
    pub major_mean: usize,
    /// Maximum chunk size (a boundary is forced at this length).
    pub max_size: usize,
}

impl Default for TttdParams {
    /// The paper's TTTD configuration: 1 KB / 2 KB / 4 KB / 32 KB.
    fn default() -> Self {
        TttdParams {
            min_size: 1024,
            minor_mean: 2048,
            major_mean: 4096,
            max_size: 32 * 1024,
        }
    }
}

impl TttdParams {
    /// Validates the parameter ordering.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_size == 0 {
            return Err("minimum chunk size must be non-zero".to_string());
        }
        if !(self.min_size <= self.minor_mean
            && self.minor_mean <= self.major_mean
            && self.major_mean <= self.max_size)
        {
            return Err(format!(
                "TTTD thresholds must satisfy min <= minor <= major <= max, got {}/{}/{}/{}",
                self.min_size, self.minor_mean, self.major_mean, self.max_size
            ));
        }
        Ok(())
    }
}

/// The TTTD chunker.
///
/// # Example
///
/// ```
/// use sigma_chunking::{Chunker, TttdChunker};
///
/// let chunker = TttdChunker::default();
/// let data: Vec<u8> = (0..200_000u32).map(|i| (i.wrapping_mul(0x9E3779B9) >> 16) as u8).collect();
/// let chunks = chunker.split(&data);
/// assert!(chunks.iter().all(|c| c.len() <= 32 * 1024));
/// ```
#[derive(Debug, Clone)]
pub struct TttdChunker {
    params: TttdParams,
    main_divisor: u64,
    backup_divisor: u64,
    hasher_template: RabinHasher,
}

impl TttdChunker {
    /// Creates a TTTD chunker from the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid (see [`TttdParams::validate`]).
    pub fn new(params: TttdParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid TTTD parameters: {}", e);
        }
        let main_divisor = (params.major_mean.next_power_of_two() as u64).max(2);
        let backup_divisor = (params.minor_mean.next_power_of_two() as u64).max(2);
        TttdChunker {
            params,
            main_divisor,
            backup_divisor,
            hasher_template: RabinHasher::new(RabinParams::default()),
        }
    }

    /// The chunker's parameters.
    pub fn params(&self) -> TttdParams {
        self.params
    }
}

impl Default for TttdChunker {
    fn default() -> Self {
        TttdChunker::new(TttdParams::default())
    }
}

impl TttdChunker {
    /// Length of the next chunk starting at the beginning of `data`.
    ///
    /// One [`RabinHasher::scan`] pass (skip-ahead below `min_size`, no template
    /// clone) tests both divisor conditions per position: a main-divisor match
    /// cuts immediately; backup-divisor matches are remembered so that a chunk
    /// reaching `max_size` without a main match falls back to the most recent
    /// backup boundary instead of cutting blindly.  Both divisors are powers of
    /// two, so the modulo conditions reduce to mask tests.
    #[inline]
    fn next_cut(&self, data: &[u8]) -> usize {
        let p = self.params;
        let limit = data.len().min(p.max_size);
        let main_mask = self.main_divisor - 1;
        let backup_mask = self.backup_divisor - 1;
        let mut backup_boundary: Option<usize> = None;
        let found = self
            .hasher_template
            .scan(&data[..limit], p.min_size, |pos, h| {
                if h & main_mask == main_mask {
                    return true;
                }
                if h & backup_mask == backup_mask {
                    backup_boundary = Some(pos);
                }
                false
            });
        match found {
            Some(cut) => cut,
            // Data ran out before max_size: the final (possibly short) chunk.
            None if limit < p.max_size => limit,
            // Forced cut at max_size: prefer the latest backup boundary.
            None => backup_boundary.unwrap_or(limit),
        }
    }
}

impl Chunker for TttdChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let p = self.params;
        let mut boundaries = Vec::with_capacity(data.len() / p.major_mean + 1);
        let mut chunk_start = 0usize;
        while chunk_start < data.len() {
            let cut = self.next_cut(&data[chunk_start..]);
            chunk_start += cut;
            boundaries.push(chunk_start);
        }
        boundaries
    }

    fn first_boundary(&self, data: &[u8]) -> Option<usize> {
        if data.is_empty() {
            None
        } else {
            Some(self.next_cut(data))
        }
    }

    fn average_chunk_size(&self) -> usize {
        self.params.major_mean
    }

    fn name(&self) -> String {
        format!(
            "tttd-{}-{}-{}-{}",
            self.params.min_size,
            self.params.minor_mean,
            self.params.major_mean,
            self.params.max_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_boundaries;
    use proptest::prelude::*;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn default_params_match_the_paper() {
        let p = TttdParams::default();
        assert_eq!(
            (p.min_size, p.minor_mean, p.major_mean, p.max_size),
            (1024, 2048, 4096, 32 * 1024)
        );
    }

    #[test]
    fn params_validation() {
        assert!(TttdParams::default().validate().is_ok());
        assert!(TttdParams {
            min_size: 0,
            ..TttdParams::default()
        }
        .validate()
        .is_err());
        assert!(TttdParams {
            min_size: 8192,
            ..TttdParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn boundaries_are_valid() {
        let data = random_data(400_000, 5);
        let c = TttdChunker::default();
        let b = c.chunk_boundaries(&data);
        validate_boundaries(data.len(), &b).unwrap();
    }

    #[test]
    fn chunk_sizes_within_limits() {
        let data = random_data(400_000, 13);
        let c = TttdChunker::default();
        let b = c.chunk_boundaries(&data);
        let p = c.params();
        let mut start = 0usize;
        for (i, &end) in b.iter().enumerate() {
            let len = end - start;
            assert!(len <= p.max_size, "chunk {} too large: {}", i, len);
            if i + 1 != b.len() {
                assert!(len >= p.min_size, "chunk {} too small: {}", i, len);
            }
            start = end;
        }
    }

    #[test]
    fn tighter_distribution_than_plain_cdc() {
        // With a backup divisor, far fewer chunks should be forced cuts at max_size
        // than with plain CDC configured with the same (min, major, max).
        let data = random_data(2_000_000, 21);
        let tttd = TttdChunker::default();
        let p = tttd.params();
        let cdc = crate::CdcChunker::new(p.min_size, p.major_mean, p.max_size);

        let count_max = |boundaries: &[usize]| {
            let mut start = 0usize;
            let mut n = 0usize;
            for &end in boundaries {
                if end - start == p.max_size {
                    n += 1;
                }
                start = end;
            }
            n
        };
        let tttd_b = tttd.chunk_boundaries(&data);
        let cdc_b = cdc.chunk_boundaries(&data);
        assert!(
            count_max(&tttd_b) <= count_max(&cdc_b),
            "TTTD should not force more max-size cuts than plain CDC"
        );
    }

    #[test]
    fn boundaries_identical_to_scalar_reference() {
        // Regression for the scan rewrite: both divisor conditions, the backup
        // fallback on forced max-size cuts, and the post-cut rescan must all
        // match the original per-byte implementation bit for bit.
        for params in [
            TttdParams::default(),
            TttdParams {
                min_size: 256,
                minor_mean: 512,
                major_mean: 1024,
                max_size: 8192,
            },
            TttdParams {
                min_size: 16,
                minor_mean: 32,
                major_mean: 64,
                max_size: 256,
            },
        ] {
            let optimized = TttdChunker::new(params);
            let reference = crate::reference::ReferenceTttdChunker::new(params);
            for seed in [5u64, 13, 29] {
                let data = random_data(200_000, seed);
                assert_eq!(
                    optimized.chunk_boundaries(&data),
                    reference.chunk_boundaries(&data),
                    "params {:?} seed {}",
                    params,
                    seed
                );
            }
        }
    }

    #[test]
    fn first_boundary_matches_full_scan() {
        let data = random_data(150_000, 41);
        let c = TttdChunker::default();
        assert_eq!(
            c.first_boundary(&data),
            c.chunk_boundaries(&data).first().copied()
        );
        assert_eq!(c.first_boundary(&[]), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn prop_boundaries_valid(seed in any::<u64>(), len in 0usize..80_000) {
            let data = random_data(len, seed);
            let c = TttdChunker::new(TttdParams {
                min_size: 256,
                minor_mean: 512,
                major_mean: 1024,
                max_size: 8192,
            });
            let b = c.chunk_boundaries(&data);
            prop_assert!(validate_boundaries(len, &b).is_ok());
        }

        #[test]
        fn prop_deterministic(seed in any::<u64>()) {
            let data = random_data(30_000, seed);
            let c = TttdChunker::default();
            prop_assert_eq!(c.chunk_boundaries(&data), c.chunk_boundaries(&data));
        }
    }
}
