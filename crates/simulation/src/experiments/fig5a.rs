//! Figure 5(a): single-node deduplication efficiency vs. chunk size.
//!
//! Deduplication *efficiency* — bytes saved per second — combines the deduplication
//! ratio with the processing cost.  Smaller chunks and CDC find more redundancy but
//! cost more CPU time and metadata; the paper finds static chunking (SC) more
//! efficient than CDC and a workload-dependent sweet spot around 4 KB (Linux) / 8 KB
//! (VM) chunks.  This experiment runs the full client+node pipeline (chunking,
//! SHA-1 fingerprinting, in-node deduplication) over versioned payload datasets and
//! reports bytes saved per second.

use serde::{Deserialize, Serialize};
use sigma_chunking::{ChunkerParams, ChunkingMethod};
use sigma_core::{DedupNode, SigmaConfig, SuperChunk, SuperChunkBuilder};
use sigma_hashkit::FingerprintAlgorithm;
use sigma_metrics::report::TextTable;
use sigma_metrics::{dedup_efficiency, Stopwatch};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};

/// One measured point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5aRow {
    /// Workload name (`"linux-like"` or `"vm-like"`).
    pub workload: String,
    /// Chunking method (SC or CDC).
    pub method: String,
    /// Chunk size in bytes.
    pub chunk_size: usize,
    /// Deduplication ratio achieved.
    pub dedup_ratio: f64,
    /// Deduplication efficiency in bytes saved per second.
    pub bytes_saved_per_sec: f64,
}

/// Parameters of the experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5aParams {
    /// Size of each payload version in bytes.
    pub version_size: usize,
    /// Number of versions per workload.
    pub versions: usize,
    /// Chunk sizes (bytes) to sweep.
    pub chunk_sizes: Vec<usize>,
}

impl Default for Fig5aParams {
    fn default() -> Self {
        Fig5aParams {
            version_size: 16 << 20,
            versions: 4,
            chunk_sizes: vec![1024, 2048, 4096, 8192, 16384, 32768, 65536],
        }
    }
}

/// The two payload workloads: `(label, mutation rate between versions)`.
const WORKLOADS: [(&str, f64); 2] = [("linux-like", 0.03), ("vm-like", 0.12)];

/// Runs the experiment.
pub fn run(params: &Fig5aParams) -> Vec<Fig5aRow> {
    let mut rows = Vec::new();
    for (label, mutation) in WORKLOADS {
        let versions = versioned_payloads(VersionedPayloadParams {
            seed: 0x5a + label.len() as u64,
            versions: params.versions,
            version_size: params.version_size,
            mutation_rate: mutation,
        });
        for &chunk_size in &params.chunk_sizes {
            for method in [ChunkingMethod::Static, ChunkingMethod::Cdc] {
                let chunker = match method {
                    ChunkingMethod::Static => ChunkerParams::fixed(chunk_size),
                    _ => ChunkerParams::cdc_with_average(chunk_size),
                };
                let (dr, de) = measure(&versions, chunker, chunk_size);
                rows.push(Fig5aRow {
                    workload: label.to_string(),
                    method: method.to_string(),
                    chunk_size,
                    dedup_ratio: dr,
                    bytes_saved_per_sec: de,
                });
            }
        }
    }
    rows
}

/// Deduplicates all versions on a single node and returns `(DR, bytes saved/sec)`.
fn measure(
    versions: &[(String, Vec<u8>)],
    chunker: ChunkerParams,
    chunk_size: usize,
) -> (f64, f64) {
    let config = SigmaConfig::builder()
        .chunker(chunker)
        .super_chunk_size((1 << 20).max(chunk_size * 4))
        .container_capacity((4 << 20).max(chunk_size * 8))
        .build()
        .expect("valid configuration");
    let node = DedupNode::new(0, &config);
    let built_chunker = config.chunker.build();

    let stopwatch = Stopwatch::start();
    for (v, (_, data)) in versions.iter().enumerate() {
        let mut builder = SuperChunkBuilder::new(config.super_chunk_size);
        let mut supers: Vec<SuperChunk> = Vec::new();
        for chunk in built_chunker.split(data) {
            let descriptor = sigma_core::ChunkDescriptor::new(
                FingerprintAlgorithm::Sha1.fingerprint(chunk.data()),
                chunk.len() as u32,
            );
            if let Some(sc) = builder.push_descriptor(descriptor) {
                supers.push(sc);
            }
        }
        supers.extend(builder.finish());
        for sc in supers {
            let handprint = sc.handprint(config.handprint_size);
            node.process_super_chunk(v as u64, &sc, &handprint)
                .expect("synthetic store cannot fail");
        }
        node.flush();
    }
    let elapsed = stopwatch.elapsed().as_secs_f64();
    let stats = node.stats();
    (
        stats.dedup_ratio,
        dedup_efficiency(stats.logical_bytes, stats.physical_bytes, elapsed),
    )
}

/// Renders the figure (chunk sizes as rows, workload × method as columns).
pub fn render(rows: &[Fig5aRow]) -> String {
    let mut sizes: Vec<usize> = rows.iter().map(|r| r.chunk_size).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let mut series: Vec<(String, String)> = Vec::new();
    for r in rows {
        let key = (r.workload.clone(), r.method.clone());
        if !series.contains(&key) {
            series.push(key);
        }
    }

    let mut headers = vec!["chunk size".to_string()];
    headers.extend(series.iter().map(|(w, m)| format!("{} {}", w, m)));
    let mut table = TextTable::new(headers.iter().map(|s| s.as_str()).collect());
    for size in sizes {
        let mut cells = vec![format!("{} KiB", size / 1024)];
        for (w, m) in &series {
            let cell = rows
                .iter()
                .find(|r| r.chunk_size == size && &r.workload == w && &r.method == m)
                .map(|r| format!("{:.1} MB/s saved", r.bytes_saved_per_sec / 1e6))
                .unwrap_or_default();
            cells.push(cell);
        }
        table.add_row(cells);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig5aParams {
        Fig5aParams {
            version_size: 1 << 20,
            versions: 3,
            chunk_sizes: vec![4096, 16384],
        }
    }

    #[test]
    fn produces_all_combinations() {
        let rows = run(&tiny_params());
        assert_eq!(rows.len(), 2 * 2 * 2);
        assert!(rows.iter().all(|r| r.dedup_ratio >= 1.0));
        assert!(rows.iter().all(|r| r.bytes_saved_per_sec >= 0.0));
    }

    #[test]
    fn versioned_payloads_deduplicate() {
        let rows = run(&tiny_params());
        // With 3 versions at a few percent churn, the deduplication ratio must be
        // clearly above 2 for 4 KB chunks.
        let sc4k = rows
            .iter()
            .find(|r| r.workload == "linux-like" && r.method == "SC" && r.chunk_size == 4096)
            .unwrap();
        assert!(sc4k.dedup_ratio > 2.0, "dr = {}", sc4k.dedup_ratio);
    }

    #[test]
    fn sc_is_more_efficient_than_cdc_at_the_same_size() {
        // The paper's headline observation for Figure 5(a); compare at 4 KB on the
        // linux-like workload where both methods find similar redundancy.
        let rows = run(&Fig5aParams {
            version_size: 4 << 20,
            versions: 3,
            chunk_sizes: vec![4096],
        });
        let sc = rows
            .iter()
            .find(|r| r.workload == "linux-like" && r.method == "SC")
            .unwrap();
        let cdc = rows
            .iter()
            .find(|r| r.workload == "linux-like" && r.method == "CDC")
            .unwrap();
        assert!(
            sc.bytes_saved_per_sec > cdc.bytes_saved_per_sec,
            "sc {} vs cdc {}",
            sc.bytes_saved_per_sec,
            cdc.bytes_saved_per_sec
        );
    }

    #[test]
    fn render_mentions_chunk_sizes() {
        let text = render(&run(&tiny_params()));
        assert!(text.contains("4 KiB"));
        assert!(text.contains("16 KiB"));
    }
}
