//! Backup and restore of a small file tree from multiple clients, exercising the
//! director's sessions and file recipes, chunk-level integrity on restore, and the
//! bandwidth saving reported to each source-deduplicating client.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example backup_restore
//! ```

use sigma_dedupe::prelude::*;
use std::sync::Arc;

/// Builds a small synthetic "project tree": sources, a binary, and duplicated assets.
fn project_tree(seed: u64) -> Vec<(String, Vec<u8>)> {
    let shared_asset = random_bytes(2 << 20, seed + 1000);
    let mut files = vec![
        ("src/main.rs".to_string(), random_bytes(48 * 1024, seed)),
        ("src/lib.rs".to_string(), random_bytes(96 * 1024, seed + 1)),
        (
            "target/app.bin".to_string(),
            random_bytes(6 << 20, seed + 2),
        ),
        ("assets/logo.png".to_string(), shared_asset.clone()),
        // The same asset appears twice under different names — classic duplication.
        ("docs/logo-copy.png".to_string(), shared_asset),
    ];
    // A log file that is mostly zeros compresses (deduplicates) internally.
    files.push(("logs/run.log".to_string(), vec![0u8; 3 << 20]));
    files
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        4,
        SigmaConfig::default(),
    ));

    // Two clients back up almost identical project trees (e.g. two developer
    // machines); the second client's backup is nearly free.
    let mut table = TextTable::new(vec!["client", "file", "logical", "transferred"]);
    let mut recipes = Vec::new();
    for (client_id, seed) in [(1u64, 42u64), (2u64, 42u64)] {
        let client = BackupClient::new(cluster.clone(), client_id);
        for (name, data) in project_tree(seed) {
            let report = client.backup_bytes(&name, &data)?;
            table.add_row(vec![
                format!("client-{}", client_id),
                name.clone(),
                human_bytes(report.logical_bytes),
                human_bytes(report.transferred_bytes),
            ]);
            recipes.push((client_id, name, data, report.file_id));
        }
    }
    cluster.flush();
    println!("{}", table.render());

    // Verify every file restores bit-exactly through its recipe.
    for (client_id, name, original, file_id) in &recipes {
        let restored = cluster.restore_file(*file_id)?;
        assert_eq!(
            &restored, original,
            "client {} file {} must restore exactly",
            client_id, name
        );
    }
    println!(
        "restored {} files across {} backup sessions — all bit-exact",
        recipes.len(),
        2
    );

    let stats = cluster.stats();
    println!(
        "cluster stored {} for {} of logical data (DR {:.2}) across {} nodes",
        human_bytes(stats.physical_bytes),
        human_bytes(stats.logical_bytes),
        stats.dedup_ratio,
        stats.node_count
    );
    println!(
        "director tracked {} files in {} sessions",
        cluster.director().file_count(),
        cluster.director().session_count()
    );
    Ok(())
}
