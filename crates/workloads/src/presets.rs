//! Ready-made workloads matching the paper's Table 2, at selectable scales.

use crate::linux_like::{self, LinuxLikeParams};
use crate::trace_like::{self, TraceLikeParams};
use crate::vm_like::{self, VmLikeParams};
use crate::{DatasetTrace, Scale};

/// The Linux-kernel-sources workload (Table 2 row 1, DR ≈ 8 with SC 4 KB).
pub fn linux_dataset(scale: Scale) -> DatasetTrace {
    let target = scale.target_logical_bytes();
    // With ~10 versions, each version carries ~1/10 of the logical bytes.
    let versions = 10usize;
    let per_version = target / versions as u64;
    let median_file = 8 * 1024u64;
    // Log-normal with spread 2.5 has mean ≈ median * exp(sigma^2/2) ≈ 1.5 × median.
    let files = (per_version as f64 / (median_file as f64 * 1.5)).max(16.0) as usize;
    linux_like::generate(LinuxLikeParams {
        versions,
        files_per_version: files,
        median_file_size: median_file,
        ..LinuxLikeParams::default()
    })
}

/// The VM full-backup workload (Table 2 row 2, DR ≈ 4.1 with SC 4 KB).
pub fn vm_dataset(scale: Scale) -> DatasetTrace {
    let target = scale.target_logical_bytes();
    let vm_count = 8usize;
    let generations = 2usize;
    // Image sizes ramp linearly from base to skew×base, so the total logical size is
    // vm_count × generations × base × (1 + skew) / 2.
    let size_skew = 6.0f64;
    let base = (target as f64 / (vm_count * generations) as f64 / ((1.0 + size_skew) / 2.0)) as u64;
    vm_like::generate(VmLikeParams {
        vm_count,
        generations,
        base_image_size: base.max(256 * 1024),
        size_skew,
        ..VmLikeParams::default()
    })
}

/// The FIU mail-server trace workload (Table 2 row 3, DR ≈ 10.5).
pub fn mail_dataset(scale: Scale) -> DatasetTrace {
    let chunks = scale.target_logical_bytes() / 4096;
    trace_like::generate(TraceLikeParams::mail(chunks))
}

/// The FIU web-server trace workload (Table 2 row 4, DR ≈ 1.9).
pub fn web_dataset(scale: Scale) -> DatasetTrace {
    let chunks = scale.target_logical_bytes() / 4096;
    trace_like::generate(TraceLikeParams::web(chunks))
}

/// All four paper workloads in Table 2 order.
pub fn paper_datasets(scale: Scale) -> Vec<DatasetTrace> {
    vec![
        linux_dataset(scale),
        vm_dataset(scale),
        mail_dataset(scale),
        web_dataset(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetKind;

    #[test]
    fn four_datasets_in_table_2_order() {
        let datasets = paper_datasets(Scale::Tiny);
        let kinds: Vec<DatasetKind> = datasets.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DatasetKind::Linux,
                DatasetKind::Vm,
                DatasetKind::Mail,
                DatasetKind::Web
            ]
        );
        // File boundaries only exist for Linux and VM, like the paper's datasets.
        assert!(datasets[0].has_file_boundaries);
        assert!(datasets[1].has_file_boundaries);
        assert!(!datasets[2].has_file_boundaries);
        assert!(!datasets[3].has_file_boundaries);
    }

    #[test]
    fn logical_sizes_track_the_scale() {
        for scale in [Scale::Tiny, Scale::Small] {
            let target = scale.target_logical_bytes() as f64;
            for d in paper_datasets(scale) {
                let actual = d.logical_bytes() as f64;
                assert!(
                    actual > target * 0.4 && actual < target * 2.5,
                    "{} at {:?}: {} vs target {}",
                    d.name,
                    scale,
                    actual,
                    target
                );
            }
        }
    }

    #[test]
    fn dedup_ratios_have_the_right_ordering() {
        // The paper's DR ordering is Mail > Linux > VM > Web; the synthetic stand-ins
        // must preserve it (absolute values are approximate).
        let d = paper_datasets(Scale::Tiny);
        let dr: Vec<f64> = d.iter().map(|t| t.exact_dedup_ratio()).collect();
        let (linux, vm, mail, web) = (dr[0], dr[1], dr[2], dr[3]);
        assert!(mail > linux, "mail {} vs linux {}", mail, linux);
        assert!(linux > vm, "linux {} vs vm {}", linux, vm);
        assert!(vm > web, "vm {} vs web {}", vm, web);
        assert!(web > 1.2, "web {}", web);
    }
}
