//! Evaluation metrics for (cluster) deduplication systems.
//!
//! Section 4.2 of the paper defines the metrics this crate implements:
//!
//! * **Deduplication ratio (DR)** — logical size divided by physical size.
//! * **Deduplication efficiency (DE)** — "bytes saved per second":
//!   `(L - P) / T = (1 - 1/DR) × DT`, combining effectiveness and throughput.
//! * **Normalized deduplication ratio** — a cluster scheme's DR divided by the DR of
//!   single-node *exact* deduplication on the same data.
//! * **Normalized effective deduplication ratio (NEDR)** — the normalized DR further
//!   divided by `1 + σ/α`, where σ/α is the coefficient of variation of per-node
//!   storage usage; this folds load imbalance into the capacity metric (Figure 8).
//! * **Fingerprint-lookup message count** — the system-overhead metric (Figure 7).
//!
//! The crate also provides small reporting helpers ([`report::TextTable`],
//! [`report::csv_line`]) used by the benches and examples to print paper-style
//! tables, wall-clock throughput measurement ([`Stopwatch`], [`Throughput`]),
//! and lock-light per-operation service counters ([`MetricsRegistry`],
//! [`OpCounters`]) fed by the service layer's request-logging middleware.
//! Restore-path observability (chunks read, container visits, cache hit rates,
//! read amplification) lives in [`RestoreCounters`] / [`RestoreSnapshot`].
//! Multi-tenant accounting lives in [`TenantCounters`] /
//! [`TenantStatsReport`] (per-tenant logical/transferred bytes while physical
//! chunks stay shared), and [`jain_fairness_index`] scores how evenly a
//! scheduler divided service among tenants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
pub mod report;
mod restore;
mod tenant;
mod throughput;

pub use counters::{MetricsRegistry, OpCounters, OpSnapshot};
pub use restore::{RestoreCounters, RestoreSnapshot};
pub use tenant::{jain_fairness_index, TenantCounters, TenantStatsReport};
pub use throughput::{Stopwatch, Throughput};

use serde::{Deserialize, Serialize};

/// Deduplication ratio: logical bytes over physical bytes.
///
/// Returns 1.0 when `physical_bytes` is zero (nothing stored ⇒ nothing inflated).
///
/// # Example
///
/// ```
/// use sigma_metrics::dedup_ratio;
/// assert_eq!(dedup_ratio(1000, 250), 4.0);
/// assert_eq!(dedup_ratio(0, 0), 1.0);
/// ```
pub fn dedup_ratio(logical_bytes: u64, physical_bytes: u64) -> f64 {
    if physical_bytes == 0 {
        1.0
    } else {
        logical_bytes as f64 / physical_bytes as f64
    }
}

/// Deduplication efficiency in *bytes saved per second*.
///
/// `elapsed_secs` of zero yields 0 to avoid division by zero (an instantaneous
/// process saved nothing "per second" in a meaningful sense).
///
/// # Example
///
/// ```
/// use sigma_metrics::dedup_efficiency;
/// // 1 GB logical reduced to 250 MB in 10 s: 75 MB/s of savings.
/// let de = dedup_efficiency(1_000_000_000, 250_000_000, 10.0);
/// assert_eq!(de, 75_000_000.0);
/// ```
pub fn dedup_efficiency(logical_bytes: u64, physical_bytes: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs <= 0.0 {
        return 0.0;
    }
    (logical_bytes.saturating_sub(physical_bytes)) as f64 / elapsed_secs
}

/// Coefficient of variation (σ/α) of per-node storage usage; 0 for empty input or a
/// zero mean.
///
/// # Example
///
/// ```
/// use sigma_metrics::usage_skew;
/// assert!(usage_skew(&[100, 100, 100]) < 1e-12);
/// assert!(usage_skew(&[200, 0]) > 0.99);
/// ```
pub fn usage_skew(usage: &[u64]) -> f64 {
    if usage.is_empty() {
        return 0.0;
    }
    let mean = usage.iter().map(|&u| u as f64).sum::<f64>() / usage.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let variance = usage
        .iter()
        .map(|&u| {
            let d = u as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / usage.len() as f64;
    variance.sqrt() / mean
}

/// Normalized deduplication ratio: a cluster scheme's DR relative to single-node
/// exact deduplication of the same data.
///
/// Returns 0 when the single-node ratio is zero.
pub fn normalized_dedup_ratio(cluster_dr: f64, single_node_dr: f64) -> f64 {
    if single_node_dr <= 0.0 {
        0.0
    } else {
        cluster_dr / single_node_dr
    }
}

/// Normalized *effective* deduplication ratio (NEDR, Eq. 7 of the paper):
/// `CDR / SDR × α / (α + σ)`, expressed here via the usage skew `σ/α`.
pub fn normalized_effective_dedup_ratio(cluster_dr: f64, single_node_dr: f64, skew: f64) -> f64 {
    normalized_dedup_ratio(cluster_dr, single_node_dr) / (1.0 + skew.max(0.0))
}

/// A summary of one cluster-deduplication run, convenient for tables and JSON dumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterRunSummary {
    /// Routing scheme name.
    pub scheme: String,
    /// Dataset / workload name.
    pub dataset: String,
    /// Number of deduplication nodes.
    pub nodes: usize,
    /// Logical bytes backed up.
    pub logical_bytes: u64,
    /// Physical bytes stored.
    pub physical_bytes: u64,
    /// Cluster deduplication ratio.
    pub dedup_ratio: f64,
    /// Per-node storage usage skew (σ/α).
    pub skew: f64,
    /// Single-node exact deduplication ratio of the same data.
    pub single_node_dr: f64,
    /// Fingerprint-lookup messages sent before routing.
    pub prerouting_lookups: u64,
    /// Fingerprint-lookup messages sent after routing.
    pub postrouting_lookups: u64,
}

impl ClusterRunSummary {
    /// Normalized deduplication ratio for this run.
    pub fn normalized_dr(&self) -> f64 {
        normalized_dedup_ratio(self.dedup_ratio, self.single_node_dr)
    }

    /// Normalized effective deduplication ratio (the Figure 8 metric).
    pub fn nedr(&self) -> f64 {
        normalized_effective_dedup_ratio(self.dedup_ratio, self.single_node_dr, self.skew)
    }

    /// Total fingerprint-lookup messages (the Figure 7 metric).
    pub fn total_lookups(&self) -> u64 {
        self.prerouting_lookups + self.postrouting_lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dedup_ratio_basics() {
        assert_eq!(dedup_ratio(100, 50), 2.0);
        assert_eq!(dedup_ratio(100, 100), 1.0);
        assert_eq!(dedup_ratio(100, 0), 1.0);
    }

    #[test]
    fn efficiency_matches_identity() {
        // DE = (1 - 1/DR) * DT with DT = L/T.
        let (l, p, t) = (1_000_000u64, 200_000u64, 4.0);
        let de = dedup_efficiency(l, p, t);
        let dr = dedup_ratio(l, p);
        let dt = l as f64 / t;
        assert!((de - (1.0 - 1.0 / dr) * dt).abs() < 1e-6);
        assert_eq!(dedup_efficiency(l, p, 0.0), 0.0);
    }

    #[test]
    fn nedr_penalises_skew() {
        let balanced = normalized_effective_dedup_ratio(8.0, 10.0, 0.0);
        let skewed = normalized_effective_dedup_ratio(8.0, 10.0, 1.0);
        assert!((balanced - 0.8).abs() < 1e-12);
        assert!((skewed - 0.4).abs() < 1e-12);
        assert_eq!(normalized_dedup_ratio(8.0, 0.0), 0.0);
    }

    #[test]
    fn summary_accessors() {
        let s = ClusterRunSummary {
            scheme: "sigma".into(),
            dataset: "linux".into(),
            nodes: 8,
            logical_bytes: 1000,
            physical_bytes: 125,
            dedup_ratio: 8.0,
            skew: 0.25,
            single_node_dr: 10.0,
            prerouting_lookups: 64,
            postrouting_lookups: 256,
        };
        assert!((s.normalized_dr() - 0.8).abs() < 1e-12);
        assert!((s.nedr() - 0.64).abs() < 1e-12);
        assert_eq!(s.total_lookups(), 320);
    }

    proptest! {
        #[test]
        fn prop_skew_non_negative_and_zero_for_constant(u in 1u64..1_000_000, n in 1usize..64) {
            let usage = vec![u; n];
            prop_assert!(usage_skew(&usage) < 1e-9);
        }

        #[test]
        fn prop_nedr_never_exceeds_normalized_dr(
            cdr in 0.0f64..100.0,
            sdr in 0.1f64..100.0,
            skew in 0.0f64..10.0,
        ) {
            let nedr = normalized_effective_dedup_ratio(cdr, sdr, skew);
            prop_assert!(nedr <= normalized_dedup_ratio(cdr, sdr) + 1e-12);
        }

        #[test]
        fn prop_dedup_ratio_at_least_one_when_physical_le_logical(
            physical in 1u64..1_000_000,
            extra in 0u64..1_000_000,
        ) {
            prop_assert!(dedup_ratio(physical + extra, physical) >= 1.0);
        }
    }
}
