//! The node-churn scenario: scale a live cluster out and back in under load.
//!
//! The paper evaluates static clusters; the distributed-middleware literature
//! treats node churn as the baseline condition.  This module drives the end-to-end
//! elastic-membership story on real payload bytes:
//!
//! 1. **bootstrap** — N client streams back up a generation of versioned data;
//! 2. **scale-out** — a node joins and the [`Rebalancer`](sigma_core::Rebalancer)
//!    migrates containers onto it until it carries the cluster mean;
//! 3. **second wave** — every stream backs up a mutated next generation, which
//!    deduplicates against the (partly migrated) first generation;
//! 4. **scale-in** — one of the *original* nodes is removed and drained, leaving
//!    forwarding tombstones behind;
//! 5. **verification** — every file written at *any* generation is restored and
//!    compared byte-for-byte, and physical bytes are checked for conservation
//!    across both migrations (the rebalancer may neither duplicate nor lose a
//!    chunk).
//!
//! The scenario is deterministic (seeded payloads, deterministic rebalance plans),
//! so it doubles as a regression test and as the workload behind the
//! `rebalance_throughput` bench.

use sigma_core::{BackupClient, DedupCluster, RebalanceReport, SigmaConfig};
use sigma_workloads::payload::{versioned_payloads, VersionedPayloadParams};
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of one churn scenario run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Nodes the cluster starts with.
    pub initial_nodes: usize,
    /// Concurrent client streams (each backs up one file per phase).
    pub streams: usize,
    /// Bytes per stream per backup generation.
    pub stream_bytes: usize,
    /// Fraction of 4 KB regions rewritten between the two backup generations.
    pub mutation_rate: f64,
    /// Deterministic seed for the payload generators.
    pub seed: u64,
    /// Σ-Dedupe configuration shared by clients and nodes.
    pub sigma: SigmaConfig,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            initial_nodes: 3,
            streams: 4,
            stream_bytes: 512 * 1024,
            mutation_rate: 0.05,
            seed: 0x5157,
            sigma: SigmaConfig::builder()
                .super_chunk_size(64 * 1024)
                .container_capacity(256 * 1024)
                // Restore-verify phases run the planned restore pipeline
                // fanned out, so the scenario exercises parallel group
                // fetches racing the rebalancer's tombstone hand-offs.
                .restore_parallelism(2)
                .build()
                .expect("default churn config is valid"),
        }
    }
}

/// A point-in-time snapshot taken after each phase of the scenario.
#[derive(Debug, Clone)]
pub struct ChurnPhase {
    /// Phase label (`"bootstrap"`, `"scale-out"`, …).
    pub label: &'static str,
    /// Membership generation after the phase.
    pub generation: u64,
    /// Active node count after the phase.
    pub node_count: usize,
    /// Cluster physical bytes after the phase.
    pub physical_bytes: u64,
    /// Cluster dedup ratio after the phase.
    pub dedup_ratio: f64,
    /// Per-node storage-usage skew after the phase.
    pub usage_skew: f64,
}

/// The outcome of a churn scenario run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// One snapshot per phase, in order.
    pub phases: Vec<ChurnPhase>,
    /// Files written across both backup waves.
    pub files: usize,
    /// Files that restored byte-identically at the end of the scenario.
    pub restored_intact: usize,
    /// Rebalance report of the scale-out migration.
    pub join_rebalance: RebalanceReport,
    /// Rebalance report of the scale-in (node-removal) migration.
    pub leave_rebalance: RebalanceReport,
    /// Physical bytes immediately before the node removal.
    pub physical_before_leave: u64,
    /// Physical bytes immediately after the removal's drain completed.
    pub physical_after_leave: u64,
}

impl ChurnOutcome {
    /// True when every file written at any generation restored byte-identically.
    pub fn all_restored(&self) -> bool {
        self.restored_intact == self.files
    }

    /// True when both migrations conserved physical bytes (nothing duplicated or
    /// lost by the rebalancer).
    pub fn bytes_conserved(&self) -> bool {
        self.physical_before_leave == self.physical_after_leave
    }
}

/// Runs the churn scenario: backup → add node → backup → remove node → restore
/// everything.
///
/// # Panics
///
/// Panics if a backup fails (payload-driven backups cannot legitimately fail) or
/// if `config.initial_nodes`/`config.streams` is zero.
pub fn run_churn(config: &ChurnConfig) -> ChurnOutcome {
    assert!(config.initial_nodes > 0, "need at least one node");
    assert!(config.streams > 0, "need at least one stream");
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        config.initial_nodes,
        config.sigma.clone(),
    ));

    // Two generations of payload per stream, generated up front so restores can
    // be verified against ground truth at the end.
    let generations: Vec<Vec<(String, Vec<u8>)>> = (0..config.streams as u64)
        .map(|s| {
            versioned_payloads(VersionedPayloadParams {
                seed: config.seed.wrapping_add(s),
                versions: 2,
                version_size: config.stream_bytes,
                mutation_rate: config.mutation_rate,
            })
        })
        .collect();

    let clients: Vec<BackupClient> = (0..config.streams as u64)
        .map(|s| BackupClient::new(cluster.clone(), s))
        .collect();
    let mut expected: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut phases = Vec::new();
    let snapshot = |label: &'static str, cluster: &DedupCluster| {
        let stats = cluster.stats();
        ChurnPhase {
            label,
            generation: cluster.generation(),
            node_count: stats.node_count,
            physical_bytes: stats.physical_bytes,
            dedup_ratio: stats.dedup_ratio,
            usage_skew: stats.usage_skew,
        }
    };

    // Phase 1: bootstrap backups on the initial cluster.
    for (client, gens) in clients.iter().zip(&generations) {
        let (name, data) = &gens[0];
        let report = client.backup_bytes(name, data).expect("backup succeeds");
        expected.insert(report.file_id, data.clone());
    }
    cluster.flush();
    phases.push(snapshot("bootstrap", &cluster));

    // Phase 2: scale out — join a node and migrate containers onto it.
    let (_joined, join_rebalance) = cluster
        .add_node_rebalanced()
        .expect("no fault injection in the plain churn scenario");
    phases.push(snapshot("scale-out", &cluster));

    // Phase 3: second backup wave, deduplicating against migrated state.
    for (client, gens) in clients.iter().zip(&generations) {
        let (name, data) = &gens[1];
        let report = client.backup_bytes(name, data).expect("backup succeeds");
        expected.insert(report.file_id, data.clone());
    }
    cluster.flush();
    phases.push(snapshot("second-wave", &cluster));

    // Phase 4: scale in — remove one of the *original* nodes, so recipes from
    // both waves must follow its forwarding tombstones from now on.
    let physical_before_leave = cluster.stats().physical_bytes;
    let victim = cluster.node_ids()[0];
    let leave_rebalance = cluster
        .remove_node(victim)
        .expect("cluster has more than one node");
    let physical_after_leave = cluster.stats().physical_bytes;
    phases.push(snapshot("scale-in", &cluster));

    // Phase 5: restore every file written at any generation.
    let restored_intact = expected
        .iter()
        .filter(|(file_id, data)| {
            cluster
                .restore_file(**file_id)
                .map(|bytes| bytes == **data)
                .unwrap_or(false)
        })
        .count();

    ChurnOutcome {
        phases,
        files: expected.len(),
        restored_intact,
        join_rebalance,
        leave_rebalance,
        physical_before_leave,
        physical_after_leave,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_scenario_restores_everything_and_conserves_bytes() {
        let outcome = run_churn(&ChurnConfig::default());
        assert_eq!(outcome.files, 8, "4 streams x 2 generations");
        assert!(
            outcome.all_restored(),
            "only {}/{} files restored byte-identically",
            outcome.restored_intact,
            outcome.files
        );
        assert!(
            outcome.bytes_conserved(),
            "rebalancer changed physical bytes: {} -> {}",
            outcome.physical_before_leave,
            outcome.physical_after_leave
        );
        // The join migration actually moved data onto the new node.
        assert!(outcome.join_rebalance.containers_moved > 0);
        // The drain moved every sealed container off the victim.
        assert!(outcome.leave_rebalance.containers_moved > 0);
        // Generations: 0 (bootstrap) -> 1 (join) -> 2 (leave).
        assert_eq!(outcome.phases.last().unwrap().generation, 2);
        assert_eq!(
            outcome.phases.last().unwrap().node_count,
            ChurnConfig::default().initial_nodes,
            "grew by one, shrank by one"
        );
    }

    #[test]
    fn second_wave_deduplicates_against_migrated_state() {
        let outcome = run_churn(&ChurnConfig {
            mutation_rate: 0.02,
            ..ChurnConfig::default()
        });
        // Wave 2 rewrites ~2% of each stream; with the chunk-index fallback the
        // second wave must deduplicate heavily against wave 1 even though some of
        // wave 1's containers migrated to the joined node in between.
        let second_wave = outcome
            .phases
            .iter()
            .find(|p| p.label == "second-wave")
            .unwrap();
        assert!(
            second_wave.dedup_ratio > 1.5,
            "dedup ratio {} too low: migration broke dedup continuity",
            second_wave.dedup_ratio
        );
    }

    #[test]
    fn churn_is_deterministic() {
        let a = run_churn(&ChurnConfig::default());
        let b = run_churn(&ChurnConfig::default());
        assert_eq!(a.physical_after_leave, b.physical_after_leave);
        assert_eq!(a.join_rebalance, b.join_rebalance);
        assert_eq!(a.leave_rebalance, b.leave_rebalance);
    }
}
