//! The retention-churn scenario: generational backups, expiry and reclamation.
//!
//! Protection workloads are generational: every night a new backup wave arrives,
//! and the oldest wave expires.  The paper's clusters are append-only; this
//! scenario drives the lifecycle the ROADMAP's production north-star needs:
//!
//! 1. **ingest** — N client streams back up `generations` successive versions of
//!    their data (each generation mutates a fraction of the previous one and
//!    appends fresh bytes), every wave tagged with its backup generation;
//! 2. **expire** — the oldest `expire` generations are deleted one by one, each
//!    deletion followed by a full [`DedupCluster::collect_garbage`] mark-and-sweep;
//! 3. **verification** — every *surviving* file must restore byte-identically,
//!    physical bytes must strictly shrink versus the no-GC baseline (the
//!    pre-expiry figure — deletion without GC reclaims nothing), and must never
//!    fall below the bytes the mark phase proved live.
//!
//! The scenario is deterministic (seeded payloads, deterministic mark order and
//! sweep plans), so it doubles as a regression test and as the workload behind
//! the `gc_compaction` bench.

use sigma_core::{BackupClient, DedupCluster, GcReport, SigmaConfig};
use sigma_workloads::payload::{generational_payloads, GenerationalPayloadParams};
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters of one retention-churn run.
#[derive(Debug, Clone)]
pub struct RetentionConfig {
    /// Deduplication nodes in the cluster.
    pub nodes: usize,
    /// Concurrent client streams (one file per stream per generation).
    pub streams: usize,
    /// Backup generations ingested.
    pub generations: usize,
    /// Oldest generations expired (must be < `generations`).
    pub expire: usize,
    /// Bytes per stream in generation 0.
    pub initial_stream_bytes: usize,
    /// Fresh bytes each stream appends per generation.
    pub growth_per_generation: usize,
    /// Fraction of 4 KB regions rewritten between generations.
    pub mutation_rate: f64,
    /// Deterministic seed for the payload generators.
    pub seed: u64,
    /// Σ-Dedupe configuration shared by clients and nodes (including
    /// [`SigmaConfig::gc_liveness_threshold`]).
    pub sigma: SigmaConfig,
}

impl Default for RetentionConfig {
    fn default() -> Self {
        RetentionConfig {
            nodes: 3,
            streams: 3,
            generations: 4,
            expire: 2,
            initial_stream_bytes: 384 * 1024,
            growth_per_generation: 32 * 1024,
            mutation_rate: 0.2,
            seed: 0x9E7E,
            // Threshold 0.9: a container whose data is more than 10% dead is
            // compacted.  With 20% churn per generation, expired generations
            // leave their containers ~20-40% dead, so the default scenario
            // reclaims robustly; lower thresholds trade reclaim for less
            // rewrite I/O (see the `gc_compaction` bench for the curve).
            sigma: SigmaConfig::builder()
                .super_chunk_size(64 * 1024)
                .container_capacity(128 * 1024)
                .gc_liveness_threshold(0.9)
                .build()
                .expect("default retention config is valid"),
        }
    }
}

/// One expiry round: delete a generation, then mark-and-sweep.
#[derive(Debug, Clone)]
pub struct RetentionRound {
    /// The generation this round expired.
    pub generation: u64,
    /// Logical bytes the deletion released from the root set.
    pub logical_freed: u64,
    /// The garbage collection that followed.
    pub gc: GcReport,
    /// Cluster physical bytes after the sweep.
    pub physical_after: u64,
}

/// The outcome of a retention-churn run.
#[derive(Debug, Clone)]
pub struct RetentionOutcome {
    /// Files written across all generations.
    pub files: usize,
    /// Files whose generation survived the expiry.
    pub survivors: usize,
    /// Surviving files that restored byte-identically at the end.
    pub restored_intact: usize,
    /// Cluster physical bytes after ingest, before any expiry — exactly what a
    /// no-GC run would hold forever (deletion without a sweep reclaims nothing).
    pub physical_before_expiry: u64,
    /// Cluster physical bytes after the last sweep.
    pub physical_after: u64,
    /// Physical bytes reclaimed across all sweeps.
    pub reclaimed_bytes: u64,
    /// One record per expiry round, in order.
    pub rounds: Vec<RetentionRound>,
}

impl RetentionOutcome {
    /// True when every surviving file restored byte-identically.
    pub fn all_restored(&self) -> bool {
        self.restored_intact == self.survivors
    }

    /// True when the expiry actually shrank physical storage versus the no-GC
    /// baseline (the acceptance criterion of a working backup lifecycle).
    pub fn space_reclaimed(&self) -> bool {
        self.reclaimed_bytes > 0 && self.physical_after < self.physical_before_expiry
    }

    /// True when no sweep ever took physical bytes below the bytes its own mark
    /// phase proved live — GC may only ever remove garbage.
    pub fn never_below_live(&self) -> bool {
        self.rounds
            .iter()
            .all(|round| round.physical_after >= round.gc.live_bytes)
    }
}

/// Runs the retention-churn scenario: ingest `generations` waves, expire the
/// oldest `expire` of them (delete + mark-and-sweep each), restore-verify the
/// survivors.
///
/// # Panics
///
/// Panics if `expire >= generations`, if `nodes`/`streams` is zero, or if a
/// backup fails (payload-driven backups cannot legitimately fail).
pub fn run_retention(config: &RetentionConfig) -> RetentionOutcome {
    assert!(config.nodes > 0, "need at least one node");
    assert!(config.streams > 0, "need at least one stream");
    assert!(
        config.expire < config.generations,
        "at least one generation must survive"
    );
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        config.nodes,
        config.sigma.clone(),
    ));

    // Ground truth, generated up front: per stream, one payload per generation.
    let datasets: Vec<Vec<(String, Vec<u8>)>> = (0..config.streams as u64)
        .map(|s| {
            generational_payloads(GenerationalPayloadParams {
                seed: config.seed.wrapping_add(s.wrapping_mul(0x9E37)),
                generations: config.generations,
                initial_size: config.initial_stream_bytes,
                mutation_rate: config.mutation_rate,
                growth_per_generation: config.growth_per_generation,
            })
        })
        .collect();

    // Ingest: every generation is one backup wave; each stream's wave runs
    // under a session tagged with the generation, so expiry can target it.
    let mut expected: HashMap<u64, (u64, Vec<u8>)> = HashMap::new();
    for generation in 0..config.generations as u64 {
        for (stream, dataset) in datasets.iter().enumerate() {
            let client = BackupClient::with_generation(cluster.clone(), stream as u64, generation);
            let (name, data) = &dataset[generation as usize];
            let report = client
                .backup_bytes(&format!("stream-{}/{}", stream, name), data)
                .expect("backup succeeds");
            expected.insert(report.file_id, (generation, data.clone()));
        }
        cluster.flush();
    }
    let physical_before_expiry = cluster.stats().physical_bytes;

    // Expire the oldest generations, sweeping after each deletion.
    let mut rounds = Vec::with_capacity(config.expire);
    for generation in 0..config.expire as u64 {
        let logical_freed = cluster
            .delete_generation(generation)
            .expect("delete_generation is total");
        let gc = cluster
            .collect_garbage()
            .expect("no fault injection in the plain retention scenario");
        rounds.push(RetentionRound {
            generation,
            logical_freed,
            gc,
            physical_after: cluster.stats().physical_bytes,
        });
    }

    // Verify every surviving file, byte for byte.
    let survivors: Vec<(&u64, &(u64, Vec<u8>))> = expected
        .iter()
        .filter(|(_, (generation, _))| *generation >= config.expire as u64)
        .collect();
    let restored_intact = survivors
        .iter()
        .filter(|(file_id, (_, data))| {
            cluster
                .restore_file(**file_id)
                .map(|bytes| &bytes == data)
                .unwrap_or(false)
        })
        .count();

    RetentionOutcome {
        files: expected.len(),
        survivors: survivors.len(),
        restored_intact,
        physical_before_expiry,
        physical_after: cluster.stats().physical_bytes,
        reclaimed_bytes: rounds.iter().map(|r| r.gc.bytes_reclaimed).sum(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_reclaims_space_and_preserves_survivors() {
        let outcome = run_retention(&RetentionConfig::default());
        assert_eq!(outcome.files, 12, "3 streams x 4 generations");
        assert_eq!(outcome.survivors, 6, "2 of 4 generations survive");
        assert!(
            outcome.all_restored(),
            "only {}/{} survivors restored byte-identically",
            outcome.restored_intact,
            outcome.survivors
        );
        assert!(
            outcome.space_reclaimed(),
            "expiry reclaimed nothing: {} -> {}",
            outcome.physical_before_expiry,
            outcome.physical_after
        );
        assert!(outcome.never_below_live());
        // Physical bytes shrink monotonically round over round.
        let mut previous = outcome.physical_before_expiry;
        for round in &outcome.rounds {
            assert!(round.physical_after <= previous);
            assert!(round.logical_freed > 0);
            previous = round.physical_after;
        }
    }

    #[test]
    fn expiring_nothing_reclaims_nothing() {
        let outcome = run_retention(&RetentionConfig {
            generations: 2,
            expire: 0,
            ..RetentionConfig::default()
        });
        assert!(outcome.rounds.is_empty());
        assert_eq!(outcome.physical_after, outcome.physical_before_expiry);
        assert_eq!(outcome.survivors, outcome.files);
        assert!(outcome.all_restored());
    }

    #[test]
    fn retention_is_deterministic() {
        let a = run_retention(&RetentionConfig::default());
        let b = run_retention(&RetentionConfig::default());
        assert_eq!(a.physical_before_expiry, b.physical_before_expiry);
        assert_eq!(a.physical_after, b.physical_after);
        assert_eq!(a.reclaimed_bytes, b.reclaimed_bytes);
        assert_eq!(
            a.rounds.iter().map(|r| r.gc.clone()).collect::<Vec<_>>(),
            b.rounds.iter().map(|r| r.gc.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn retention_composes_with_membership_churn() {
        // Expiry and GC on a cluster that grew and shrank mid-ingest: the mark
        // phase must follow forwarding tombstones, and reclamation must not
        // disturb migrated survivors.
        let config = RetentionConfig::default();
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            config.nodes,
            config.sigma.clone(),
        ));
        let datasets: Vec<Vec<(String, Vec<u8>)>> = (0..config.streams as u64)
            .map(|s| {
                generational_payloads(GenerationalPayloadParams {
                    seed: config.seed.wrapping_add(s),
                    generations: 3,
                    initial_size: config.initial_stream_bytes,
                    mutation_rate: config.mutation_rate,
                    growth_per_generation: config.growth_per_generation,
                })
            })
            .collect();
        let mut expected: HashMap<u64, (u64, Vec<u8>)> = HashMap::new();
        for generation in 0..3u64 {
            for (stream, dataset) in datasets.iter().enumerate() {
                let client =
                    BackupClient::with_generation(cluster.clone(), stream as u64, generation);
                let (name, data) = &dataset[generation as usize];
                let report = client.backup_bytes(name, data).expect("backup succeeds");
                expected.insert(report.file_id, (generation, data.clone()));
            }
            cluster.flush();
            match generation {
                0 => {
                    cluster.add_node_rebalanced().expect("no faults");
                }
                1 => {
                    let victim = cluster.node_ids()[0];
                    cluster.remove_node(victim).expect("no faults");
                }
                _ => {}
            }
        }

        cluster.delete_generation(0).unwrap();
        let before = cluster.stats().physical_bytes;
        let report = cluster.collect_garbage().unwrap();
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(
            cluster.stats().physical_bytes,
            before - report.bytes_reclaimed
        );
        assert!(cluster.stats().physical_bytes >= report.live_bytes);
        for (file_id, (generation, data)) in &expected {
            if *generation == 0 {
                assert!(cluster.restore_file(*file_id).is_err());
            } else {
                assert_eq!(&cluster.restore_file(*file_id).unwrap(), data);
            }
        }
        for id in cluster.node_ids() {
            cluster
                .node_by_id(id)
                .unwrap()
                .verify_consistency()
                .unwrap();
        }
    }
}
