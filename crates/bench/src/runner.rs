//! The `sigma-bench` measurement suites: one in-process pass over the
//! headline workloads (ingest, restore, rebalance, recovery replay, GC
//! reclaim) that produces a [`BenchReport`] for the persisted performance
//! trajectory.
//!
//! Unlike the criterion targets (which explore parameter spaces), the runner
//! measures a fixed configuration per metric, takes the best of a few
//! repetitions, and labels every number with its byte basis so the trajectory
//! file cannot silently mix pre-dedup and post-dedup MB/s.
//!
//! Two sizes exist: **full** (the numbers committed as `BENCH_pr7.json`) and
//! **quick** (CI-sized).  A full run executes *both* and records the quick
//! metrics under `quick/`-prefixed names, so a CI quick run always finds
//! same-sized baselines in the committed file and never compares a 2 MiB run
//! against a 16 MiB one.

use crate::trajectory::{BenchReport, ByteBasis, Metric};
use sigma_chunking::{reference, ChunkerParams};
use sigma_core::{
    BackupClient, DedupCluster, DedupNode, IngestPipeline, SigmaConfig, StreamPayload, SuperChunk,
};
use sigma_hashkit::FingerprintAlgorithm;
use sigma_metrics::Stopwatch;
use sigma_simulation::runner::{run_cluster, SimulationConfig};
use sigma_simulation::tenant_storm::{run_tenant_storm, TenantStormConfig};
use sigma_storage::Journal;
use sigma_workloads::payload::{
    generational_payloads, random_bytes, versioned_payloads, GenerationalPayloadParams,
    VersionedPayloadParams,
};
use sigma_workloads::{presets, Scale};
use std::sync::Arc;

/// How the runner is invoked.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Run only the CI-sized quick suite (a full run includes it anyway,
    /// under `quick/`-prefixed metric names).
    pub quick: bool,
    /// Label recorded in the report (e.g. `pr7`).
    pub label: String,
}

/// Workload sizes for one suite pass.
struct Sizes {
    /// Metric-name prefix (`""` for full, `"quick/"` for the CI size).
    prefix: &'static str,
    /// Ingest: number of client streams.
    ingest_streams: u64,
    /// Ingest: logical bytes per stream.
    ingest_stream_bytes: usize,
    /// Ingest: worker-thread sweep (`_t1` must be first — it anchors the
    /// reference-chunker speedup comparison).
    threads: &'static [usize],
    /// Trace replay scale for the linux-like dataset.
    trace_scale: Scale,
    /// Restore: client streams and logical bytes per stream version (each
    /// stream backs up two overlapping versions, so restores revisit shared
    /// containers).
    restore_streams: u64,
    restore_stream_bytes: usize,
    /// Rebalance: streams and bytes per stream pre-loaded before the join.
    rebalance_streams: u64,
    rebalance_stream_bytes: usize,
    /// Recovery: logical payload bytes journaled before the replay.
    replay_payload_bytes: usize,
    /// GC: streams, generations, generations expired, initial bytes/stream.
    gc_streams: u64,
    gc_generations: usize,
    gc_expire: u64,
    gc_stream_bytes: usize,
    /// Tenant storm: tenants, clients per tenant, hot-tenant extra clients,
    /// generations, initial payload bytes per client.
    storm_tenants: usize,
    storm_clients_per_tenant: usize,
    storm_hot_extra: usize,
    storm_generations: usize,
    storm_payload_bytes: usize,
    /// Repetitions per metric; the best (max MB/s) is recorded.
    reps: usize,
}

impl Sizes {
    fn full() -> Sizes {
        Sizes {
            prefix: "",
            ingest_streams: 8,
            ingest_stream_bytes: 2 << 20,
            threads: &[1, 2, 4, 8],
            trace_scale: Scale::Tiny,
            restore_streams: 4,
            restore_stream_bytes: 1 << 20,
            rebalance_streams: 4,
            rebalance_stream_bytes: 1 << 20,
            replay_payload_bytes: 8 << 20,
            gc_streams: 4,
            gc_generations: 4,
            gc_expire: 2,
            gc_stream_bytes: 2 << 20,
            storm_tenants: 16,
            storm_clients_per_tenant: 4,
            storm_hot_extra: 8,
            storm_generations: 3,
            storm_payload_bytes: 16 << 10,
            reps: 3,
        }
    }

    fn quick() -> Sizes {
        Sizes {
            prefix: "quick/",
            ingest_streams: 4,
            ingest_stream_bytes: 256 << 10,
            threads: &[1, 4],
            trace_scale: Scale::Tiny,
            restore_streams: 2,
            restore_stream_bytes: 256 << 10,
            rebalance_streams: 2,
            rebalance_stream_bytes: 256 << 10,
            replay_payload_bytes: 2 << 20,
            gc_streams: 2,
            gc_generations: 4,
            gc_expire: 2,
            gc_stream_bytes: 512 << 10,
            storm_tenants: 8,
            storm_clients_per_tenant: 2,
            storm_hot_extra: 4,
            storm_generations: 2,
            storm_payload_bytes: 8 << 10,
            reps: 2,
        }
    }
}

/// Runs the selected suites and assembles the trajectory report.
pub fn run(opts: &RunnerOptions) -> BenchReport {
    let calibration_mbps = calibrate();
    eprintln!("calibration: {calibration_mbps:.1} MB/s (sha1 over a fixed buffer)");
    let mut metrics = Vec::new();
    let mut speedup = 0.0;
    if !opts.quick {
        speedup = suite(&Sizes::full(), &mut metrics);
    }
    let quick_speedup = suite(&Sizes::quick(), &mut metrics);
    if opts.quick {
        speedup = quick_speedup;
    }
    BenchReport {
        label: opts.label.clone(),
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        calibration_mbps,
        ingest_speedup_vs_reference: speedup,
        metrics,
    }
}

/// Fixed CPU workload (SHA-1 over 8 MiB) whose MB/s captures how fast the
/// measuring machine is; comparisons divide metrics by it so a slower CI
/// runner does not read as a code regression.
pub fn calibrate() -> f64 {
    let data = random_bytes(8 << 20, 0xCA_11B);
    best_of(3, || {
        let sw = Stopwatch::start();
        let fp = FingerprintAlgorithm::Sha1.fingerprint(&data);
        let tp = sw.stop(data.len() as u64);
        std::hint::black_box(fp);
        tp.mb_per_sec()
    })
}

/// Runs every suite at `sizes`, appending metrics, and returns the
/// single-thread optimized/reference ingest speedup measured within the pass.
fn suite(sizes: &Sizes, metrics: &mut Vec<Metric>) -> f64 {
    let speedup = ingest_suite(sizes, metrics);
    trace_suite(sizes, metrics);
    restore_suite(sizes, metrics);
    rebalance_suite(sizes, metrics);
    replay_suite(sizes, metrics);
    file_suite(sizes, metrics);
    gc_suite(sizes, metrics);
    tenant_suite(sizes, metrics);
    speedup
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(0.0, f64::max)
}

/// The CDC parameters every ingest measurement uses: small chunks so the
/// rolling-hash scan dominates and the pipeline hot path is what's measured.
fn ingest_chunker_params() -> ChunkerParams {
    ChunkerParams::cdc(1 << 10, 4 << 10, 16 << 10)
}

fn ingest_config(threads: usize) -> SigmaConfig {
    SigmaConfig::builder()
        .parallelism(threads)
        .chunker(ingest_chunker_params())
        .build()
        .expect("valid bench config")
}

fn payload_streams(sizes: &Sizes) -> Vec<StreamPayload> {
    (0..sizes.ingest_streams)
        .flat_map(|s| {
            versioned_payloads(VersionedPayloadParams {
                seed: 0xF00D + s,
                versions: 1,
                version_size: sizes.ingest_stream_bytes,
                mutation_rate: 0.05,
            })
            .into_iter()
            .map(move |(name, data)| StreamPayload::new(s, format!("u{s}/{name}"), data))
        })
        .collect()
}

/// One full ingest of `streams` into a fresh 4-node cluster; pre-dedup MB/s.
///
/// With `reference_hot_loops` the identical pipeline runs on the scalar
/// reference chunker scan and the un-unrolled reference SHA-1 — the measured
/// "before" of the hot-loop speed pass, recorded in the same process as the
/// optimized number.
fn ingest_once(threads: usize, streams: &[StreamPayload], reference_hot_loops: bool) -> f64 {
    let cluster = Arc::new(DedupCluster::with_similarity_router(
        4,
        ingest_config(threads),
    ));
    let pipeline = IngestPipeline::new(cluster.clone());
    let total: u64 = streams.iter().map(|s| s.data.len() as u64).sum();
    let sw = Stopwatch::start();
    if reference_hot_loops {
        let chunker = reference::build(&ingest_chunker_params());
        pipeline.backup_streams_with(streams.to_vec(), chunker.as_ref(), &|data| {
            sigma_hashkit::reference::ReferenceSha1::fingerprint_bytes(data)
        })
    } else {
        pipeline.backup_streams(streams.to_vec())
    }
    .expect("payload ingest cannot fail");
    cluster.flush();
    sw.stop(total).mb_per_sec()
}

/// Payload ingest sweep plus the in-run reference-chunker baseline; returns
/// the single-thread optimized/reference speedup.
fn ingest_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) -> f64 {
    let streams = payload_streams(sizes);
    let total: u64 = streams.iter().map(|s| s.data.len() as u64).sum();
    let mut t1 = 0.0;
    for &threads in sizes.threads {
        let mbps = best_of(sizes.reps, || ingest_once(threads, &streams, false));
        eprintln!("{}ingest_payload_t{threads}: {mbps:.1} MB/s", sizes.prefix);
        if threads == 1 {
            t1 = mbps;
        }
        metrics.push(Metric {
            name: format!("{}ingest_payload_t{threads}", sizes.prefix),
            mbps,
            bytes: total,
            byte_basis: ByteBasis::LogicalPreDedup,
            // Multi-thread numbers depend on host core count, so only the
            // single-thread figure gates the trajectory.
            headline: threads == 1,
        });
    }
    // Same pipeline, same cluster configuration, byte-identical boundaries and
    // digests — only the hot loops (chunker scan, SHA-1 compress) are swapped
    // for their unoptimized reference versions.
    let ref_mbps = best_of(sizes.reps, || ingest_once(1, &streams, true));
    eprintln!(
        "{}ingest_payload_reference_t1: {ref_mbps:.1} MB/s",
        sizes.prefix
    );
    metrics.push(Metric {
        name: format!("{}ingest_payload_reference_t1", sizes.prefix),
        mbps: ref_mbps,
        bytes: total,
        byte_basis: ByteBasis::LogicalPreDedup,
        headline: false,
    });
    if ref_mbps > 0.0 {
        t1 / ref_mbps
    } else {
        0.0
    }
}

/// Linux-like trace replayed through the simulation runner (no client-side
/// payload hashing; exercises routing, sharded indexes, container stores).
fn trace_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let dataset = presets::linux_dataset(sizes.trace_scale);
    let logical = dataset.logical_bytes();
    let mbps = best_of(sizes.reps, || {
        let sigma = SigmaConfig::builder().parallelism(1).build().unwrap();
        let config = SimulationConfig {
            node_count: 4,
            sigma,
            client_streams: 8,
        };
        let sw = Stopwatch::start();
        let outcome = run_cluster(
            &dataset,
            Box::new(sigma_core::SimilarityRouter::new(true)),
            &config,
        );
        let tp = sw.stop(logical);
        std::hint::black_box(outcome);
        tp.mb_per_sec()
    });
    eprintln!("{}ingest_trace_t1: {mbps:.1} MB/s", sizes.prefix);
    metrics.push(Metric {
        name: format!("{}ingest_trace_t1", sizes.prefix),
        mbps,
        bytes: logical,
        byte_basis: ByteBasis::LogicalPreDedup,
        headline: true,
    });
}

/// Restore configuration: the ingest CDC parameters with small containers, so
/// each restored file spans many sealed containers and the planner's
/// per-container batching has real extents to coalesce.  `file_root` switches
/// to the real-file backend (durable, fsynced containers on disk).
fn restore_config(file_root: Option<&std::path::Path>) -> SigmaConfig {
    let mut builder = SigmaConfig::builder()
        .parallelism(1)
        .chunker(ingest_chunker_params())
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024);
    if let Some(root) = file_root {
        builder = builder.file_storage(root);
    }
    builder.build().expect("valid bench config")
}

/// Backs up the restore payload set (two overlapping versions per stream, so
/// files share containers) and returns `(file_id, expected_bytes)` pairs.
fn restore_dataset(cluster: &Arc<DedupCluster>, sizes: &Sizes) -> Vec<(u64, Vec<u8>)> {
    let mut files = Vec::new();
    for stream in 0..sizes.restore_streams {
        let client = BackupClient::new(cluster.clone(), stream);
        for (name, data) in versioned_payloads(VersionedPayloadParams {
            seed: 0x4E57 + stream,
            versions: 2,
            version_size: sizes.restore_stream_bytes,
            mutation_rate: 0.05,
        }) {
            let report = client
                .backup_bytes(&format!("u{stream}/{name}"), &data)
                .expect("payload backup cannot fail");
            files.push((report.file_id, data));
        }
    }
    cluster.flush();
    files
}

/// Restores every file once — through the planned pipeline or the serial
/// per-chunk reference — and returns logical-restored MB/s.  Outputs are
/// verified byte-for-byte *after* the clock stops.
fn timed_restore(cluster: &DedupCluster, files: &[(u64, Vec<u8>)], pipelined: bool) -> f64 {
    let total: u64 = files.iter().map(|(_, data)| data.len() as u64).sum();
    let mut restored = Vec::with_capacity(files.len());
    let sw = Stopwatch::start();
    for (file_id, _) in files {
        let bytes = if pipelined {
            cluster
                .restore_file_pipelined(*file_id, 1)
                .expect("restore cannot fail in bench")
                .0
        } else {
            cluster
                .restore_file_reference(*file_id)
                .expect("restore cannot fail in bench")
        };
        restored.push(bytes);
    }
    let tp = sw.stop(total);
    for ((file_id, expected), got) in files.iter().zip(&restored) {
        assert!(got == expected, "restore corrupted file {file_id}");
    }
    tp.mb_per_sec()
}

/// Cold-cache restore throughput: the planned pipeline (batched container
/// reads, read cache, single-copy assembly) against the preserved serial
/// per-chunk reference, in the same process on identical data — the restore
/// analogue of the ingest reference comparison.  Every rep rebuilds the
/// cluster so the pipeline's container read cache starts cold; the reference
/// path never touches that cache, so measuring it first steals nothing from
/// the pipelined pass.  Single worker (`_t1`) for the same reason the ingest
/// headline is single-threaded: fan-out scaling depends on host core count
/// and lives in the `restore_throughput` criterion target instead.
fn restore_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let mut mem_reference = (0.0f64, 0u64);
    let mut mem_pipelined = (0.0f64, 0u64);
    let mut file_reference = (0.0f64, 0u64);
    let mut file_pipelined = (0.0f64, 0u64);
    for _ in 0..sizes.reps {
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            restore_config(None),
        ));
        let files = restore_dataset(&cluster, sizes);
        let total: u64 = files.iter().map(|(_, data)| data.len() as u64).sum();
        let mbps = timed_restore(&cluster, &files, false);
        if mbps > mem_reference.0 {
            mem_reference = (mbps, total);
        }
        let mbps = timed_restore(&cluster, &files, true);
        if mbps > mem_pipelined.0 {
            mem_pipelined = (mbps, total);
        }

        // Real-file backend: a fresh directory per rep, so the serial
        // reference issues one backend read per chunk off actual container
        // files and the pipeline's coalesced runs replace those seeks.
        let root = file_scratch();
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            2,
            restore_config(Some(&root)),
        ));
        let files = restore_dataset(&cluster, sizes);
        let mbps = timed_restore(&cluster, &files, false);
        if mbps > file_reference.0 {
            file_reference = (mbps, total);
        }
        let mbps = timed_restore(&cluster, &files, true);
        if mbps > file_pipelined.0 {
            file_pipelined = (mbps, total);
        }
        std::fs::remove_dir_all(&root).expect("scratch dir is removable");
    }
    for (name, (mbps, bytes), headline) in [
        ("restore_mem_reference_t1", mem_reference, false),
        ("restore_mem_t1", mem_pipelined, true),
        ("restore_file_reference_t1", file_reference, false),
        ("restore_file_t1", file_pipelined, true),
    ] {
        eprintln!("{}{name}: {mbps:.1} MB/s", sizes.prefix);
        metrics.push(Metric {
            name: format!("{}{name}", sizes.prefix),
            mbps,
            bytes,
            byte_basis: ByteBasis::LogicalRestored,
            headline,
        });
    }
    if file_reference.0 > 0.0 {
        eprintln!(
            "{}restore file-backend speedup vs reference: {:.2}x",
            sizes.prefix,
            file_pipelined.0 / file_reference.0
        );
    }
}

fn rebalance_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .build()
        .expect("valid bench config")
}

/// Node join then drain on a pre-populated cluster; physical container MB/s.
fn rebalance_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let mut join_best = (0.0f64, 0u64);
    let mut leave_best = (0.0f64, 0u64);
    for _ in 0..sizes.reps {
        let cluster = Arc::new(DedupCluster::with_similarity_router(4, rebalance_config()));
        for stream in 0..sizes.rebalance_streams {
            let client = BackupClient::new(cluster.clone(), stream);
            let data = random_bytes(sizes.rebalance_stream_bytes, 0xBA1A + stream);
            client
                .backup_bytes(&format!("stream-{stream}"), &data)
                .expect("payload backup cannot fail");
        }
        cluster.flush();
        let sw = Stopwatch::start();
        let (join_id, join) = cluster.add_node_rebalanced().expect("no faults in bench");
        let join_tp = sw.stop(join.bytes_moved);
        assert!(join.bytes_moved > 0, "join must migrate data");
        if join_tp.mb_per_sec() > join_best.0 {
            join_best = (join_tp.mb_per_sec(), join.bytes_moved);
        }
        let sw = Stopwatch::start();
        let leave = cluster.remove_node(join_id).expect("node is active");
        let leave_tp = sw.stop(leave.bytes_moved);
        assert!(leave.bytes_moved > 0, "drain must migrate data");
        if leave_tp.mb_per_sec() > leave_best.0 {
            leave_best = (leave_tp.mb_per_sec(), leave.bytes_moved);
        }
    }
    for (name, (mbps, bytes)) in [
        ("rebalance_join", join_best),
        ("rebalance_leave", leave_best),
    ] {
        eprintln!("{}{name}: {mbps:.1} MB/s", sizes.prefix);
        metrics.push(Metric {
            name: format!("{}{name}", sizes.prefix),
            mbps,
            bytes,
            byte_basis: ByteBasis::PhysicalMoved,
            headline: true,
        });
    }
}

fn replay_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .durability(true)
        .build()
        .expect("valid bench config")
}

/// Journals `bytes` of payload on a durable node and returns the image a
/// crash would leave behind, optionally compacted first.
fn journal_image(config: &SigmaConfig, bytes: usize, compacted: bool) -> Vec<u8> {
    let node = DedupNode::new(0, config);
    let client_chunks: Vec<Vec<u8>> = random_bytes(bytes, 0x4EC0)
        .chunks(4096)
        .map(<[u8]>::to_vec)
        .collect();
    for (i, window) in client_chunks.chunks(16).enumerate() {
        let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, i as u64, window.to_vec());
        node.process_super_chunk(0, &sc, &sc.handprint(8))
            .expect("payload ingest cannot fail");
    }
    node.try_flush().expect("no faults in bench");
    if compacted {
        node.compact_journal().expect("no faults in bench");
    }
    node.journal().expect("durable node has a journal").bytes()
}

/// Raw vs. compacted journal replay; MB/s of journal bytes consumed.
fn replay_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let config = replay_config();
    for (name, compacted) in [("replay_raw", false), ("replay_compacted", true)] {
        let image = journal_image(&config, sizes.replay_payload_bytes, compacted);
        let mbps = best_of(sizes.reps, || {
            let journal = Arc::new(Journal::from_bytes(image.clone()));
            let sw = Stopwatch::start();
            let (node, report) =
                DedupNode::recover(0, &config, journal).expect("recovery cannot fail");
            let tp = sw.stop(image.len() as u64);
            assert!(report.containers_recovered > 0);
            std::hint::black_box(node);
            tp.mb_per_sec()
        });
        eprintln!("{}{name}: {mbps:.1} MB/s", sizes.prefix);
        metrics.push(Metric {
            name: format!("{}{name}", sizes.prefix),
            mbps,
            bytes: image.len() as u64,
            byte_basis: ByteBasis::JournalBytes,
            headline: true,
        });
    }
}

/// A unique scratch directory for one file-backend pass, removed afterwards.
fn file_scratch() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sigma-bench-file-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after the epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir
}

fn file_config(root: &std::path::Path) -> SigmaConfig {
    SigmaConfig::builder()
        .parallelism(1)
        .chunker(ingest_chunker_params())
        .file_storage(root)
        .build()
        .expect("valid bench config")
}

/// Real-file backend: the payload ingest against actual `journal.wal` +
/// container files (every flush an fsync), then a full process-restart replay
/// — both nodes re-opened from nothing but their directories with
/// [`DedupNode::recover_from_dir`].  Non-headline: fsync latency on shared CI
/// runners varies with the host's storage, which the CPU-bound calibration
/// cannot normalize away; the figures are tracked, not gated.
fn file_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let streams = payload_streams(sizes);
    let total: u64 = streams.iter().map(|s| s.data.len() as u64).sum();
    let mut ingest_best = 0.0f64;
    let mut replay_best = (0.0f64, 0u64);
    for _ in 0..sizes.reps {
        let root = file_scratch();
        let config = file_config(&root);
        {
            let cluster = Arc::new(DedupCluster::with_similarity_router(2, config.clone()));
            let pipeline = IngestPipeline::new(cluster.clone());
            let sw = Stopwatch::start();
            pipeline
                .backup_streams(streams.clone())
                .expect("payload ingest cannot fail");
            cluster.flush();
            ingest_best = ingest_best.max(sw.stop(total).mb_per_sec());
        } // every in-memory handle dropped; only the directories remain
        let journal_bytes: u64 = (0..2)
            .map(|id| {
                let dir = config.node_storage_dir(id).expect("file backend has dirs");
                std::fs::metadata(dir.join("journal.wal"))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();
        let sw = Stopwatch::start();
        for id in 0..2 {
            let (node, report) =
                DedupNode::recover_from_dir(id, &config).expect("directory is recoverable");
            std::hint::black_box((node, report));
        }
        let tp = sw.stop(journal_bytes);
        if tp.mb_per_sec() > replay_best.0 {
            replay_best = (tp.mb_per_sec(), journal_bytes);
        }
        std::fs::remove_dir_all(&root).expect("scratch dir is removable");
    }
    eprintln!("{}ingest_file_t1: {ingest_best:.1} MB/s", sizes.prefix);
    metrics.push(Metric {
        name: format!("{}ingest_file_t1", sizes.prefix),
        mbps: ingest_best,
        bytes: total,
        byte_basis: ByteBasis::LogicalPreDedup,
        headline: false,
    });
    eprintln!("{}replay_file: {:.1} MB/s", sizes.prefix, replay_best.0);
    metrics.push(Metric {
        name: format!("{}replay_file", sizes.prefix),
        mbps: replay_best.0,
        bytes: replay_best.1,
        byte_basis: ByteBasis::JournalBytes,
        headline: false,
    });
}

fn gc_config() -> SigmaConfig {
    // Threshold 1.0 compacts every container holding any dead byte, so the
    // sweep reclaims all expired space deterministically — a stable basis for
    // the trajectory gate (lower thresholds reclaim an amount that depends on
    // how dead chunks happen to cluster into containers).
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .gc_liveness_threshold(1.0)
        .build()
        .expect("valid bench config")
}

/// Mark-and-sweep over a cluster with expired generations; MB/s of physical
/// bytes reclaimed.
fn gc_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let mut best = (0.0f64, 0u64);
    for _ in 0..sizes.reps {
        let cluster = Arc::new(DedupCluster::with_similarity_router(4, gc_config()));
        for stream in 0..sizes.gc_streams {
            let dataset = generational_payloads(GenerationalPayloadParams {
                seed: 0x6C_0DE ^ stream,
                generations: sizes.gc_generations,
                initial_size: sizes.gc_stream_bytes,
                mutation_rate: 0.2,
                growth_per_generation: sizes.gc_stream_bytes / 16,
            });
            for (generation, (name, data)) in dataset.iter().enumerate() {
                let client =
                    BackupClient::with_generation(cluster.clone(), stream, generation as u64);
                client
                    .backup_bytes(name, data)
                    .expect("payload backup cannot fail");
            }
        }
        cluster.flush();
        for generation in 0..sizes.gc_expire {
            cluster
                .delete_generation(generation)
                .expect("generation exists");
        }
        let sw = Stopwatch::start();
        let gc = cluster.collect_garbage().expect("no faults in bench");
        let tp = sw.stop(gc.bytes_reclaimed);
        assert!(gc.bytes_reclaimed > 0, "expiry must reclaim space");
        if tp.mb_per_sec() > best.0 {
            best = (tp.mb_per_sec(), gc.bytes_reclaimed);
        }
    }
    eprintln!("{}gc_reclaim: {:.1} MB/s", sizes.prefix, best.0);
    metrics.push(Metric {
        name: format!("{}gc_reclaim", sizes.prefix),
        mbps: best.0,
        bytes: best.1,
        byte_basis: ByteBasis::PhysicalReclaimed,
        headline: true,
    });
}

/// End-to-end multi-tenant storm through the full six-layer service stack
/// (auth, admission, quota, rate-limit, DRR fair scheduler, logging) into a
/// real cluster: generational ingest with a hot tenant, churn (delete + GC)
/// racing mid-churn restores, final byte-for-byte verification.  MB/s of the
/// live logical bytes the deterministic dataset leaves behind, over the whole
/// scenario.  Non-headline: the storm runs one thread per client, so absolute
/// MB/s depends on host core count the way the multi-thread ingest numbers do.
fn tenant_suite(sizes: &Sizes, metrics: &mut Vec<Metric>) {
    let config = TenantStormConfig {
        tenants: sizes.storm_tenants,
        clients_per_tenant: sizes.storm_clients_per_tenant,
        hot_tenant_extra_clients: sizes.storm_hot_extra,
        generations: sizes.storm_generations,
        initial_payload_bytes: sizes.storm_payload_bytes,
        growth_per_generation: sizes.storm_payload_bytes / 8,
        // No service-time floor: this metric is stack + cluster throughput,
        // not the fairness measurement (which needs the floor and lives in
        // the tenant_storm tests and CI job).
        service_time_us: 0,
        ..TenantStormConfig::default()
    };
    let mut best = (0.0f64, 0u64);
    for _ in 0..sizes.reps {
        let sw = Stopwatch::start();
        let report = run_tenant_storm(&config);
        let tp = sw.stop(report.cluster_logical_bytes);
        assert!(
            report.isolation_holds() && report.partition_holds() && report.accounting_consistent,
            "storm isolation must hold in the bench run"
        );
        if tp.mb_per_sec() > best.0 {
            best = (tp.mb_per_sec(), report.cluster_logical_bytes);
        }
    }
    eprintln!("{}tenant_storm: {:.1} MB/s", sizes.prefix, best.0);
    metrics.push(Metric {
        name: format!("{}tenant_storm", sizes.prefix),
        mbps: best.0,
        bytes: best.1,
        byte_basis: ByteBasis::LogicalPreDedup,
        headline: false,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive() {
        assert!(calibrate() > 0.0);
    }

    #[test]
    fn quick_run_produces_every_expected_metric() {
        let report = run(&RunnerOptions {
            quick: true,
            label: "test".to_string(),
        });
        assert_eq!(report.mode, "quick");
        assert!(report.calibration_mbps > 0.0);
        assert!(report.ingest_speedup_vs_reference > 0.0);
        for name in [
            "quick/ingest_payload_t1",
            "quick/ingest_payload_t4",
            "quick/ingest_payload_reference_t1",
            "quick/ingest_trace_t1",
            "quick/restore_mem_reference_t1",
            "quick/restore_mem_t1",
            "quick/restore_file_reference_t1",
            "quick/restore_file_t1",
            "quick/rebalance_join",
            "quick/rebalance_leave",
            "quick/replay_raw",
            "quick/replay_compacted",
            "quick/ingest_file_t1",
            "quick/replay_file",
            "quick/gc_reclaim",
            "quick/tenant_storm",
        ] {
            let metric = report.metric(name).unwrap_or_else(|| {
                panic!("metric {name} missing from quick report");
            });
            assert!(metric.mbps > 0.0, "{name} must measure a positive rate");
            assert!(metric.bytes > 0, "{name} must cover bytes");
        }
        // The quick report round-trips through the persisted JSON form.
        let parsed = BenchReport::from_json(&report.to_json()).expect("report parses");
        assert_eq!(parsed, report);
    }
}
