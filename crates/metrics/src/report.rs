//! Plain-text and CSV reporting helpers.
//!
//! The benches and examples print the reproduced tables/figures as aligned text
//! tables (for humans) and CSV lines (for plotting), using these helpers so that all
//! output looks consistent.

/// An aligned, plain-text table.
///
/// # Example
///
/// ```
/// use sigma_metrics::report::TextTable;
///
/// let mut t = TextTable::new(vec!["scheme", "EDR"]);
/// t.add_row(vec!["sigma".to_string(), "0.93".to_string()]);
/// t.add_row(vec!["stateless".to_string(), "0.61".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("sigma"));
/// assert!(rendered.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TextTable {
            headers: headers.into_iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are allowed
    /// (extra cells get their own width).
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }

        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(|s| s.as_str()).unwrap_or("");
                line.push_str(&format!("{:<width$}", cell, width = width));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };

        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats one CSV line, quoting cells that contain commas or quotes.
///
/// # Example
///
/// ```
/// use sigma_metrics::report::csv_line;
/// assert_eq!(csv_line(&["a", "b,c", "d\"e"]), "a,\"b,c\",\"d\"\"e\"");
/// ```
pub fn csv_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .map(|c| {
            let c = c.as_ref();
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Formats a byte count with a binary-unit suffix (e.g. `"1.5 MiB"`).
///
/// # Example
///
/// ```
/// use sigma_metrics::report::human_bytes;
/// assert_eq!(human_bytes(512), "512 B");
/// assert_eq!(human_bytes(1536 * 1024), "1.50 MiB");
/// ```
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0usize;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{} B", bytes)
    } else {
        format!("{:.2} {}", value, UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_padding() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.add_row(vec!["a-long-name".to_string(), "1".to_string()]);
        t.add_row(vec!["b".to_string()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn table_handles_rows_wider_than_header() {
        let mut t = TextTable::new(vec!["only"]);
        t.add_row(vec!["a".to_string(), "extra".to_string()]);
        let r = t.render();
        assert!(r.contains("extra"));
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_line(&["1", "2", "3"]), "1,2,3");
        assert_eq!(csv_line(&["has,comma"]), "\"has,comma\"");
        assert_eq!(csv_line(&["has\nnewline"]), "\"has\nnewline\"");
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.00 KiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }
}
