//! Routing-scheme comparison: Σ-Dedupe vs. EMC stateless/stateful routing vs.
//! Extreme Binning on the Linux-like workload across cluster sizes — a compact
//! rendition of the paper's Table 1 / Figure 7 / Figure 8 story.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example routing_comparison
//! ```

use sigma_dedupe::prelude::experiments::table1;
use sigma_dedupe::prelude::*;

fn router(name: &str) -> Box<dyn DataRouter> {
    match name {
        "sigma" => Box::new(SimilarityRouter::new(true)),
        "stateless" => Box::new(StatelessRouter::new()),
        "stateful" => Box::new(StatefulRouter::new()),
        "extreme-binning" => Box::new(ExtremeBinningRouter::new()),
        other => unreachable!("unknown scheme {other}"),
    }
}

const NODE_COUNTS: [usize; 3] = [8, 32, 128];
const CLIENT_STREAMS: usize = 8;

fn main() {
    let scale = Scale::Small;
    let dataset = presets::linux_dataset(scale);
    let sigma = SigmaConfig::default();
    // Print the full configuration up front so every number below is
    // reproducible from the output alone.
    println!("routing comparison");
    println!(
        "  workload       : {} preset, scale {:?} ({:.1} MiB logical, {} generations, exact DR {:.2})",
        dataset.name,
        scale,
        dataset.logical_bytes() as f64 / (1 << 20) as f64,
        dataset.generations.len(),
        dataset.exact_dedup_ratio()
    );
    println!(
        "  cluster sizes  : {:?} nodes, {} client streams",
        NODE_COUNTS, CLIENT_STREAMS
    );
    println!(
        "  sigma config   : {} KiB super-chunks, handprint k={}, {} chunking ({} B avg), {} MiB containers",
        sigma.super_chunk_size / 1024,
        sigma.handprint_size,
        sigma.chunker.method(),
        sigma.chunker.average_chunk_size(),
        sigma.container_capacity / (1 << 20),
    );
    println!(
        "  dedup mode     : chunk-index fallback {}, capacity balancing {}\n",
        if sigma.chunk_index_fallback {
            "on"
        } else {
            "off"
        },
        if sigma.capacity_balancing {
            "on"
        } else {
            "off"
        },
    );

    let mut table = TextTable::new(vec![
        "scheme",
        "nodes",
        "normalized DR",
        "skew",
        "NEDR",
        "lookup msgs",
        "msgs vs stateless",
    ]);

    for &nodes in &NODE_COUNTS {
        let stateless_baseline = run_cluster(
            &dataset,
            router("stateless"),
            &SimulationConfig {
                node_count: nodes,
                sigma: sigma.clone(),
                client_streams: CLIENT_STREAMS,
            },
        );
        for scheme in ["sigma", "stateless", "stateful", "extreme-binning"] {
            let summary = run_cluster(
                &dataset,
                router(scheme),
                &SimulationConfig {
                    node_count: nodes,
                    sigma: sigma.clone(),
                    client_streams: CLIENT_STREAMS,
                },
            );
            table.add_row(vec![
                scheme.to_string(),
                nodes.to_string(),
                format!("{:.3}", summary.normalized_dr()),
                format!("{:.3}", summary.skew),
                format!("{:.3}", summary.nedr()),
                summary.total_lookups().to_string(),
                format!(
                    "{:.2}x",
                    summary.total_lookups() as f64 / stateless_baseline.total_lookups() as f64
                ),
            ]);
        }
    }
    println!("{}", table.render());

    println!("derived Table 1 (measured grades, 32 nodes):\n");
    let rows = table1::run(table1::Table1Params {
        scale,
        cluster_size: 32,
    });
    println!("{}", table1::render(&rows));
}
