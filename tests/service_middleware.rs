//! Middleware-ordering and short-circuit properties of the service layer,
//! checked through the public façade:
//!
//! * an unauthorized request is rejected by the auth layer and **never
//!   reaches quota** — no reservation, no usage drift, regardless of the
//!   request mix;
//! * an over-quota request is rejected before the backend, leaving the
//!   cluster's logical *and* physical accounting untouched;
//! * the logging layer observes **exactly one** entry per request, error
//!   paths included, and both transports agree byte-for-byte.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use std::sync::Arc;

fn small_cluster() -> Arc<DedupCluster> {
    let config = SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(32 * 1024)
        .build()
        .expect("valid config");
    Arc::new(DedupCluster::with_similarity_router(2, config))
}

fn backup_req(id: u64, tenant: &str, bytes: usize) -> RequestEnvelope {
    RequestEnvelope::new(
        id,
        tenant,
        Operation::Backup {
            file_name: format!("f{}", id),
            generation: 0,
        },
    )
    .with_payload(vec![(id % 251) as u8; bytes])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Auth is outermost: whatever the request mix, unauthorized requests are
    /// answered before the quota layer sees them, so the quota's usage figure
    /// equals exactly the sum of *authorized* ingests.
    #[test]
    fn auth_rejections_never_reach_quota(
        sizes in proptest::collection::vec(1usize..2048, 1..16),
        auth_mask in any::<u32>(),
    ) {
        let quota = Arc::new(TenantQuota::new()); // unlimited, tracks usage
        let stack = ServiceBuilder::new()
            .auth(TokenAuth::new().tenant("acme", "s3cret"))
            .layer(quota.clone())
            .build(small_cluster());

        let mut authorized_bytes = 0u64;
        for (i, &bytes) in sizes.iter().enumerate() {
            let authorized = (auth_mask >> (i % 32)) & 1 == 1;
            let mut req = backup_req(i as u64, "acme", bytes);
            if authorized {
                req = req.with_token("s3cret");
                authorized_bytes += bytes as u64;
            } else if i % 2 == 0 {
                req = req.with_token("wrong");
            } // odd unauthorized requests carry no token at all
            let resp = stack.call(req);
            if authorized {
                prop_assert!(resp.is_ok(), "{}", resp.message);
            } else {
                prop_assert_eq!(resp.code, ServiceCode::Unauthorized);
            }
        }
        prop_assert_eq!(quota.usage("acme"), authorized_bytes,
            "quota saw only authorized ingests");
    }

    /// Quota admission happens before the backend: a rejected request leaves
    /// both logical and physical cluster accounting exactly where they were.
    #[test]
    fn quota_rejection_leaves_cluster_accounting_untouched(
        budget in 1u64..4096,
        overshoot in 1u64..4096,
    ) {
        let cluster = small_cluster();
        let stack = ServiceBuilder::new()
            .auth(TokenAuth::new().tenant("acme", "s3cret"))
            .quota(TenantQuota::new().budget("acme", budget))
            .build(cluster.clone());

        // Fill part of the budget legitimately so the cluster is non-empty.
        let within = (budget / 2).max(1) as usize;
        let ok = stack.call(backup_req(1, "acme", within).with_token("s3cret"));
        prop_assert!(ok.is_ok(), "{}", ok.message);
        cluster.flush();

        let logical_before = cluster.logical_bytes();
        let physical_before = cluster.physical_bytes();

        let req_bytes = (budget - within as u64 + overshoot) as usize;
        let over = stack.call(backup_req(2, "acme", req_bytes).with_token("s3cret"));
        prop_assert_eq!(over.code, ServiceCode::ResourceExhausted);

        cluster.flush();
        prop_assert_eq!(cluster.logical_bytes(), logical_before,
            "rejected ingest routed no logical bytes");
        prop_assert_eq!(cluster.physical_bytes(), physical_before,
            "rejected ingest stored no physical bytes");
    }

    /// The logging layer records exactly one entry per request — successes,
    /// envelope rejections from inner layers, and backend errors alike.
    #[test]
    fn logging_observes_exactly_one_entry_per_request(
        kinds in proptest::collection::vec(0u8..3, 1..24),
    ) {
        let log = Arc::new(RequestLog::new());
        let stack = ServiceBuilder::new()
            .logging_with(log.clone()) // outermost: sees every outcome
            .auth(TokenAuth::new().tenant("acme", "s3cret"))
            .build(small_cluster());

        for (i, kind) in kinds.iter().enumerate() {
            let id = i as u64;
            let (req, expected) = match kind {
                // A successful stats call.
                0 => (
                    RequestEnvelope::new(id, "acme", Operation::Stats).with_token("s3cret"),
                    ServiceCode::Ok,
                ),
                // Rejected by the auth middleware.
                1 => (
                    RequestEnvelope::new(id, "acme", Operation::Stats),
                    ServiceCode::Unauthorized,
                ),
                // Passes auth, fails in the backend.
                _ => (
                    RequestEnvelope::new(id, "acme", Operation::Restore { file_id: 999_999 })
                        .with_token("s3cret"),
                    ServiceCode::NotFound,
                ),
            };
            let resp = stack.call(req);
            prop_assert_eq!(resp.code, expected);
            prop_assert_eq!(resp.request_id, id);
        }

        let entries = log.entries();
        prop_assert_eq!(entries.len(), kinds.len(), "one entry per request");
        for (entry, kind) in entries.iter().zip(&kinds) {
            let expected = match kind {
                0 => ServiceCode::Ok,
                1 => ServiceCode::Unauthorized,
                _ => ServiceCode::NotFound,
            };
            prop_assert_eq!(entry.code, expected);
        }
        // The metrics registry agrees with the log.
        let total: u64 = log.metrics().values().map(|s| s.count).sum();
        prop_assert_eq!(total as usize, kinds.len());
    }
}

/// The full default stack admits an authorized, within-quota backup and
/// restores it byte-identically; quota usage then reflects the cluster's
/// delete accounting when the file is removed and collected.
#[test]
fn default_stack_end_to_end_with_delete_credit() {
    let cluster = small_cluster();
    let quota = Arc::new(TenantQuota::new().budget("acme", 1 << 20));
    let stack = ServiceBuilder::new()
        .auth(TokenAuth::new().tenant("acme", "s3cret"))
        .layer(quota.clone())
        .rate_limit(RateLimit::new(100, 100.0))
        .logging()
        .build(cluster.clone());

    let payload: Vec<u8> = (0..60_000usize).map(|i| (i * 31 % 251) as u8).collect();
    let backup = stack.call(
        backup_req(1, "acme", 0)
            .with_payload(payload.clone())
            .with_token("s3cret"),
    );
    assert!(backup.is_ok(), "{}", backup.message);
    assert_eq!(quota.usage("acme"), payload.len() as u64);

    let file_id = backup
        .metadata_u64(sigma_dedupe::service::backend::FILE_ID_KEY)
        .expect("backup reports file_id");
    let restored = stack
        .call(RequestEnvelope::new(2, "acme", Operation::Restore { file_id }).with_token("s3cret"));
    assert_eq!(restored.payload, payload, "byte-identical restore");

    let deleted = stack.call(
        RequestEnvelope::new(3, "acme", Operation::DeleteFile { file_id }).with_token("s3cret"),
    );
    assert!(deleted.is_ok(), "{}", deleted.message);
    assert_eq!(
        quota.usage("acme"),
        0,
        "delete's freed_bytes credited back to the tenant budget"
    );

    let log = stack.log().expect("logging layer present");
    assert_eq!(log.len(), 3);
    assert!(log.entries().iter().all(|e| e.code == ServiceCode::Ok));
}
