//! Property tests for multi-tenant isolation and accounting through the full
//! service stack (auth → admission → quota → rate-limit → fair-scheduler).
//!
//! Three properties plus two edge-case suites:
//!
//! * **partition** — for random tenant/file/overlap shapes, per-tenant live
//!   logical bytes always sum to exactly the cluster's logical total, before
//!   churn, after deletes and after garbage collection; foreign file IDs read
//!   as `NotFound` no matter how much physical data tenants share.
//! * **storm shapes** — random reductions of the tenant-storm scenario
//!   (including churn) keep byte-level isolation, the partition invariant and
//!   cumulative accounting (`live == ingested − freed`) regardless of shape.
//! * **quota round-trip** — deleting through the real backend returns the
//!   file's logical bytes to the tenant's budget exactly once, even when the
//!   delete envelope is replayed by a retrying transport.
//!
//! `SIGMA_FAULT_SEED` perturbs the payload seeds so the CI matrix explores
//! different workloads with the same deterministic harness.

use proptest::prelude::*;
use sigma_dedupe::prelude::*;
use sigma_dedupe::service::backend::{FILE_ID_KEY, FREED_BYTES_KEY};
use std::sync::Arc;

/// Extra seed from the environment so a CI matrix varies the workloads.
fn env_seed() -> u64 {
    std::env::var("SIGMA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Deterministic pseudo-random payload, perturbed by `SIGMA_FAULT_SEED`.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut state = (seed ^ env_seed().wrapping_mul(0x9E37_79B9)).wrapping_mul(0x2545_F491) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn tenant(t: usize) -> String {
    format!("tenant-{t:02}")
}

fn token(t: usize) -> String {
    format!("token-{t}")
}

/// The full six-layer production stack over a real cluster, with the quota
/// and backend handles kept out for assertions.
struct Harness {
    stack: ServiceStack,
    service: Arc<BackupService>,
    quota: Arc<TenantQuota>,
    cluster: Arc<DedupCluster>,
    next_id: std::cell::Cell<u64>,
}

impl Harness {
    fn new(tenants: usize, budget: u64) -> Harness {
        let cluster = Arc::new(DedupCluster::with_similarity_router(
            3,
            SigmaConfig::builder()
                .super_chunk_size(16 * 1024)
                .container_capacity(64 * 1024)
                .build()
                .expect("valid test config"),
        ));
        let service = Arc::new(BackupService::new(cluster.clone()));
        let mut auth = TokenAuth::new();
        let mut quota = TenantQuota::new();
        for t in 0..tenants {
            auth = auth.tenant(tenant(t), token(t));
            quota = quota.budget(tenant(t), budget);
        }
        let quota = Arc::new(quota);
        let stack = ServiceBuilder::new()
            .auth(auth)
            .admission(AdmissionControl::new(64, 64 << 20))
            .layer(quota.clone())
            .rate_limit(RateLimit::new(1 << 20, (1 << 20) as f64))
            .fair_scheduler_with(Arc::new(FairScheduler::new(64 << 10, 8 << 20, 4)))
            .build_with_backend(service.clone());
        Harness {
            stack,
            service,
            quota,
            cluster,
            next_id: std::cell::Cell::new(1),
        }
    }

    fn call(&self, t: usize, op: Operation, payload: Vec<u8>) -> ResponseEnvelope {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let mut req = RequestEnvelope::new(id, tenant(t), op).with_token(token(t));
        if !payload.is_empty() {
            req = req.with_payload(payload);
        }
        self.stack.call(req)
    }

    fn backup(&self, t: usize, name: &str, data: &[u8]) -> u64 {
        let resp = self.call(
            t,
            Operation::Backup {
                file_name: name.to_string(),
                generation: 0,
            },
            data.to_vec(),
        );
        assert!(
            resp.is_ok(),
            "backup rejected: {:?} {}",
            resp.code,
            resp.message
        );
        resp.metadata_u64(FILE_ID_KEY).expect("backup returns id")
    }

    /// Σ per-tenant live logical bytes, straight from the service's stats.
    fn sum_live(&self) -> u64 {
        self.service
            .tenant_stats()
            .values()
            .map(|r| r.live_logical_bytes)
            .sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-tenant live logical bytes partition the cluster's logical total at
    /// every lifecycle step, and a tenant's file IDs are invisible to every
    /// other tenant — even when overlapping payloads make them share all
    /// their physical chunks.
    #[test]
    fn tenant_live_bytes_partition_the_cluster(
        tenants in 2usize..5,
        files_per_tenant in 1usize..4,
        payload_kib in 4usize..33,
        overlap in 0usize..2,
    ) {
        let h = Harness::new(tenants, 1 << 30);

        // Ingest: identical datasets across tenants when overlapping (chunks
        // dedupe cluster-wide), unique ones otherwise.
        let mut owned: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); tenants];
        for (t, owned_t) in owned.iter_mut().enumerate() {
            for f in 0..files_per_tenant {
                let seed = if overlap == 1 { f as u64 } else { (t * 100 + f) as u64 };
                let data = payload(payload_kib * 1024, 0xB0B + seed);
                let id = h.backup(t, &format!("file-{f}"), &data);
                owned_t.push((id, data));
            }
        }
        h.cluster.flush();

        // Accounting: every tenant's report is exact, and the live bytes
        // partition the cluster's logical total.
        let per_tenant_logical = (files_per_tenant * payload_kib * 1024) as u64;
        for t in 0..tenants {
            let report = h.service.tenant_stats_for(&tenant(t));
            prop_assert_eq!(report.logical_bytes, per_tenant_logical);
            prop_assert_eq!(report.live_logical_bytes, per_tenant_logical);
            prop_assert_eq!(report.freed_bytes, 0);
            prop_assert_eq!(report.files, files_per_tenant as u64);
            prop_assert_eq!(h.quota.usage(&tenant(t)), per_tenant_logical);
        }
        prop_assert_eq!(h.sum_live(), h.cluster.stats().logical_bytes);
        if overlap == 1 && tenants > 1 {
            prop_assert!(
                h.cluster.stats().physical_bytes < h.sum_live(),
                "overlapping tenants must share chunks"
            );
        }

        // Isolation: owners restore byte-identically, everyone else gets
        // NotFound for the same IDs.
        for (t, owned_t) in owned.iter().enumerate() {
            for (id, data) in owned_t {
                let own = h.call(t, Operation::Restore { file_id: *id }, Vec::new());
                prop_assert!(own.is_ok());
                prop_assert_eq!(&own.payload, data);
                let probe = h.call((t + 1) % tenants, Operation::Restore { file_id: *id }, Vec::new());
                prop_assert_eq!(
                    probe.code,
                    ServiceCode::NotFound,
                    "tenant {} saw tenant {}'s file {}",
                    (t + 1) % tenants, t, id
                );
            }
        }

        // Churn tenant 0: delete one file, collect garbage, re-check the
        // partition and everyone else's bytes.
        let (deleted_id, _) = owned[0][0].clone();
        let del = h.call(0, Operation::DeleteFile { file_id: deleted_id }, Vec::new());
        prop_assert!(del.is_ok());
        let freed = del.metadata_u64(FREED_BYTES_KEY).expect("delete reports freed bytes");
        prop_assert_eq!(freed, (payload_kib * 1024) as u64);
        let gc = h.call(0, Operation::CollectGarbage, Vec::new());
        prop_assert!(gc.is_ok());

        let report = h.service.tenant_stats_for(&tenant(0));
        prop_assert_eq!(report.freed_bytes, freed);
        prop_assert_eq!(report.live_logical_bytes, per_tenant_logical - freed);
        prop_assert_eq!(h.quota.usage(&tenant(0)), per_tenant_logical - freed);
        prop_assert_eq!(h.sum_live(), h.cluster.stats().logical_bytes);

        let gone = h.call(0, Operation::Restore { file_id: deleted_id }, Vec::new());
        prop_assert_eq!(gone.code, ServiceCode::NotFound, "deleted file must stay deleted");
        for (t, owned_t) in owned.iter().enumerate().skip(1) {
            for (id, data) in owned_t {
                let resp = h.call(t, Operation::Restore { file_id: *id }, Vec::new());
                prop_assert!(resp.is_ok(), "tenant 0's churn broke tenant {}'s file {}", t, id);
                prop_assert_eq!(&resp.payload, data);
            }
        }
    }

    /// Random reductions of the tenant storm — concurrent clients, hot
    /// tenant, churn — always preserve isolation, the partition invariant and
    /// cumulative accounting, whatever the shape.  (Fairness needs realistic
    /// service times and is asserted by the storm's own suite, not here.)
    #[test]
    fn storm_shapes_preserve_isolation_and_accounting(
        tenants in 2usize..5,
        clients_per_tenant in 1usize..3,
        hot_extra in 0usize..3,
        generations in 1usize..3,
        churn_every in 0usize..3,
    ) {
        let config = TenantStormConfig {
            tenants,
            clients_per_tenant,
            hot_tenant_extra_clients: hot_extra,
            generations,
            initial_payload_bytes: 4 * 1024,
            growth_per_generation: 1024,
            overlap_group: 2,
            churn_every,
            seed: 0x150 ^ env_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15),
            service_time_us: 0,
            ..TenantStormConfig::default()
        };
        let report = run_tenant_storm(&config);
        prop_assert_eq!(report.backups, config.total_clients() * generations);
        prop_assert!(
            report.isolation_holds(),
            "restores {}/{}, expired {}/{}, probes {}/{}",
            report.intact_restores, report.expected_restores,
            report.expired_unreachable, report.expired_files,
            report.foreign_probes_isolated, report.foreign_probes
        );
        prop_assert!(
            report.partition_holds(),
            "Σ live {} != cluster logical {}",
            report.sum_tenant_live_bytes, report.cluster_logical_bytes
        );
        prop_assert!(report.accounting_consistent);
    }
}

/// Deleting through the real backend credits the freed logical bytes back to
/// the tenant's quota exactly once; a replayed delete envelope (same request
/// id, retrying transport) cannot mint extra budget.
#[test]
fn delete_credits_quota_exactly_once_end_to_end() {
    let size = 32 * 1024;
    let h = Harness::new(1, 2 * size as u64);
    let data = payload(size, 0xC4ED17);
    let id = h.backup(0, "victim", &data);
    h.cluster.flush();
    assert_eq!(h.quota.usage(&tenant(0)), size as u64);

    // One more backup fits; a third would not (budget is 2 files).
    let second = h.backup(0, "second", &payload(size, 0xC4ED18));
    assert_eq!(h.quota.usage(&tenant(0)), 2 * size as u64);
    let over = h.call(
        0,
        Operation::Backup {
            file_name: "third".into(),
            generation: 0,
        },
        payload(size, 0xC4ED19),
    );
    assert_eq!(over.code, ServiceCode::ResourceExhausted);

    // Delete the first file: its logical bytes come back to the budget.
    let delete = RequestEnvelope::new(999, tenant(0), Operation::DeleteFile { file_id: id })
        .with_token(token(0));
    let resp = h.stack.call(delete.clone());
    assert!(resp.is_ok(), "{}", resp.message);
    assert_eq!(resp.metadata_u64(FREED_BYTES_KEY), Some(size as u64));
    assert_eq!(h.quota.usage(&tenant(0)), size as u64);

    // The transport lost the response and replays the very same envelope:
    // the file is already gone, and the budget must not move again.
    let replay = h.stack.call(delete);
    assert_eq!(replay.code, ServiceCode::NotFound);
    assert_eq!(
        h.quota.usage(&tenant(0)),
        size as u64,
        "replayed delete must not change the budget"
    );

    // The freed budget is real: a new file of the same size fits again.
    let third = h.backup(0, "third", &payload(size, 0xC4ED1A));
    assert_eq!(h.quota.usage(&tenant(0)), 2 * size as u64);
    assert_ne!(third, second);
}

/// A tenant's credentials only reach its own namespace: deletes aimed at a
/// foreign file ID fail, and tenant-scoped generation expiry leaves other
/// tenants' files alone.
#[test]
fn foreign_credentials_cannot_delete_across_tenants() {
    let h = Harness::new(2, 1 << 30);
    let data = payload(24 * 1024, 0x150_1A7E);
    let id = h.backup(0, "mine", &data);
    // Identical payload: the two tenants share every physical chunk.
    let other = h.backup(1, "theirs", &data);
    h.cluster.flush();

    // Tenant 1 aims straight at tenant 0's file ID.
    let stab = h.call(1, Operation::DeleteFile { file_id: id }, Vec::new());
    assert_eq!(stab.code, ServiceCode::NotFound);

    // Tenant 1 expires its whole generation 0 and sweeps: only *its* file
    // goes, even though every chunk is shared with tenant 0.
    let expire = h.call(1, Operation::DeleteGeneration { generation: 0 }, Vec::new());
    assert!(expire.is_ok(), "{}", expire.message);
    assert_eq!(
        expire.metadata_u64(FREED_BYTES_KEY),
        Some(24 * 1024),
        "expiry frees exactly tenant 1's logical bytes"
    );
    let gc = h.call(1, Operation::CollectGarbage, Vec::new());
    assert!(gc.is_ok());
    let gone = h.call(1, Operation::Restore { file_id: other }, Vec::new());
    assert_eq!(gone.code, ServiceCode::NotFound);

    // Tenant 0's file is untouched.
    let resp = h.call(0, Operation::Restore { file_id: id }, Vec::new());
    assert!(resp.is_ok());
    assert_eq!(resp.payload, data);
    assert_eq!(
        h.service.tenant_stats_for(&tenant(0)).live_logical_bytes,
        24 * 1024
    );
    assert_eq!(h.service.tenant_stats_for(&tenant(1)).live_logical_bytes, 0);
}
