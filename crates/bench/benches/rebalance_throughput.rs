//! Rebalance throughput: how fast the elasticity subsystem migrates data.
//!
//! Not a figure of the paper — the paper's clusters are static — but the metric
//! that matters once membership is elastic: MB/s of sealed-container migration
//! when a node joins (`rebalance_onto`) and when a node leaves (`remove_node`
//! drain), including the chunk-index and similarity-index re-homing and the
//! forwarding-tombstone bookkeeping.
//!
//! The banner prints a one-shot join/leave migration table at a reporting scale
//! (driven by the same churn scenario the simulation crate tests), then criterion
//! measures a full join+leave round trip on a pre-populated cluster: add a node,
//! migrate onto it until it holds the cluster mean, then drain it back out.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sigma_core::{BackupClient, DedupCluster, SigmaConfig};
use sigma_simulation::churn::{run_churn, ChurnConfig};
use std::sync::Arc;

const STREAMS: usize = 4;
const STREAM_BYTES: usize = 1 << 20;

fn bench_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(64 * 1024)
        .container_capacity(256 * 1024)
        .build()
        .expect("valid bench config")
}

/// A 4-node cluster pre-loaded with `STREAMS` distinct payload streams.
fn populated_cluster() -> Arc<DedupCluster> {
    let cluster = Arc::new(DedupCluster::with_similarity_router(4, bench_config()));
    for stream in 0..STREAMS as u64 {
        let client = BackupClient::new(cluster.clone(), stream);
        let data = sigma_workloads::payload::random_bytes(STREAM_BYTES, 0xBA1A + stream);
        client
            .backup_bytes(&format!("stream-{stream}"), &data)
            .expect("payload backup cannot fail");
    }
    cluster.flush();
    cluster
}

fn report() {
    sigma_bench::banner(
        "rebalance throughput",
        "container migration MB/s for node join and node leave",
    );
    let mut table = sigma_metrics::report::TextTable::new(vec![
        "migration",
        "containers",
        "bytes moved",
        "MB/s",
    ]);

    // Join: measure `add_node_rebalanced` on a populated cluster.
    let cluster = populated_cluster();
    let sw = sigma_metrics::Stopwatch::start();
    let (join_id, join) = cluster.add_node_rebalanced().expect("no faults in bench");
    let join_tp = sw.stop(join.bytes_moved);
    table.add_row(vec![
        "join (rebalance_onto)".to_string(),
        join.containers_moved.to_string(),
        join.bytes_moved.to_string(),
        format!("{:.1}", join_tp.mb_per_sec()),
    ]);

    // Leave: drain the node that just joined.
    let sw = sigma_metrics::Stopwatch::start();
    let leave = cluster.remove_node(join_id).expect("node is active");
    let leave_tp = sw.stop(leave.bytes_moved);
    table.add_row(vec![
        "leave (remove_node)".to_string(),
        leave.containers_moved.to_string(),
        leave.bytes_moved.to_string(),
        format!("{:.1}", leave_tp.mb_per_sec()),
    ]);
    sigma_bench::print_table("rebalance migration throughput", &table.render());

    // End-to-end churn scenario (backup, join, backup, leave, restore-verify).
    let outcome = run_churn(&ChurnConfig::default());
    assert!(outcome.all_restored(), "churn scenario must restore intact");
    assert!(
        outcome.bytes_conserved(),
        "churn scenario must conserve bytes"
    );
    let mut churn_table =
        sigma_metrics::report::TextTable::new(vec!["phase", "gen", "nodes", "physical MiB", "DR"]);
    for phase in &outcome.phases {
        churn_table.add_row(vec![
            phase.label.to_string(),
            phase.generation.to_string(),
            phase.node_count.to_string(),
            format!("{:.2}", phase.physical_bytes as f64 / (1 << 20) as f64),
            format!("{:.2}", phase.dedup_ratio),
        ]);
    }
    sigma_bench::print_table(
        "churn scenario (all restores byte-identical, bytes conserved)",
        &churn_table.render(),
    );
}

fn bench(c: &mut Criterion) {
    report();

    let cluster = populated_cluster();
    // Probe one round trip for the *actual* migration volume: the join moves
    // containers onto the new node and the drain moves them back out, so the
    // byte basis is the sum of both directions in physical (post-dedup)
    // container bytes — not logical client bytes, and not a guessed share of
    // the cluster's physical footprint.
    let (probe_id, probe_join) = cluster.add_node_rebalanced().expect("no faults in bench");
    let probe_leave = cluster.remove_node(probe_id).expect("node is active");
    let round_trip_bytes = probe_join.bytes_moved + probe_leave.bytes_moved;
    let mut group = c.benchmark_group("rebalance");
    group.throughput(Throughput::Bytes(round_trip_bytes.max(1)));
    group.sample_size(10);
    group.bench_function("join_leave_round_trip", |b| {
        b.iter(|| {
            let (id, join) = cluster.add_node_rebalanced().expect("no faults in bench");
            let leave = cluster.remove_node(id).expect("node is active");
            (join.bytes_moved, leave.bytes_moved)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
