//! Membership churn under the baseline routing schemes.
//!
//! The elastic-membership suite exercised `sigma` routing only; the baselines
//! (`chunk_dht`, `extreme_binning`, `stateful`) route by entirely different
//! state, so a shared churn fixture drives each through the same
//! add-node / remove-node storm and asserts the two things routing must never
//! break:
//!
//! * **restore correctness** — every file from every phase restores
//!   byte-identically during and after the churn, with physical bytes conserved
//!   by both migrations;
//! * **message-count invariants** — the scheme's defining overhead shape
//!   survives churn: stateless schemes stay at zero pre-routing lookups no
//!   matter how membership moves, while the stateful broadcast keeps contacting
//!   every *active* node (so its per-super-chunk cost tracks the live node
//!   count, not the historical one).

use sigma_dedupe::prelude::*;
use std::sync::Arc;

const INITIAL_NODES: usize = 3;
const STREAMS: u64 = 3;
const STREAM_BYTES: usize = 96 * 1024;

fn churn_config() -> SigmaConfig {
    SigmaConfig::builder()
        .super_chunk_size(8 * 1024)
        .chunker(ChunkerParams::fixed(1024))
        .container_capacity(16 * 1024)
        .cache_containers(8)
        .build()
        .expect("valid churn config")
}

fn stream_payload(stream: u64, generation: u64) -> Vec<u8> {
    // Two generations share most content (the second mutates one byte per
    // 4 KB region) so the post-churn wave must deduplicate across migrations.
    let mut state = stream.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut data: Vec<u8> = (0..STREAM_BYTES)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect();
    if generation > 0 {
        for region in data.chunks_mut(4096) {
            region[0] = region[0].wrapping_add(generation as u8);
        }
    }
    data
}

struct ChurnRun {
    cluster: Arc<DedupCluster>,
    files: Vec<(u64, Vec<u8>)>,
    /// Super-chunks routed and pre-routing messages per phase:
    /// `(supers, prerouting_lookups, nodes_contacted)` before the join and at
    /// the end.
    phase_messages: Vec<(u64, u64, u64)>,
}

/// The shared fixture: backup → join+rebalance → backup → drain an original
/// node → verify everything, recording message counters at each phase edge.
fn run_churn(router: Box<dyn DataRouter>) -> ChurnRun {
    let cluster = Arc::new(DedupCluster::new(INITIAL_NODES, churn_config(), router));
    let clients: Vec<BackupClient> = (0..STREAMS)
        .map(|s| BackupClient::new(cluster.clone(), s))
        .collect();
    let mut files = Vec::new();
    let mut phase_messages = Vec::new();
    let snapshot_messages = |cluster: &DedupCluster| {
        let m = cluster.stats().messages;
        (
            m.super_chunks_routed,
            m.prerouting_lookups,
            m.nodes_contacted,
        )
    };

    // Phase 1 on the initial cluster.
    for (s, client) in clients.iter().enumerate() {
        let data = stream_payload(s as u64, 0);
        let report = client
            .backup_bytes(&format!("gen0-{s}"), &data)
            .expect("payload backup cannot fail");
        files.push((report.file_id, data));
    }
    cluster.flush();
    phase_messages.push(snapshot_messages(&cluster));
    let physical_after_gen0 = cluster.stats().physical_bytes;

    // Scale out mid-workload; restores must hold immediately.
    let (joined, join) = cluster
        .add_node_rebalanced()
        .expect("no fault injection here");
    assert!(
        join.containers_moved > 0,
        "join rebalance must move containers for {}",
        cluster.router_name()
    );
    assert_eq!(
        cluster.stats().physical_bytes,
        physical_after_gen0,
        "join migration must conserve bytes for {}",
        cluster.router_name()
    );
    for (file_id, expected) in &files {
        assert_eq!(
            &cluster.restore_file(*file_id).unwrap(),
            expected,
            "restore during churn broke for {}",
            cluster.router_name()
        );
    }

    // Phase 2 against the grown cluster (mutated generation deduplicates).
    for (s, client) in clients.iter().enumerate() {
        let data = stream_payload(s as u64, 1);
        let report = client
            .backup_bytes(&format!("gen1-{s}"), &data)
            .expect("payload backup cannot fail");
        files.push((report.file_id, data));
    }
    cluster.flush();

    // Scale in: drain one of the *original* nodes, so recipes from both waves
    // must follow its tombstones from now on.
    let victim = cluster
        .node_ids()
        .into_iter()
        .find(|&id| id != joined)
        .expect("an original node is active");
    let physical_before_leave = cluster.stats().physical_bytes;
    cluster.remove_node(victim).expect("cluster keeps 3 nodes");
    assert_eq!(
        cluster.stats().physical_bytes,
        physical_before_leave,
        "drain must conserve bytes for {}",
        cluster.router_name()
    );
    phase_messages.push(snapshot_messages(&cluster));

    ChurnRun {
        cluster,
        files,
        phase_messages,
    }
}

fn assert_all_restore(run: &ChurnRun) {
    assert_eq!(run.files.len(), 2 * STREAMS as usize);
    for (file_id, expected) in &run.files {
        assert_eq!(
            &run.cluster.restore_file(*file_id).unwrap(),
            expected,
            "file {} corrupted under {} churn",
            file_id,
            run.cluster.router_name()
        );
    }
}

#[test]
fn chunk_dht_survives_churn_with_zero_prerouting_messages() {
    let run = run_churn(Box::new(ChunkDhtRouter::new()));
    assert_all_restore(&run);
    // DHT placement consults nobody — before, during or after churn.
    let (supers, prerouting, contacted) = *run.phase_messages.last().unwrap();
    assert!(supers > 0);
    assert_eq!(prerouting, 0, "chunk-dht never sends pre-routing lookups");
    assert_eq!(contacted, 0, "chunk-dht never contacts remote nodes");
}

#[test]
fn extreme_binning_survives_churn_and_keeps_files_in_their_bins() {
    let run = run_churn(Box::new(ExtremeBinningRouter::new()));
    assert_all_restore(&run);
    let (supers, prerouting, contacted) = *run.phase_messages.last().unwrap();
    assert!(supers > 0);
    assert_eq!(prerouting, 0, "extreme binning routes statelessly by file");
    assert_eq!(contacted, 0);
    // The batched duplicate-or-unique query at the target still costs one
    // lookup per chunk, exactly as for every other scheme.
    let m = run.cluster.stats().messages;
    assert!(m.postrouting_lookups >= supers, "per-chunk target lookups");
}

#[test]
fn stateful_broadcast_tracks_the_active_node_count_through_churn() {
    let run = run_churn(Box::new(StatefulRouter::new()));
    assert_all_restore(&run);

    // Phase 1 ran on 3 nodes: every super-chunk broadcast to exactly 3.
    let (supers_gen0, prerouting_gen0, contacted_gen0) = run.phase_messages[0];
    assert!(supers_gen0 > 0);
    assert!(prerouting_gen0 > 0, "stateful always asks the cluster");
    assert_eq!(
        contacted_gen0,
        supers_gen0 * INITIAL_NODES as u64,
        "every pre-churn super-chunk consults every initial node"
    );

    // Phase 2 ran on 4 nodes (after the join): the per-super-chunk broadcast
    // widened with the membership, and narrows again after the leave — the
    // defining linear-overhead shape of Figure 7, now under churn.
    let (supers_end, prerouting_end, contacted_end) = *run.phase_messages.last().unwrap();
    let supers_gen1 = supers_end - supers_gen0;
    assert!(supers_gen1 > 0);
    assert_eq!(
        contacted_end - contacted_gen0,
        supers_gen1 * (INITIAL_NODES as u64 + 1),
        "every post-join super-chunk consults every active node"
    );
    assert!(prerouting_end > prerouting_gen0);
}
