//! Super-chunks: the coarse-grained unit of data routing.
//!
//! A super-chunk (the term is borrowed from EMC's data-routing work the paper builds
//! on) is a group of consecutive chunks, 1 MB worth by default.  Routing whole
//! super-chunks instead of individual chunks preserves the locality of the backup
//! stream inside one node — the paper's key intra-node performance lever — while the
//! handprint computed over a super-chunk captures enough similarity for the stateful
//! routing decision.

use crate::Handprint;
use serde::{Deserialize, Serialize};
use sigma_hashkit::{Fingerprint, FingerprintAlgorithm};

/// Fingerprint and size of one chunk (the form in which chunks travel once the
/// client has fingerprinted them, and the only form needed in trace-driven mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChunkDescriptor {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// The chunk's length in bytes.
    pub len: u32,
}

impl ChunkDescriptor {
    /// Creates a descriptor.
    pub fn new(fingerprint: Fingerprint, len: u32) -> Self {
        ChunkDescriptor { fingerprint, len }
    }
}

/// A group of consecutive chunks routed (and deduplicated) together.
///
/// A super-chunk may carry the chunk payloads (real backup traffic) or only the
/// descriptors (trace-driven simulation); [`SuperChunk::has_payloads`] tells which.
///
/// # Example
///
/// ```
/// use sigma_core::SuperChunk;
/// use sigma_hashkit::FingerprintAlgorithm;
///
/// let chunks: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 1024]).collect();
/// let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 0, chunks);
/// assert_eq!(sc.chunk_count(), 4);
/// assert_eq!(sc.logical_size(), 4096);
/// let handprint = sc.handprint(2);
/// assert_eq!(handprint.size(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperChunk {
    /// Offset of the super-chunk within its stream (bytes).
    offset: u64,
    descriptors: Vec<ChunkDescriptor>,
    /// Parallel to `descriptors`; empty when operating on descriptors only.
    payloads: Vec<Vec<u8>>,
}

impl SuperChunk {
    /// Builds a super-chunk from descriptors only (no payloads).
    pub fn from_descriptors(offset: u64, descriptors: Vec<ChunkDescriptor>) -> Self {
        SuperChunk {
            offset,
            descriptors,
            payloads: Vec::new(),
        }
    }

    /// Builds a super-chunk from raw chunk payloads, fingerprinting each with
    /// `algorithm`.
    pub fn from_payloads(
        algorithm: FingerprintAlgorithm,
        offset: u64,
        chunks: Vec<Vec<u8>>,
    ) -> Self {
        let descriptors = chunks
            .iter()
            .map(|c| ChunkDescriptor::new(algorithm.fingerprint(c), c.len() as u32))
            .collect();
        SuperChunk {
            offset,
            descriptors,
            payloads: chunks,
        }
    }

    /// Offset of the super-chunk within its stream.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The chunk descriptors, in stream order.
    pub fn descriptors(&self) -> &[ChunkDescriptor] {
        &self.descriptors
    }

    /// The payload of chunk `index`, if payloads were provided.
    pub fn payload(&self, index: usize) -> Option<&[u8]> {
        self.payloads.get(index).map(|v| v.as_slice())
    }

    /// True when the super-chunk carries chunk payloads.
    pub fn has_payloads(&self) -> bool {
        !self.payloads.is_empty()
    }

    /// Number of chunks in the super-chunk.
    pub fn chunk_count(&self) -> usize {
        self.descriptors.len()
    }

    /// True when the super-chunk holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Total logical size in bytes.
    pub fn logical_size(&self) -> u64 {
        self.descriptors.iter().map(|d| d.len as u64).sum()
    }

    /// Iterator over the chunk fingerprints in stream order.
    pub fn fingerprints(&self) -> impl Iterator<Item = Fingerprint> + '_ {
        self.descriptors.iter().map(|d| d.fingerprint)
    }

    /// Computes the super-chunk's handprint of size `k`.
    pub fn handprint(&self, k: usize) -> Handprint {
        Handprint::from_fingerprints(self.fingerprints(), k)
    }
}

/// Groups a stream of chunks into super-chunks of a target size.
///
/// # Flush-on-drop
///
/// The builder buffers chunks until the target size is reached, so the final,
/// possibly undersized super-chunk only exists after [`finish`] is called.
/// **Dropping a builder silently discards any buffered chunks** — it cannot hand
/// the pending super-chunk to anyone from `Drop`.  Callers that own a builder must
/// call [`finish`] at end of stream; [`pending_chunk_count`] /
/// [`pending_bytes`] expose what would be lost, and the error-path test suite
/// pins this contract down.
///
/// [`finish`]: SuperChunkBuilder::finish
/// [`pending_chunk_count`]: SuperChunkBuilder::pending_chunk_count
/// [`pending_bytes`]: SuperChunkBuilder::pending_bytes
///
/// # Example
///
/// ```
/// use sigma_core::{ChunkDescriptor, SuperChunkBuilder};
/// use sigma_hashkit::{Digest, Sha1};
///
/// let mut builder = SuperChunkBuilder::new(8 * 1024);
/// let mut complete = Vec::new();
/// for i in 0..6u32 {
///     let d = ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), 4096);
///     if let Some(sc) = builder.push_descriptor(d) {
///         complete.push(sc);
///     }
/// }
/// complete.extend(builder.finish());
/// assert_eq!(complete.len(), 3);
/// assert!(complete.iter().all(|sc| sc.chunk_count() == 2));
/// ```
#[derive(Debug)]
pub struct SuperChunkBuilder {
    target_size: usize,
    next_offset: u64,
    current_offset: u64,
    descriptors: Vec<ChunkDescriptor>,
    payloads: Vec<Vec<u8>>,
    current_bytes: usize,
}

impl SuperChunkBuilder {
    /// Creates a builder emitting super-chunks of at least `target_size` bytes
    /// (except possibly the final one).
    ///
    /// # Panics
    ///
    /// Panics if `target_size` is zero.
    pub fn new(target_size: usize) -> Self {
        assert!(target_size > 0, "super-chunk size must be non-zero");
        SuperChunkBuilder {
            target_size,
            next_offset: 0,
            current_offset: 0,
            descriptors: Vec::new(),
            payloads: Vec::new(),
            current_bytes: 0,
        }
    }

    /// Target super-chunk size in bytes.
    pub fn target_size(&self) -> usize {
        self.target_size
    }

    /// Number of chunks buffered but not yet emitted as a super-chunk.
    pub fn pending_chunk_count(&self) -> usize {
        self.descriptors.len()
    }

    /// Bytes buffered but not yet emitted as a super-chunk.
    pub fn pending_bytes(&self) -> usize {
        self.current_bytes
    }

    /// True when nothing is buffered ([`finish`](SuperChunkBuilder::finish) would
    /// return `None`, and dropping the builder would lose nothing).
    pub fn is_empty(&self) -> bool {
        self.descriptors.is_empty()
    }

    /// Adds a chunk with payload; returns a completed super-chunk once the target
    /// size is reached.
    pub fn push_chunk(
        &mut self,
        descriptor: ChunkDescriptor,
        payload: Vec<u8>,
    ) -> Option<SuperChunk> {
        self.payloads.push(payload);
        self.push_descriptor_inner(descriptor)
    }

    /// Adds a descriptor-only chunk; returns a completed super-chunk once the target
    /// size is reached.
    pub fn push_descriptor(&mut self, descriptor: ChunkDescriptor) -> Option<SuperChunk> {
        self.push_descriptor_inner(descriptor)
    }

    fn push_descriptor_inner(&mut self, descriptor: ChunkDescriptor) -> Option<SuperChunk> {
        self.current_bytes += descriptor.len as usize;
        self.next_offset += descriptor.len as u64;
        self.descriptors.push(descriptor);
        if self.current_bytes >= self.target_size {
            self.emit()
        } else {
            None
        }
    }

    fn emit(&mut self) -> Option<SuperChunk> {
        if self.descriptors.is_empty() {
            return None;
        }
        let descriptors = std::mem::take(&mut self.descriptors);
        let payloads = std::mem::take(&mut self.payloads);
        let sc = SuperChunk {
            offset: self.current_offset,
            descriptors,
            payloads,
        };
        self.current_offset = self.next_offset;
        self.current_bytes = 0;
        Some(sc)
    }

    /// Flushes the final, possibly undersized super-chunk (end of stream).
    pub fn finish(&mut self) -> Option<SuperChunk> {
        self.emit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sigma_hashkit::{Digest, Sha1};

    fn descriptor(i: u64, len: u32) -> ChunkDescriptor {
        ChunkDescriptor::new(Sha1::fingerprint(&i.to_le_bytes()), len)
    }

    #[test]
    fn from_payloads_fingerprints_each_chunk() {
        let chunks = vec![b"aaa".to_vec(), b"bbb".to_vec()];
        let sc = SuperChunk::from_payloads(FingerprintAlgorithm::Sha1, 10, chunks);
        assert_eq!(sc.offset(), 10);
        assert!(sc.has_payloads());
        assert_eq!(sc.descriptors()[0].fingerprint, Sha1::fingerprint(b"aaa"));
        assert_eq!(sc.descriptors()[1].fingerprint, Sha1::fingerprint(b"bbb"));
        assert_eq!(sc.payload(0).unwrap(), b"aaa");
        assert_eq!(sc.payload(2), None);
        assert_eq!(sc.logical_size(), 6);
    }

    #[test]
    fn descriptor_only_super_chunks_have_no_payloads() {
        let sc = SuperChunk::from_descriptors(0, vec![descriptor(1, 100), descriptor(2, 200)]);
        assert!(!sc.has_payloads());
        assert_eq!(sc.payload(0), None);
        assert_eq!(sc.logical_size(), 300);
        assert_eq!(sc.chunk_count(), 2);
        assert!(!sc.is_empty());
    }

    #[test]
    fn builder_groups_by_target_size() {
        let mut b = SuperChunkBuilder::new(1000);
        let mut done = Vec::new();
        for i in 0..10u64 {
            if let Some(sc) = b.push_descriptor(descriptor(i, 300)) {
                done.push(sc);
            }
        }
        done.extend(b.finish());
        // 300 * 4 = 1200 >= 1000 => 4 chunks per super-chunk, 10 chunks => 2 full + 1 partial.
        assert_eq!(done.len(), 3);
        assert_eq!(done[0].chunk_count(), 4);
        assert_eq!(done[1].chunk_count(), 4);
        assert_eq!(done[2].chunk_count(), 2);
        // Offsets are contiguous.
        assert_eq!(done[0].offset(), 0);
        assert_eq!(done[1].offset(), 1200);
        assert_eq!(done[2].offset(), 2400);
    }

    #[test]
    fn builder_finish_on_empty_returns_none() {
        let mut b = SuperChunkBuilder::new(1000);
        assert!(b.finish().is_none());
        assert!(b.is_empty());
    }

    #[test]
    fn builder_exposes_pending_state() {
        let mut b = SuperChunkBuilder::new(1000);
        assert_eq!(b.pending_chunk_count(), 0);
        assert_eq!(b.pending_bytes(), 0);
        assert!(b.push_descriptor(descriptor(1, 300)).is_none());
        assert!(b.push_descriptor(descriptor(2, 300)).is_none());
        assert_eq!(b.pending_chunk_count(), 2);
        assert_eq!(b.pending_bytes(), 600);
        assert!(!b.is_empty());
        // Emitting drains the buffer.
        assert!(b.push_descriptor(descriptor(3, 600)).is_some());
        assert_eq!(b.pending_chunk_count(), 0);
        assert_eq!(b.pending_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "super-chunk size must be non-zero")]
    fn zero_target_panics() {
        SuperChunkBuilder::new(0);
    }

    #[test]
    fn handprint_of_super_chunk_is_k_smallest() {
        let sc = SuperChunk::from_descriptors(0, (0..100).map(|i| descriptor(i, 10)).collect());
        let hp = sc.handprint(5);
        let mut all: Vec<Fingerprint> = sc.fingerprints().collect();
        all.sort();
        assert_eq!(hp.representative_fingerprints(), &all[..5]);
    }

    proptest! {
        #[test]
        fn prop_builder_preserves_all_chunks_and_sizes(
            lens in proptest::collection::vec(1u32..5000, 1..100),
            target in 1usize..20_000,
        ) {
            let mut b = SuperChunkBuilder::new(target);
            let mut supers = Vec::new();
            for (i, &len) in lens.iter().enumerate() {
                if let Some(sc) = b.push_descriptor(descriptor(i as u64, len)) {
                    supers.push(sc);
                }
            }
            supers.extend(b.finish());

            let total_chunks: usize = supers.iter().map(|s| s.chunk_count()).sum();
            prop_assert_eq!(total_chunks, lens.len());
            let total_bytes: u64 = supers.iter().map(|s| s.logical_size()).sum();
            prop_assert_eq!(total_bytes, lens.iter().map(|&l| l as u64).sum::<u64>());
            // All but the last super-chunk reach the target size.
            for sc in &supers[..supers.len().saturating_sub(1)] {
                prop_assert!(sc.logical_size() as usize >= target);
            }
            // Offsets are contiguous.
            let mut expected_offset = 0u64;
            for sc in &supers {
                prop_assert_eq!(sc.offset(), expected_offset);
                expected_offset += sc.logical_size();
            }
        }
    }
}
