//! Gear hash: a cheap table-driven rolling hash for content-defined chunking.
//!
//! The gear hash (`h = (h << 1) + GEAR[b]`) needs no explicit sliding window: old
//! bytes "age out" as their contribution is shifted past the top of the word.  It is
//! provided as a faster alternative to the [`RabinHasher`](crate::RabinHasher) for
//! the content-defined chunkers; the chunk-boundary distribution it produces is very
//! similar in practice.

use crate::RollingHash;

/// Builds a table of 256 pseudo-random 64-bit constants with splitmix64.
const fn build_gear_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut i = 0;
    while i < 256 {
        // splitmix64 step
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        table[i] = z;
        i += 1;
    }
    table
}

/// The 256-entry constant table used by [`GearHasher`].
pub const GEAR_TABLE: [u64; 256] = build_gear_table();

/// Number of trailing bytes that still influence the gear hash value.
///
/// After 64 shifts a byte's contribution has left the word entirely, so the hash is
/// effectively a function of the last 64 bytes.
pub const GEAR_EFFECTIVE_WINDOW: usize = 64;

/// Rolling gear hash.
///
/// # Example
///
/// ```
/// use sigma_hashkit::{GearHasher, RollingHash};
///
/// let mut h = GearHasher::new();
/// for &b in b"stream of bytes".iter() {
///     h.roll(b);
/// }
/// assert_ne!(h.value(), 0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GearHasher {
    hash: u64,
}

impl GearHasher {
    /// Creates a hasher with an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the first prefix length `p` in `first_check..=data.len()` whose gear
    /// hash satisfies `hash & mask == mask`, or `None` if no prefix does.
    ///
    /// Bit-identical to rolling every byte of `data` through a freshly reset
    /// [`GearHasher`] and testing `value() & mask == mask` at every prefix length
    /// `>= first_check`, but much faster:
    ///
    /// * **skip-ahead** — a byte's contribution is shifted out of the word after
    ///   [`GEAR_EFFECTIVE_WINDOW`] rolls, so the scan starts feeding at
    ///   `first_check - GEAR_EFFECTIVE_WINDOW` instead of 0;
    /// * **4-lane unroll** — the loop-carried dependency `h = (h << 1) + T[b]` is
    ///   broken by computing the next four hash values directly from the block
    ///   entry hash (`h << k` plus independently shifted table entries), so the
    ///   four table lookups and mask tests pipeline instead of serialising.
    pub fn find_boundary(data: &[u8], first_check: usize, mask: u64) -> Option<usize> {
        let n = data.len();
        let first = first_check.max(1);
        if first > n {
            return None;
        }
        let feed_start = first.saturating_sub(GEAR_EFFECTIVE_WINDOW);

        // Warm-up: positions below `first` can never be boundaries, so only the
        // hash state is carried across them.
        let mut h = 0u64;
        for &b in &data[feed_start..first - 1] {
            h = (h << 1).wrapping_add(GEAR_TABLE[b as usize]);
        }

        // Test region: every rolled byte is a boundary candidate.  Four lanes per
        // iteration, each derived from the block entry hash `h` alone.
        let region = &data[first - 1..];
        let mut pos = first - 1;
        let mut blocks = region.chunks_exact(4);
        for block in &mut blocks {
            let t0 = GEAR_TABLE[block[0] as usize];
            let t1 = GEAR_TABLE[block[1] as usize];
            let t2 = GEAR_TABLE[block[2] as usize];
            let t3 = GEAR_TABLE[block[3] as usize];
            let h1 = (h << 1).wrapping_add(t0);
            let h2 = (h << 2).wrapping_add(t0 << 1).wrapping_add(t1);
            let h3 = (h << 3)
                .wrapping_add(t0 << 2)
                .wrapping_add(t1 << 1)
                .wrapping_add(t2);
            let h4 = (h << 4)
                .wrapping_add(t0 << 3)
                .wrapping_add(t1 << 2)
                .wrapping_add(t2 << 1)
                .wrapping_add(t3);
            if h1 & mask == mask {
                return Some(pos + 1);
            }
            if h2 & mask == mask {
                return Some(pos + 2);
            }
            if h3 & mask == mask {
                return Some(pos + 3);
            }
            if h4 & mask == mask {
                return Some(pos + 4);
            }
            h = h4;
            pos += 4;
        }
        for &b in blocks.remainder() {
            h = (h << 1).wrapping_add(GEAR_TABLE[b as usize]);
            pos += 1;
            if h & mask == mask {
                return Some(pos);
            }
        }
        None
    }
}

impl RollingHash for GearHasher {
    fn reset(&mut self) {
        self.hash = 0;
    }

    #[inline]
    fn roll(&mut self, byte: u8) -> u64 {
        self.hash = (self.hash << 1).wrapping_add(GEAR_TABLE[byte as usize]);
        self.hash
    }

    fn value(&self) -> u64 {
        self.hash
    }

    fn window_size(&self) -> usize {
        GEAR_EFFECTIVE_WINDOW
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_entries_are_distinct_enough() {
        // Not a strict requirement, but a sanity check against a broken generator:
        // all 256 entries should be unique.
        let mut sorted = GEAR_TABLE.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
    }

    #[test]
    fn rolling_is_deterministic() {
        let mut a = GearHasher::new();
        let mut b = GearHasher::new();
        for &byte in b"identical input".iter() {
            a.roll(byte);
            b.roll(byte);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn reset_clears_state() {
        let mut h = GearHasher::new();
        h.roll(42);
        h.reset();
        assert_eq!(h.value(), 0);
    }

    /// Scalar reference for [`GearHasher::find_boundary`]: roll every byte from a
    /// reset state and test every prefix length `>= first_check`.
    fn scalar_find_boundary(data: &[u8], first_check: usize, mask: u64) -> Option<usize> {
        let mut h = GearHasher::new();
        for (i, &b) in data.iter().enumerate() {
            let v = h.roll(b);
            if i + 1 >= first_check.max(1) && v & mask == mask {
                return Some(i + 1);
            }
        }
        None
    }

    #[test]
    fn find_boundary_handles_edges() {
        assert_eq!(GearHasher::find_boundary(&[], 0, 0x3), None);
        assert_eq!(GearHasher::find_boundary(&[1, 2, 3], 4, 0x3), None);
        // mask 0 matches every position: the first tested prefix wins.
        assert_eq!(GearHasher::find_boundary(&[9; 32], 5, 0), Some(5));
        assert_eq!(GearHasher::find_boundary(&[9; 32], 0, 0), Some(1));
    }

    proptest! {
        #[test]
        fn prop_find_boundary_matches_scalar(
            data in proptest::collection::vec(any::<u8>(), 0..700),
            first_check in 0usize..260,
            mask_bits in 1u32..9,
        ) {
            let mask = (1u64 << mask_bits) - 1;
            prop_assert_eq!(
                GearHasher::find_boundary(&data, first_check, mask),
                scalar_find_boundary(&data, first_check, mask),
            );
        }

        #[test]
        fn prop_old_bytes_age_out(
            prefix_a in proptest::collection::vec(any::<u8>(), 0..100),
            prefix_b in proptest::collection::vec(any::<u8>(), 0..100),
            tail in proptest::collection::vec(any::<u8>(), 64..160),
        ) {
            // After at least 64 common trailing bytes the two hashes must agree.
            let run = |prefix: &[u8]| {
                let mut h = GearHasher::new();
                for &b in prefix.iter().chain(tail.iter()) {
                    h.roll(b);
                }
                h.value()
            };
            prop_assert_eq!(run(&prefix_a), run(&prefix_b));
        }
    }
}
