//! Typed request/response envelopes — the protocol-agnostic unit every
//! middleware and transport works with.
//!
//! A [`RequestEnvelope`] names a tenant, a request ID, an [`Operation`], a
//! free-form metadata map (the "headers") and an opaque payload (the bytes to
//! back up).  A [`ResponseEnvelope`] carries the mirrored request ID, a
//! [`ServiceCode`] derived from [`SigmaError::code`] in exactly one place,
//! response metadata and an opaque payload (the restored bytes).  Middleware
//! is protocol-agnostic by construction: it sees envelopes, never sockets.

use serde::{Deserialize, Serialize};
use sigma_core::{ServiceCode, SigmaError};
use std::collections::BTreeMap;

/// Metadata key under which [`RequestEnvelope::with_token`] stores the
/// caller's bearer token (the envelope equivalent of an `Authorization`
/// header).
pub const AUTH_TOKEN_KEY: &str = "auth-token";

/// The operations the backup service exposes — the cluster's whole lifecycle
/// behind one request shape.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Back up the request payload as one file.
    Backup {
        /// File name recorded in the tenant's backup session.
        file_name: String,
        /// Backup generation the session is opened in (retention unit).
        generation: u64,
    },
    /// Restore a previously backed-up file; the bytes come back as the
    /// response payload.
    Restore {
        /// File ID returned by the backup response.
        file_id: u64,
    },
    /// Delete one backed-up file (space is reclaimed by the next GC).
    DeleteFile {
        /// File ID to delete.
        file_id: u64,
    },
    /// Delete a whole backup session and every file registered in it.
    DeleteBackup {
        /// Session ID returned by backup responses.
        session_id: u64,
    },
    /// Expire every session the tenant opened in a generation.
    DeleteGeneration {
        /// Generation to expire.
        generation: u64,
    },
    /// Run a cluster-wide mark-and-sweep garbage collection.
    CollectGarbage,
    /// Report cluster statistics (logical/physical bytes, dedup ratio, …).
    Stats,
}

impl Operation {
    /// Stable lower-case name of the operation, used as the metrics key and
    /// in log entries.
    pub fn name(&self) -> &'static str {
        match self {
            Operation::Backup { .. } => "backup",
            Operation::Restore { .. } => "restore",
            Operation::DeleteFile { .. } => "delete-file",
            Operation::DeleteBackup { .. } => "delete-backup",
            Operation::DeleteGeneration { .. } => "delete-generation",
            Operation::CollectGarbage => "collect-garbage",
            Operation::Stats => "stats",
        }
    }

    /// Whether the operation ingests new logical bytes (quota middleware
    /// debits these against the tenant's budget before they reach the
    /// cluster).
    pub fn ingests(&self) -> bool {
        matches!(self, Operation::Backup { .. })
    }
}

/// One request flowing into the service pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Caller-chosen request correlator, echoed verbatim in the response.
    pub request_id: u64,
    /// Tenant on whose behalf the request runs (auth, quota and rate-limit
    /// state are all keyed by this).
    pub tenant: String,
    /// What to do.
    pub operation: Operation,
    /// Free-form string metadata (the protocol-agnostic "headers"); the auth
    /// token travels under [`AUTH_TOKEN_KEY`].
    pub metadata: BTreeMap<String, String>,
    /// Opaque payload: the bytes to back up for [`Operation::Backup`], empty
    /// otherwise.
    pub payload: Vec<u8>,
}

impl RequestEnvelope {
    /// Creates an envelope with empty metadata and payload.
    pub fn new(request_id: u64, tenant: impl Into<String>, operation: Operation) -> Self {
        RequestEnvelope {
            request_id,
            tenant: tenant.into(),
            operation,
            metadata: BTreeMap::new(),
            payload: Vec::new(),
        }
    }

    /// Sets the opaque payload.
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Adds one metadata entry.
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// Stores a bearer token under [`AUTH_TOKEN_KEY`].
    pub fn with_token(self, token: impl Into<String>) -> Self {
        self.with_metadata(AUTH_TOKEN_KEY, token)
    }

    /// The bearer token, if any.
    pub fn token(&self) -> Option<&str> {
        self.metadata.get(AUTH_TOKEN_KEY).map(String::as_str)
    }
}

/// One response flowing back out of the service pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// The request's correlator, echoed back.
    pub request_id: u64,
    /// Status class; [`ServiceCode::Ok`] on success.
    pub code: ServiceCode,
    /// Human-readable status detail (the error's `Display` on failure).
    pub message: String,
    /// Free-form response metadata (`file_id`, `freed_bytes`, stats figures…).
    pub metadata: BTreeMap<String, String>,
    /// Opaque payload: restored bytes for [`Operation::Restore`], empty
    /// otherwise.
    pub payload: Vec<u8>,
}

impl ResponseEnvelope {
    /// A successful response with empty metadata and payload.
    pub fn ok(request_id: u64) -> Self {
        ResponseEnvelope {
            request_id,
            code: ServiceCode::Ok,
            message: String::new(),
            metadata: BTreeMap::new(),
            payload: Vec::new(),
        }
    }

    /// A rejection whose code and message derive from the error — the single
    /// place a [`SigmaError`] becomes transport status.
    pub fn rejection(request_id: u64, error: &SigmaError) -> Self {
        ResponseEnvelope {
            request_id,
            code: error.code(),
            message: error.to_string(),
            metadata: BTreeMap::new(),
            payload: Vec::new(),
        }
    }

    /// Sets the opaque payload.
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Adds one metadata entry.
    pub fn with_metadata(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.insert(key.into(), value.into());
        self
    }

    /// `true` when the status is [`ServiceCode::Ok`].
    pub fn is_ok(&self) -> bool {
        self.code.is_ok()
    }

    /// Parses a numeric metadata entry (`None` when absent or non-numeric).
    pub fn metadata_u64(&self, key: &str) -> Option<u64> {
        self.metadata.get(key).and_then(|v| v.parse().ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let req = RequestEnvelope::new(
            7,
            "acme",
            Operation::Backup {
                file_name: "db.dump".into(),
                generation: 3,
            },
        )
        .with_payload(vec![1, 2, 3])
        .with_token("secret")
        .with_metadata("trace", "abc");
        assert_eq!(req.request_id, 7);
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.token(), Some("secret"));
        assert_eq!(req.metadata["trace"], "abc");
        assert_eq!(req.payload, vec![1, 2, 3]);
        assert_eq!(req.operation.name(), "backup");
        assert!(req.operation.ingests());
    }

    #[test]
    fn rejection_code_comes_from_the_error() {
        let err = SigmaError::FileNotFound(99);
        let resp = ResponseEnvelope::rejection(12, &err);
        assert_eq!(resp.request_id, 12);
        assert_eq!(resp.code, ServiceCode::NotFound);
        assert!(resp.message.contains("99"));
        assert!(!resp.is_ok());
    }

    #[test]
    fn metadata_u64_parses_or_none() {
        let resp = ResponseEnvelope::ok(1)
            .with_metadata("file_id", "42")
            .with_metadata("note", "not a number");
        assert_eq!(resp.metadata_u64("file_id"), Some(42));
        assert_eq!(resp.metadata_u64("note"), None);
        assert_eq!(resp.metadata_u64("absent"), None);
        assert!(resp.is_ok());
    }

    #[test]
    fn every_operation_has_a_stable_name() {
        let ops = [
            Operation::Backup {
                file_name: "f".into(),
                generation: 0,
            },
            Operation::Restore { file_id: 1 },
            Operation::DeleteFile { file_id: 1 },
            Operation::DeleteBackup { session_id: 1 },
            Operation::DeleteGeneration { generation: 1 },
            Operation::CollectGarbage,
            Operation::Stats,
        ];
        let names: std::collections::BTreeSet<_> = ops.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), ops.len(), "names are distinct");
        assert!(ops.iter().filter(|o| o.ingests()).count() == 1);
    }
}
