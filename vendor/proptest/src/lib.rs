//! Offline shim for the parts of [`proptest`](https://docs.rs/proptest) this
//! workspace uses.
//!
//! The build environment has no network access to a crates registry, so the real
//! `proptest` cannot be fetched. This shim keeps the same import paths and macro
//! syntax (`proptest! { ... }`, `prop_assert!`, `any::<T>()`,
//! `proptest::collection::vec`, `proptest::array::uniform20`,
//! `ProptestConfig::with_cases`) so the workspace's property tests run unchanged,
//! with two simplifications:
//!
//! * **Deterministic generation** — each test's random stream is seeded from its
//!   fully-qualified name, so failures reproduce exactly on re-run (at the cost
//!   of never exploring new cases between runs).
//! * **No shrinking** — a failing case panics with the assertion message (which
//!   for `prop_assert_eq!` contains both values) instead of a minimized input.
//!
//! Swapping in the real crate later is a one-line change in
//! `[workspace.dependencies]` and requires no source edits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! The per-test random source.

    use rand::SeedableRng;

    /// The deterministic random source behind every generated value.
    pub type TestRng = rand::rngs::StdRng;

    /// Creates the generator for a test, seeded from the test's name.
    pub fn rng_for_test(test_name: &str) -> TestRng {
        // FNV-1a over the fully-qualified test name: stable across runs and
        // platforms, distinct per test.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(hash)
    }
}

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the workspace's heavier
        // end-to-end properties fast while still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy, used by [`any`].
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rand::Rng::gen::<$ty>(rng)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A strategy that always produces clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut test_runner::TestRng) -> $ty {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod collection {
    //! Strategies for collections.

    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// A number-of-elements specification: either exact or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange(exact..exact + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.0.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Strategies for fixed-size arrays.

    use super::{test_runner::TestRng, Strategy};

    /// A strategy producing `[S::Value; N]` with independently drawn elements.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    macro_rules! uniform_ctor {
        ($($name:ident => $n:literal),*) => {$(
            /// A strategy for arrays of this length with elements from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray(element)
            }
        )*};
    }

    uniform_ctor!(
        uniform4 => 4,
        uniform8 => 8,
        uniform16 => 16,
        uniform20 => 20,
        uniform32 => 32
    );
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn` runs its body against `cases` random
/// assignments of its `pat in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a property holds; sugar for `assert!` under this shim.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal; sugar for `assert_eq!` under this shim.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ; sugar for `assert_ne!` under this shim.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::test_runner::rng_for_test("x::y");
        let mut b = crate::test_runner::rng_for_test("x::y");
        let mut c = crate::test_runner::rng_for_test("x::z");
        let va: u64 = crate::Strategy::generate(&any::<u64>(), &mut a);
        let vb: u64 = crate::Strategy::generate(&any::<u64>(), &mut b);
        let vc: u64 = crate::Strategy::generate(&any::<u64>(), &mut c);
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn range_strategy_in_bounds(x in 10usize..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Vec strategies respect their size range, including nesting.
        #[test]
        fn vec_strategy_sizes(
            xs in crate::collection::vec(any::<u8>(), 0..17),
            nested in crate::collection::vec(crate::collection::vec(1u32..5, 1..4), 1..5),
        ) {
            prop_assert!(xs.len() < 17);
            prop_assert!(!nested.is_empty() && nested.len() < 5);
            for inner in &nested {
                prop_assert!(!inner.is_empty() && inner.len() < 4);
                prop_assert!(inner.iter().all(|&v| (1..5).contains(&v)));
            }
        }

        /// Fixed-size array strategies fill every element.
        #[test]
        fn array_strategy(bytes in crate::array::uniform20(any::<u8>()), n in 1usize..64) {
            prop_assert_eq!(bytes.len(), 20);
            prop_assert!((1..64).contains(&n));
        }
    }
}
