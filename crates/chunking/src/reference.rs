//! Scalar reference chunkers.
//!
//! These are the original byte-at-a-time implementations of the content-defined
//! chunkers, kept verbatim after the hot paths were rewritten around
//! [`RabinHasher::scan`] / [`GearHasher::find_boundary`] (skip-ahead below
//! `min_size`, mask tests instead of modulo, no per-call template clone).  They
//! exist for two reasons:
//!
//! 1. **equivalence oracles** — the `reference_equivalence` proptest suite
//!    asserts that every optimized chunker produces bit-identical boundary
//!    decisions to its scalar reference across all [`ChunkerParams`] presets;
//! 2. **pre-change baselines** — the `sigma-bench` runner measures the scalar
//!    path in the same process/run as the optimized path, so the persisted
//!    `BENCH_*.json` speedup is an apples-to-apples number, not a cross-machine
//!    comparison.
//!
//! They are deliberately *not* exported from the crate root: production code
//! should never construct one.

use crate::{Chunker, ChunkerParams, StaticChunker, TttdParams};
use sigma_hashkit::{GearHasher, RabinHasher, RabinParams, RollingHash};

/// Builds the scalar reference counterpart of a [`ChunkerParams`] preset.
///
/// [`ChunkerParams::Fixed`] maps to the production [`StaticChunker`] — static
/// chunking has no rolling hash and was never rewritten.
pub fn build(params: &ChunkerParams) -> Box<dyn Chunker> {
    match *params {
        ChunkerParams::Fixed { chunk_size } => Box::new(StaticChunker::new(chunk_size)),
        ChunkerParams::Cdc {
            min_size,
            avg_size,
            max_size,
        } => Box::new(ReferenceCdcChunker::new(min_size, avg_size, max_size)),
        ChunkerParams::GearCdc {
            min_size,
            avg_size,
            max_size,
        } => Box::new(ReferenceGearCdcChunker::new(min_size, avg_size, max_size)),
        ChunkerParams::Tttd(p) => Box::new(ReferenceTttdChunker::new(p)),
    }
}

/// The original Rabin CDC implementation: clones the hasher template per call,
/// rolls every byte through the ring-buffer window, and tests the divisor with
/// a modulo.
#[derive(Debug, Clone)]
pub struct ReferenceCdcChunker {
    min_size: usize,
    avg_size: usize,
    max_size: usize,
    divisor: u64,
    hasher_template: RabinHasher,
}

impl ReferenceCdcChunker {
    /// Mirrors [`crate::CdcChunker::new`], including the divisor derivation.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0, "minimum chunk size must be non-zero");
        assert!(
            min_size <= avg_size && avg_size <= max_size,
            "chunk size parameters must satisfy min <= avg <= max"
        );
        let divisor = (avg_size.next_power_of_two() as u64).max(2);
        ReferenceCdcChunker {
            min_size,
            avg_size,
            max_size,
            divisor,
            hasher_template: RabinHasher::new(RabinParams::default()),
        }
    }
}

impl Chunker for ReferenceCdcChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut boundaries = Vec::with_capacity(data.len() / self.avg_size + 1);
        let mut hasher = self.hasher_template.clone();
        let mut chunk_start = 0usize;
        let mut pos = 0usize;

        while pos < data.len() {
            let h = hasher.roll(data[pos]);
            pos += 1;
            let chunk_len = pos - chunk_start;
            let at_boundary = chunk_len >= self.min_size && h % self.divisor == self.divisor - 1;
            if at_boundary || chunk_len >= self.max_size {
                boundaries.push(pos);
                chunk_start = pos;
                hasher.reset();
            }
        }
        if chunk_start < data.len() {
            boundaries.push(data.len());
        }
        boundaries
    }

    fn average_chunk_size(&self) -> usize {
        self.avg_size
    }

    fn name(&self) -> String {
        format!("ref-cdc-{}", self.avg_size)
    }
}

/// The original TTTD implementation: per-call template clone, per-byte rolling,
/// modulo divisor tests, explicit rewind on a forced max-size cut.
#[derive(Debug, Clone)]
pub struct ReferenceTttdChunker {
    params: TttdParams,
    main_divisor: u64,
    backup_divisor: u64,
    hasher_template: RabinHasher,
}

impl ReferenceTttdChunker {
    /// Mirrors [`crate::TttdChunker::new`], including divisor derivation.
    pub fn new(params: TttdParams) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid TTTD parameters: {}", e);
        }
        let main_divisor = (params.major_mean.next_power_of_two() as u64).max(2);
        let backup_divisor = (params.minor_mean.next_power_of_two() as u64).max(2);
        ReferenceTttdChunker {
            params,
            main_divisor,
            backup_divisor,
            hasher_template: RabinHasher::new(RabinParams::default()),
        }
    }
}

impl Chunker for ReferenceTttdChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let p = self.params;
        let mut boundaries = Vec::with_capacity(data.len() / p.major_mean + 1);
        let mut hasher = self.hasher_template.clone();
        let mut chunk_start = 0usize;
        let mut backup_boundary: Option<usize> = None;
        let mut pos = 0usize;

        while pos < data.len() {
            let h = hasher.roll(data[pos]);
            pos += 1;
            let chunk_len = pos - chunk_start;

            if chunk_len < p.min_size {
                continue;
            }
            if h % self.main_divisor == self.main_divisor - 1 {
                boundaries.push(pos);
                chunk_start = pos;
                backup_boundary = None;
                hasher.reset();
                continue;
            }
            if h % self.backup_divisor == self.backup_divisor - 1 {
                backup_boundary = Some(pos);
            }
            if chunk_len >= p.max_size {
                let cut = backup_boundary.unwrap_or(pos);
                boundaries.push(cut);
                chunk_start = cut;
                backup_boundary = None;
                pos = cut;
                hasher.reset();
            }
        }
        if chunk_start < data.len() {
            boundaries.push(data.len());
        }
        boundaries
    }

    fn average_chunk_size(&self) -> usize {
        self.params.major_mean
    }

    fn name(&self) -> String {
        format!(
            "ref-tttd-{}-{}-{}-{}",
            self.params.min_size,
            self.params.minor_mean,
            self.params.major_mean,
            self.params.max_size
        )
    }
}

/// Byte-at-a-time gear CDC: rolls every byte through [`GearHasher`] and tests
/// the same top-bits mask as [`crate::GearCdcChunker`].
#[derive(Debug, Clone, Copy)]
pub struct ReferenceGearCdcChunker {
    min_size: usize,
    avg_size: usize,
    max_size: usize,
    mask: u64,
}

impl ReferenceGearCdcChunker {
    /// Mirrors [`crate::GearCdcChunker::new`], including mask derivation.
    pub fn new(min_size: usize, avg_size: usize, max_size: usize) -> Self {
        assert!(min_size > 0, "minimum chunk size must be non-zero");
        assert!(
            min_size <= avg_size && avg_size <= max_size,
            "chunk size parameters must satisfy min <= avg <= max"
        );
        ReferenceGearCdcChunker {
            min_size,
            avg_size,
            max_size,
            mask: crate::gear_cdc::gear_mask_for_average(avg_size),
        }
    }
}

impl Chunker for ReferenceGearCdcChunker {
    fn chunk_boundaries(&self, data: &[u8]) -> Vec<usize> {
        if data.is_empty() {
            return Vec::new();
        }
        let mut boundaries = Vec::with_capacity(data.len() / self.avg_size + 1);
        let mut hasher = GearHasher::new();
        let mut chunk_start = 0usize;
        let mut pos = 0usize;

        while pos < data.len() {
            let h = hasher.roll(data[pos]);
            pos += 1;
            let chunk_len = pos - chunk_start;
            let at_boundary = chunk_len >= self.min_size && h & self.mask == self.mask;
            if at_boundary || chunk_len >= self.max_size {
                boundaries.push(pos);
                chunk_start = pos;
                hasher.reset();
            }
        }
        if chunk_start < data.len() {
            boundaries.push(data.len());
        }
        boundaries
    }

    fn average_chunk_size(&self) -> usize {
        self.avg_size
    }

    fn name(&self) -> String {
        format!("ref-gear-{}", self.avg_size)
    }
}
